//! Percentile encoding of performance distributions (paper §4).
//!
//! Each throughput-bound timeseries (or latency series) is summarized as a
//! fixed-size vector: `L` equally spaced percentiles of the empirical CDF,
//! `L` equally spaced percentiles of the *size-weighted* distribution (each
//! sample weighted by its value, highlighting the tail), and the mean — the
//! paper's `2 × 50 + 1 = 101`-dimensional encoding, parameterized here so the
//! scaled-down profile can use fewer levels.

use serde::{Deserialize, Serialize};

/// Encoding configuration: `levels` percentiles per half.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encoding {
    /// Number of equally spaced percentiles taken from each distribution.
    pub levels: usize,
}

impl Encoding {
    /// The paper's 101-dimensional encoding (50 + 50 + mean).
    pub fn paper() -> Self {
        Encoding { levels: 50 }
    }

    /// Compact default for the scaled-down reproduction (16 + 16 + mean = 33).
    pub fn compact() -> Self {
        Encoding { levels: 16 }
    }

    /// Output dimension: `2 × levels + 1`.
    pub fn dim(&self) -> usize {
        2 * self.levels + 1
    }

    /// Encodes `samples` (unsorted) into the fixed-size feature vector.
    ///
    /// Empty inputs encode as all zeros.
    pub fn encode(&self, samples: &[f64]) -> Vec<f32> {
        let d = self.dim();
        if samples.is_empty() {
            return vec![0.0; d];
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let n = sorted.len();
        let mut out = Vec::with_capacity(d);

        // Plain percentiles.
        for i in 0..self.levels {
            let q = (i as f64 + 0.5) / self.levels as f64;
            let idx = ((q * n as f64) as usize).min(n - 1);
            out.push(sorted[idx] as f32);
        }

        // Size-weighted percentiles: each sample weighted by its value.
        let total: f64 = sorted.iter().sum();
        if total <= 0.0 {
            out.extend(std::iter::repeat_n(0.0f32, self.levels));
        } else {
            let mut cum = 0.0;
            let mut idx = 0usize;
            for i in 0..self.levels {
                let q = (i as f64 + 0.5) / self.levels as f64 * total;
                while idx < n - 1 && cum + sorted[idx] < q {
                    cum += sorted[idx];
                    idx += 1;
                }
                out.push(sorted[idx] as f32);
            }
        }

        // Mean.
        out.push((sorted.iter().sum::<f64>() / n as f64) as f32);
        debug_assert_eq!(out.len(), d);
        out
    }

    /// Encodes an integer-valued series (e.g. window counts, latencies).
    pub fn encode_u32(&self, samples: &[u32]) -> Vec<f32> {
        let f: Vec<f64> = samples.iter().map(|&x| f64::from(x)).collect();
        self.encode(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims() {
        assert_eq!(Encoding::paper().dim(), 101);
        assert_eq!(Encoding::compact().dim(), 33);
    }

    #[test]
    fn constant_distribution_encodes_constant() {
        let e = Encoding { levels: 8 };
        let v = e.encode(&[3.0; 100]);
        assert_eq!(v.len(), 17);
        for x in v {
            assert!((x - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn percentiles_are_sorted_and_bounded() {
        let e = Encoding { levels: 10 };
        let samples: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let v = e.encode(&samples);
        let (plain, rest) = v.split_at(10);
        let (weighted, mean) = rest.split_at(10);
        for w in plain.windows(2) {
            assert!(w[0] <= w[1], "plain percentiles sorted");
        }
        for w in weighted.windows(2) {
            assert!(w[0] <= w[1], "weighted percentiles sorted");
        }
        let lo = *samples
            .iter()
            .min_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap() as f32;
        let hi = *samples
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap() as f32;
        for &x in plain.iter().chain(weighted) {
            assert!(x >= lo && x <= hi);
        }
        let want_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean[0] as f64 - want_mean).abs() < 1e-3);
    }

    #[test]
    fn size_weighting_emphasizes_tail() {
        let e = Encoding { levels: 10 };
        // 90 small values, 10 huge ones.
        let mut s = vec![1.0; 90];
        s.extend(vec![100.0; 10]);
        let v = e.encode(&s);
        let plain_median = v[5];
        let weighted_median = v[15];
        assert!(
            weighted_median > plain_median,
            "{weighted_median} <= {plain_median}"
        );
        assert_eq!(weighted_median, 100.0, "by mass, the tail dominates");
    }

    #[test]
    fn empty_and_zero_inputs() {
        let e = Encoding { levels: 4 };
        assert_eq!(e.encode(&[]), vec![0.0; 9]);
        let z = e.encode(&[0.0, 0.0]);
        assert_eq!(z, vec![0.0; 9]);
    }

    #[test]
    fn u32_encoding_matches_f64() {
        let e = Encoding { levels: 4 };
        let a = e.encode_u32(&[1, 2, 3, 4]);
        let b = e.encode(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }
}
