//! Frontend analytical models: maximum I-cache fills and fetch buffers
//! (paper §3.2.1, "Dynamic constraints" — modelled with basic single-component
//! simulations).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::trace_analysis::{InstLatencies, TraceInfo};

/// Simulates the maximum-I-cache-fills constraint in isolation.
///
/// Assumes a backlog of instructions waiting to fetch, restricted *only* by
/// fill-slot availability: instructions are considered in order; an
/// instruction on a missing line sends a fill request as soon as one of the
/// `max_fills` slots frees; L1i hits impose no constraint. Returns
/// per-instruction readiness marks (non-decreasing), suitable for Eq. 5.
///
/// # Panics
///
/// Panics if `max_fills == 0`.
pub fn icache_fills_model(info: &TraceInfo, inst: &InstLatencies, max_fills: u32) -> Vec<u64> {
    assert!(max_fills >= 1, "max I-cache fills must be at least 1");
    let n = info.len();
    let mut marks = Vec::with_capacity(n);
    let mut completions: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut cur_line = u64::MAX;
    let mut line_ready = 0u64;
    let mut running = 0u64;

    for i in 0..n {
        let line = info.icache_lines[i];
        if line != cur_line {
            cur_line = line;
            if !inst.l1_hit[i] {
                // Acquire a fill slot: wait for the earliest outstanding fill
                // when all slots are busy.
                let start = if completions.len() < max_fills as usize {
                    0
                } else {
                    completions.pop().unwrap().0
                };
                let done = start + u64::from(inst.icache_latency[i]);
                completions.push(Reverse(done));
                line_ready = done;
            }
            // L1 hits leave `line_ready` unchanged: no fill needed.
        }
        running = running.max(line_ready);
        marks.push(running);
    }
    marks
}

/// Simulates the fetch-buffer constraint in isolation.
///
/// Each of the `buffers` line-sized fetch buffers holds one cache line while
/// it is being read from the I-cache; with everything else unconstrained, line
/// `j` can begin its access once line `j - buffers` has completed. Every line
/// access costs its I-cache latency (even L1 hits pay the hit latency), so a
/// single buffer pipeline-limits fetch to `1 line / latency`.
///
/// # Panics
///
/// Panics if `buffers == 0`.
pub fn fetch_buffers_model(info: &TraceInfo, inst: &InstLatencies, buffers: u32) -> Vec<u64> {
    assert!(buffers >= 1, "fetch buffers must be at least 1");
    let b = buffers as usize;
    let n = info.len();
    let mut marks = Vec::with_capacity(n);
    // Completion times of the last `b` line accesses.
    let mut ring: Vec<u64> = vec![0; b];
    let mut lines_seen = 0usize;
    let mut cur_line = u64::MAX;
    let mut line_ready = 0u64;
    let mut running = 0u64;

    for i in 0..n {
        let line = info.icache_lines[i];
        if line != cur_line {
            cur_line = line;
            let start = if lines_seen >= b {
                ring[lines_seen % b]
            } else {
                0
            };
            let done = start + u64::from(inst.icache_latency[i]);
            ring[lines_seen % b] = done;
            lines_seen += 1;
            line_ready = done;
        }
        running = running.max(line_ready);
        marks.push(running);
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_analysis::{analyze_inst, analyze_static};
    use crate::window::throughput_from_marks;
    use concorde_cache::MemConfig;
    use concorde_trace::{by_id, generate_region};

    fn setup(id: &str, n: usize) -> (TraceInfo, InstLatencies) {
        let t = generate_region(&by_id(id).unwrap(), 0, 0, n).instrs;
        (
            analyze_static(&t),
            analyze_inst(&[], &t, MemConfig::default()),
        )
    }

    #[test]
    fn marks_monotone() {
        let (info, inst) = setup("S10", 8000);
        for f in [1u32, 8, 32] {
            let m = icache_fills_model(&info, &inst, f);
            assert_eq!(m.len(), info.len());
            for w in m.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn more_fill_slots_never_slow_fetch() {
        let (info, inst) = setup("S10", 12_000); // gcc: big code, many fills
        let mut prev = u64::MAX;
        for f in [1u32, 2, 4, 8, 16, 32] {
            let total = *icache_fills_model(&info, &inst, f).last().unwrap();
            assert!(total <= prev, "fills={f}: {total} > {prev}");
            prev = total;
        }
    }

    #[test]
    fn small_kernel_is_unconstrained_by_fills() {
        let (info, inst) = setup("O1", 8000);
        let m = icache_fills_model(&info, &inst, 1);
        let thr = throughput_from_marks(&m, 256);
        // After the initial cold fills, a resident kernel never misses L1i.
        let last = *thr.last().unwrap();
        assert_eq!(
            last,
            crate::window::THROUGHPUT_CAP,
            "steady-state windows hit the cap"
        );
    }

    #[test]
    fn more_fetch_buffers_never_slow_fetch() {
        let (info, inst) = setup("S3", 12_000);
        let mut prev = u64::MAX;
        for b in [1u32, 2, 4, 8] {
            let total = *fetch_buffers_model(&info, &inst, b).last().unwrap();
            assert!(total <= prev, "buffers={b}: {total} > {prev}");
            prev = total;
        }
    }

    #[test]
    fn one_buffer_limits_line_rate() {
        let (info, inst) = setup("O2", 4000);
        let m = fetch_buffers_model(&info, &inst, 1);
        let total = *m.last().unwrap();
        // Count distinct consecutive line runs; each costs >= 4 cycles at B=1.
        let mut runs = 0u64;
        let mut cur = u64::MAX;
        for &l in &info.icache_lines {
            if l != cur {
                runs += 1;
                cur = l;
            }
        }
        assert!(
            total >= runs * 4,
            "B=1 must serialize line accesses: {total} vs {runs} runs"
        );
    }

    #[test]
    fn fills_model_faster_than_buffers_model_on_hits() {
        // The fills model ignores L1 hits entirely; the buffer model charges
        // them. On a resident kernel the fills bound must be weaker (higher
        // throughput = smaller final mark).
        let (info, inst) = setup("O1", 8000);
        let fills = *icache_fills_model(&info, &inst, 8).last().unwrap();
        let bufs = *fetch_buffers_model(&info, &inst, 8).last().unwrap();
        assert!(fills <= bufs);
    }
}
