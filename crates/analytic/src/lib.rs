//! # concorde-analytic
//!
//! Concorde's trace analysis and per-resource analytical models (paper §3.1,
//! §3.2): the stage that converts a dynamic instruction trace into compact
//! performance distributions.
//!
//! * [`trace_analysis`] — builds the *Concorde trace*: dependencies,
//!   execution-latency estimates from in-order cache simulation, I-cache
//!   latencies, and branch statistics.
//! * [`memory_model`] — Algorithm 1's trace-driven memory state machine.
//! * [`rob`] — the ROB dynamical system (Eqs. 1–4) run as a discrete-event
//!   loop in start-time order.
//! * [`queues`] — load-/store-queue variants of the ROB model.
//! * [`widths`] — static bandwidth bounds (Eq. 6).
//! * [`pipes`] — load / load-store pipe lower/upper bounds.
//! * [`frontend`] — max-I-cache-fills and fetch-buffer single-component
//!   simulations.
//! * [`window`] — Eq. 5 window throughput series.
//! * [`distribution`] — the percentile CDF encoding (50+50+1 in the paper).
//!
//! ```
//! use concorde_analytic::prelude::*;
//! use concorde_cache::MemConfig;
//! use concorde_trace::{by_id, generate_region};
//!
//! let region = generate_region(&by_id("S1").unwrap(), 0, 0, 4_096);
//! let info = analyze_static(&region.instrs);
//! let data = analyze_data(&[], &region.instrs, MemConfig::default());
//! let rob = rob_model(&info, &data, 128);
//! let thr = throughput_from_marks(&rob.commit_cycles, 256);
//! assert_eq!(thr.len(), 16);
//! ```

#![warn(missing_docs)]

pub mod distribution;
pub mod frontend;
pub mod memory_model;
pub mod pipes;
pub mod queues;
pub mod rob;
pub mod trace_analysis;
pub mod widths;
pub mod window;

/// Convenient re-exports of the crate's primary API.
pub mod prelude {
    pub use crate::distribution::Encoding;
    pub use crate::frontend::{fetch_buffers_model, icache_fills_model};
    pub use crate::memory_model::MemoryModel;
    pub use crate::pipes::{pipe_bounds, PipeBounds};
    pub use crate::queues::{queue_model, QueueKind};
    pub use crate::rob::{rob_model, RobResult, ROB_SWEEP};
    pub use crate::trace_analysis::{
        analyze_branches, analyze_data, analyze_inst, analyze_static, BranchInfo, DataLatencies,
        InstLatencies, TraceInfo, NO_DEP,
    };
    pub use crate::widths::{class_counts, issue_width_bound, IssueClass};
    pub use crate::window::{
        bandwidth_bound, throughput_from_marks, window_count, window_counts, DEFAULT_WINDOW,
        THROUGHPUT_CAP,
    };
}

pub use prelude::*;
