//! The trace-driven memory state machine of paper Algorithm 1.
//!
//! Corrects the naïve in-order latency estimates with two ordering principles:
//!
//! 1. the response cycle for consecutive loads to the same cache line is
//!    non-decreasing (a later load cannot complete before the fill an earlier
//!    load started);
//! 2. the access *levels* of loads to the same line are determined by their
//!    issue order, not program order (the queue of per-line latencies from
//!    the in-order simulation is consumed in `RespCycle`-call order).
//!
//! Callers must invoke [`MemoryModel::resp_cycle`] in non-decreasing request
//! order per cache line; the ROB/queue models guarantee this globally by
//! executing instructions in start-time order (paper footnote 3).

use std::collections::HashMap;

use crate::trace_analysis::DataLatencies;

/// Per-line state of Algorithm 1.
#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    access_counter: usize,
    last_req_cycle: u64,
    last_resp_cycle: u64,
}

/// Algorithm 1's state machine. One instance serves one model run (the
/// per-line access counters are consumed as loads execute).
#[derive(Debug)]
pub struct MemoryModel<'a> {
    latencies: &'a DataLatencies,
    lines: HashMap<u64, LineState>,
}

impl<'a> MemoryModel<'a> {
    /// Creates a fresh state machine over the in-order latency estimates.
    pub fn new(latencies: &'a DataLatencies) -> Self {
        MemoryModel {
            latencies,
            lines: HashMap::with_capacity(latencies.line_load_latencies.len()),
        }
    }

    /// Returns the execution-completion cycle for instruction `idx` issued at
    /// `req_cycle` (paper Algorithm 1, `RespCycle`).
    ///
    /// `line` is the instruction's data cache line and `is_load` selects the
    /// adjusted path; non-loads simply add their estimated execution time.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if requests to the same cache line arrive with
    /// decreasing request cycles (the algorithm's precondition).
    pub fn resp_cycle(&mut self, req_cycle: u64, idx: usize, line: u64, is_load: bool) -> u64 {
        let exec_est = u64::from(self.latencies.exec_latency[idx]);
        if !is_load {
            return req_cycle + exec_est;
        }
        let st = self.lines.entry(line).or_default();
        debug_assert!(
            req_cycle >= st.last_req_cycle,
            "requests to line {line} must be non-decreasing ({req_cycle} < {})",
            st.last_req_cycle
        );
        st.last_req_cycle = req_cycle;
        let list = self
            .latencies
            .line_load_latencies
            .get(&line)
            .expect("load line must have recorded latencies");
        // Consume latencies in issue order (principle 2). If the model issues
        // more loads to a line than the in-order simulation observed (cannot
        // happen when built from the same trace), fall back to the last one.
        let exec = u64::from(
            *list
                .get(st.access_counter)
                .unwrap_or(list.last().unwrap_or(&4)),
        );
        st.access_counter += 1;
        // Non-decreasing response (principle 1).
        let resp = (req_cycle + exec).max(st.last_resp_cycle);
        st.last_resp_cycle = resp;
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn latencies(per_line: &[(u64, Vec<u32>)], exec: Vec<u32>) -> DataLatencies {
        let mut m = HashMap::new();
        for (line, lats) in per_line {
            m.insert(*line, lats.clone());
        }
        DataLatencies {
            exec_latency: exec,
            line_load_latencies: m,
        }
    }

    #[test]
    fn paper_example_merged_fill() {
        // Two loads to the same line; in-order sim said RAM (200) then L1 (4).
        // Issued at cycles 0 and 1: both must complete no earlier than the fill.
        let d = latencies(&[(7, vec![200, 4])], vec![200, 4]);
        let mut m = MemoryModel::new(&d);
        let r0 = m.resp_cycle(0, 0, 7, true);
        let r1 = m.resp_cycle(1, 1, 7, true);
        assert_eq!(r0, 200);
        assert_eq!(r1, 200, "second load waits for the in-flight fill");
    }

    #[test]
    fn issue_order_determines_levels() {
        // Same two loads, issued in reverse program order: the first issuer
        // pays the miss, the second (later) gets the hit but still respects
        // the non-decreasing response rule.
        let d = latencies(&[(7, vec![200, 4])], vec![200, 4]);
        let mut m = MemoryModel::new(&d);
        // Program-order instruction 1 issues first at cycle 0.
        let r1 = m.resp_cycle(0, 1, 7, true);
        // Program-order instruction 0 issues at cycle 5.
        let r0 = m.resp_cycle(5, 0, 7, true);
        assert_eq!(r1, 200, "first issuer takes the miss latency");
        assert_eq!(r0, 200, "hit completes at 9 but is clamped to the fill");
    }

    #[test]
    fn distinct_lines_are_independent() {
        let d = latencies(&[(1, vec![200]), (2, vec![10])], vec![200, 10]);
        let mut m = MemoryModel::new(&d);
        assert_eq!(m.resp_cycle(0, 0, 1, true), 200);
        assert_eq!(m.resp_cycle(0, 1, 2, true), 10);
    }

    #[test]
    fn non_loads_pass_through() {
        let d = latencies(&[], vec![3, 18]);
        let mut m = MemoryModel::new(&d);
        assert_eq!(m.resp_cycle(10, 0, 0, false), 13);
        assert_eq!(m.resp_cycle(2, 1, 0, false), 20);
    }

    #[test]
    fn responses_non_decreasing_under_spaced_requests() {
        let d = latencies(&[(3, vec![200, 4, 4, 4])], vec![200, 4, 4, 4]);
        let mut m = MemoryModel::new(&d);
        let mut prev = 0;
        for (i, req) in [0u64, 50, 120, 300].iter().enumerate() {
            let r = m.resp_cycle(*req, i, 3, true);
            assert!(r >= prev, "resp {r} < prev {prev}");
            prev = r;
        }
        // The last request at 300 is past the fill: completes as an L1 hit.
        assert_eq!(prev, 304);
    }
}
