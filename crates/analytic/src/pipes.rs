//! Load / load-store pipe bounds (paper §3.2.1, "Dynamic constraints").
//!
//! Pipe allocation depends on dynamic state, so instead of simulating it the
//! paper derives per-window lower and upper throughput bounds from the two
//! extreme allocations:
//!
//! * **worst case** — loads are issued first on all pipes, then stores use
//!   only the load-store pipes while load pipes idle:
//!   `T_max = n_load/(LSP+LP) + n_store/LSP`, `thr_lower = k / T_max`;
//! * **best case** — stores stream through the load-store pipes concurrently
//!   with loads on the load pipes, and finished stores free their pipes for
//!   the remaining loads.

use crate::trace_analysis::TraceInfo;
use crate::window::{window_counts, THROUGHPUT_CAP};

/// Per-window lower and upper pipe-throughput bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeBounds {
    /// Worst-case (lower) throughput bound per window.
    pub lower: Vec<f64>,
    /// Best-case (upper) throughput bound per window.
    pub upper: Vec<f64>,
}

/// Computes both pipe bounds for `ls_pipes` (LSP ≥ 1) and `load_pipes` (LP ≥ 0).
///
/// # Panics
///
/// Panics if `ls_pipes == 0` (stores would have no pipe; Table 1's minimum is 1).
pub fn pipe_bounds(info: &TraceInfo, ls_pipes: u32, load_pipes: u32, k: usize) -> PipeBounds {
    assert!(ls_pipes >= 1, "load-store pipes must be at least 1");
    let lsp = f64::from(ls_pipes);
    let lp = f64::from(load_pipes);
    let n_load = window_counts(info.len(), k, |i| info.ops[i].is_load());
    let n_store = window_counts(info.len(), k, |i| info.ops[i].is_store());

    let mut lower = Vec::with_capacity(n_load.len());
    let mut upper = Vec::with_capacity(n_load.len());
    for (&nl, &ns) in n_load.iter().zip(&n_store) {
        let (nl, ns) = (f64::from(nl), f64::from(ns));
        let win = k as f64;
        // Worst case: loads first on all pipes, then stores on LS pipes only.
        let t_max = nl / (lsp + lp) + ns / lsp;
        lower.push(if t_max <= 0.0 {
            THROUGHPUT_CAP
        } else {
            (win / t_max).min(THROUGHPUT_CAP)
        });
        // Best case: stores on LS pipes overlap loads on load pipes; leftover
        // loads then use all pipes.
        let t_store = ns / lsp;
        let loads_left = (nl - lp * t_store).max(0.0);
        let t_min = if lp > 0.0 {
            let t_loads_only = nl / lp;
            if t_loads_only <= t_store {
                // Loads finish during the store phase.
                t_store.max(t_loads_only)
            } else {
                t_store + loads_left / (lsp + lp)
            }
        } else {
            t_store + nl / lsp
        };
        upper.push(if t_min <= 0.0 {
            THROUGHPUT_CAP
        } else {
            (win / t_min).min(THROUGHPUT_CAP)
        });
    }
    PipeBounds { lower, upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_analysis::analyze_static;
    use concorde_trace::{by_id, generate_region};

    fn info(id: &str, n: usize) -> TraceInfo {
        analyze_static(&generate_region(&by_id(id).unwrap(), 0, 0, n).instrs)
    }

    #[test]
    fn lower_never_exceeds_upper() {
        let info = info("P4", 8000);
        for (lsp, lp) in [(1u32, 0u32), (2, 0), (2, 4), (8, 8), (1, 8)] {
            let b = pipe_bounds(&info, lsp, lp, 256);
            for (l, u) in b.lower.iter().zip(&b.upper) {
                assert!(l <= u, "lower {l} > upper {u} at LSP={lsp}, LP={lp}");
            }
        }
    }

    #[test]
    fn more_pipes_never_reduce_bounds() {
        let info = info("P11", 8000);
        let small = pipe_bounds(&info, 1, 0, 256);
        let big = pipe_bounds(&info, 8, 8, 256);
        for i in 0..small.lower.len() {
            assert!(big.lower[i] >= small.lower[i] - 1e-9);
            assert!(big.upper[i] >= small.upper[i] - 1e-9);
        }
    }

    #[test]
    fn pure_load_window_bounds_coincide() {
        // With no stores, both allocations give loads all pipes.
        let info = info("S1", 8000);
        let b = pipe_bounds(&info, 2, 2, 256);
        // Bound check on the formula itself: windows with ns == 0 must have
        // lower == upper.
        let n_store = crate::window::window_counts(info.len(), 256, |i| info.ops[i].is_store());
        for (i, &ns) in n_store.iter().enumerate() {
            if ns == 0 {
                assert!((b.lower[i] - b.upper[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn load_pipes_only_help_when_loads_exist() {
        let info = info("P4", 8000); // store heavy but has loads
        let no_lp = pipe_bounds(&info, 2, 0, 256);
        let with_lp = pipe_bounds(&info, 2, 8, 256);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&with_lp.upper) >= avg(&no_lp.upper));
    }

    #[test]
    #[should_panic(expected = "load-store pipes")]
    fn zero_ls_pipes_rejected() {
        let info = info("O1", 512);
        let _ = pipe_bounds(&info, 0, 4, 256);
    }
}
