//! Load-queue and store-queue analytical models (paper §3.2.1).
//!
//! Identical to the ROB model except that (i) only the queue's instruction
//! kind occupies entries and (ii) there are no dependency constraints — an
//! operation starts as soon as it obtains a slot. Non-queue instructions are
//! free and incur no latency. Because `s_i = a_i = c_{i-Q}` is non-decreasing,
//! the recurrence runs as a simple sequential loop and Algorithm 1's
//! non-decreasing-request precondition holds trivially.

use crate::memory_model::MemoryModel;
use crate::trace_analysis::{DataLatencies, TraceInfo};

/// Which queue to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// Load queue (uses Algorithm 1's adjusted load latencies).
    Load,
    /// Store queue (stores have fixed latency).
    Store,
}

/// Runs the queue model; returns per-*instruction* commit marks: entry `i` is
/// the commit cycle of the latest queue operation at or before instruction
/// `i` (0 until the first queue op), ready for window throughput (Eq. 5).
///
/// # Panics
///
/// Panics if `size == 0`.
pub fn queue_model(info: &TraceInfo, data: &DataLatencies, size: u32, kind: QueueKind) -> Vec<u64> {
    assert!(size >= 1, "queue size must be at least 1");
    let n = info.len();
    let q = size as usize;
    let mut mem = MemoryModel::new(data);
    // Ring buffer of the last `q` queue-op commit cycles.
    let mut ring: Vec<u64> = vec![0; q];
    let mut qcount = 0usize;
    let mut last_c = 0u64;
    let mut marks = Vec::with_capacity(n);

    for i in 0..n {
        let is_kind = match kind {
            QueueKind::Load => info.ops[i].is_load(),
            QueueKind::Store => info.ops[i].is_store(),
        };
        if is_kind {
            let a = if qcount >= q { ring[qcount % q] } else { 0 };
            let s = a;
            let f = mem.resp_cycle(s, i, info.data_lines[i], kind == QueueKind::Load);
            let c = f.max(last_c);
            ring[qcount % q] = c;
            qcount += 1;
            last_c = c;
        }
        marks.push(last_c);
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_analysis::{analyze_data, analyze_static};
    use crate::window::throughput_from_marks;
    use concorde_cache::MemConfig;
    use concorde_trace::{by_id, generate_region};

    fn setup(id: &str, n: usize) -> (TraceInfo, DataLatencies) {
        let t = generate_region(&by_id(id).unwrap(), 0, 0, n).instrs;
        (
            analyze_static(&t),
            analyze_data(&[], &t, MemConfig::default()),
        )
    }

    #[test]
    fn marks_are_monotone_and_full_length() {
        let (info, data) = setup("P11", 6000);
        for kind in [QueueKind::Load, QueueKind::Store] {
            let m = queue_model(&info, &data, 12, kind);
            assert_eq!(m.len(), info.len());
            for w in m.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn bigger_queue_never_decreases_throughput() {
        let (info, data) = setup("S1", 8000);
        let mut prev = 0.0;
        for q in [1u32, 2, 4, 8, 16, 64, 256] {
            let m = queue_model(&info, &data, q, QueueKind::Load);
            let total = *m.last().unwrap();
            let thr = info.len() as f64 / total.max(1) as f64;
            assert!(thr >= prev - 1e-9, "LQ {q}: {thr} < {prev}");
            prev = thr;
        }
    }

    #[test]
    fn lq1_serializes_loads() {
        let (info, data) = setup("S1", 4000);
        let m = queue_model(&info, &data, 1, QueueKind::Load);
        // With one slot, each load waits for the previous commit: the total
        // time is at least the sum of a RAM-latency fraction of loads.
        let loads = info.ops.iter().filter(|o| o.is_load()).count() as u64;
        let total = *m.last().unwrap();
        assert!(
            total >= loads * 4,
            "serial loads must cost at least L1 each"
        );
    }

    #[test]
    fn load_queue_ignores_non_loads() {
        let (info, data) = setup("O1", 4000);
        let m256 = queue_model(&info, &data, 256, QueueKind::Load);
        // Huge queue: every load starts at cycle 0; marks equal the max of
        // per-line adjusted latencies seen so far, far below a serial sum.
        let total = *m256.last().unwrap();
        let m1 = queue_model(&info, &data, 1, QueueKind::Load);
        assert!(total < *m1.last().unwrap());
    }

    #[test]
    fn store_queue_uses_fixed_latency() {
        let (info, data) = setup("P4", 4000); // store-heavy
        let m = queue_model(&info, &data, 1, QueueKind::Store);
        let stores = info.ops.iter().filter(|o| o.is_store()).count() as u64;
        let total = *m.last().unwrap();
        // Each store costs its fixed latency (1 cycle) serially at SQ=1.
        assert_eq!(total, stores);
    }

    #[test]
    fn window_throughput_bounds_behave() {
        let (info, data) = setup("P11", 8000);
        let small = queue_model(&info, &data, 4, QueueKind::Load);
        let big = queue_model(&info, &data, 256, QueueKind::Load);
        let ts: f64 = throughput_from_marks(&small, 256).iter().sum();
        let tb: f64 = throughput_from_marks(&big, 256).iter().sum();
        assert!(
            tb >= ts,
            "bigger LQ window bounds must not shrink: {tb} vs {ts}"
        );
    }
}
