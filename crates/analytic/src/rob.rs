//! The ROB analytical model (paper §3.2.1, Equations 1–4).
//!
//! Models out-of-order execution constrained *only* by the ROB size and
//! instruction dependencies, with a perfect frontend and unlimited bandwidth:
//!
//! ```text
//! a_i = c_{i-ROB}                       (ROB size constraint)
//! s_i = max(a_i, max{f_d | d ∈ Dep(i)}) (dependencies)
//! f_i = RespCycle(s_i, instr_i)         (Algorithm 1 memory model)
//! c_i = max(f_i, c_{i-1})               (in-order commit)
//! ```
//!
//! Equation 3 must execute in order of instruction *start* times so that
//! Algorithm 1 sees non-decreasing request cycles per cache line (paper
//! footnote 3). This module realizes that with a discrete-event loop: a ready
//! heap keyed by `s_i` pops instructions in global start order — a property
//! the loop `debug_assert`s.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::memory_model::MemoryModel;
use crate::trace_analysis::{DataLatencies, TraceInfo, NO_DEP};

/// Output of one ROB-model run.
#[derive(Debug, Clone)]
pub struct RobResult {
    /// Commit cycle `c_i` per instruction.
    pub commit_cycles: Vec<u64>,
    /// Issue-stage latency `s_i − a_i` per instruction (§3.2.2 aux feature).
    pub issue_latency: Vec<u32>,
    /// Execution latency `f_i − s_i` per instruction.
    pub exec_latency: Vec<u32>,
    /// Commit-stage latency `c_i − f_i` per instruction.
    pub commit_latency: Vec<u32>,
}

impl RobResult {
    /// Overall throughput `n / c_n` (instructions per cycle).
    pub fn overall_throughput(&self) -> f64 {
        let n = self.commit_cycles.len();
        if n == 0 {
            return 0.0;
        }
        let total = *self.commit_cycles.last().unwrap();
        if total == 0 {
            crate::window::THROUGHPUT_CAP
        } else {
            (n as f64 / total as f64).min(crate::window::THROUGHPUT_CAP)
        }
    }
}

/// Runs the ROB dynamical system for `rob_size` over the region described by
/// `info` (dependencies, op classes) and `data` (execution-latency estimates).
///
/// # Panics
///
/// Panics if `rob_size == 0`.
pub fn rob_model(info: &TraceInfo, data: &DataLatencies, rob_size: u32) -> RobResult {
    assert!(rob_size >= 1, "ROB size must be at least 1");
    let n = info.len();
    let rob = rob_size as usize;
    let mut a = vec![0u64; n];
    let mut s = vec![0u64; n];
    let mut f = vec![0u64; n];
    let mut c = vec![0u64; n];
    let mut f_known = vec![false; n];

    // Dependency adjacency (producer -> consumers) and pending-dep counters.
    let mut dep_remaining = vec![0u16; n];
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // i indexes parallel dependency arrays
    for i in 0..n {
        for &d in &info.reg_deps[i] {
            if d != NO_DEP {
                dependents[d as usize].push(i as u32);
                dep_remaining[i] += 1;
            }
        }
        let md = info.mem_dep[i];
        if md != NO_DEP {
            dependents[md as usize].push(i as u32);
            dep_remaining[i] += 1;
        }
    }

    let mut max_dep_f = vec![0u64; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut mem = MemoryModel::new(data);
    let mut entered = 0usize;
    let mut frontier = 0usize; // instructions with c computed
    let mut executed = 0usize;
    #[cfg(debug_assertions)]
    let mut last_pop = 0u64;

    while executed < n {
        // Enter the window as the ROB constraint allows.
        while entered < n && entered < frontier + rob {
            let i = entered;
            a[i] = if i >= rob { c[i - rob] } else { 0 };
            if dep_remaining[i] == 0 {
                s[i] = a[i].max(max_dep_f[i]);
                heap.push(Reverse((s[i], i as u32)));
            }
            entered += 1;
        }

        let Reverse((si, iu)) = heap
            .pop()
            .expect("ready heap cannot be empty while work remains");
        let i = iu as usize;
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                si >= last_pop,
                "start times must pop in non-decreasing order"
            );
            last_pop = si;
        }
        f[i] = mem.resp_cycle(si, i, info.data_lines[i], info.ops[i].is_load());
        f_known[i] = true;
        executed += 1;

        for &dr in &dependents[i] {
            let d = dr as usize;
            max_dep_f[d] = max_dep_f[d].max(f[i]);
            dep_remaining[d] -= 1;
            if dep_remaining[d] == 0 && d < entered {
                s[d] = a[d].max(max_dep_f[d]);
                heap.push(Reverse((s[d], dr)));
            }
        }

        // Advance the in-order commit frontier (Eq. 4).
        while frontier < entered && f_known[frontier] {
            let prev = if frontier > 0 { c[frontier - 1] } else { 0 };
            c[frontier] = f[frontier].max(prev);
            frontier += 1;
        }
    }

    let issue_latency = (0..n)
        .map(|i| (s[i] - a[i]).min(u64::from(u32::MAX)) as u32)
        .collect();
    let exec_latency = (0..n)
        .map(|i| (f[i] - s[i]).min(u64::from(u32::MAX)) as u32)
        .collect();
    let commit_latency = (0..n)
        .map(|i| (c[i] - f[i]).min(u64::from(u32::MAX)) as u32)
        .collect();
    RobResult {
        commit_cycles: c,
        issue_latency,
        exec_latency,
        commit_latency,
    }
}

/// The paper's auxiliary ROB sweep: sizes {1, 2, 4, …, 1024} (§3.2.2).
pub const ROB_SWEEP: [u32; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_analysis::{analyze_data, analyze_static};
    use concorde_cache::MemConfig;
    use concorde_trace::{by_id, generate_region, Instruction};

    fn setup(id: &str, n: usize) -> (Vec<Instruction>, TraceInfo, DataLatencies) {
        let t = generate_region(&by_id(id).unwrap(), 0, 0, n).instrs;
        let info = analyze_static(&t);
        let data = analyze_data(&[], &t, MemConfig::default());
        (t, info, data)
    }

    /// Like `setup` but with a 32k-instruction cache warmup, so latency
    /// estimates reflect steady state rather than compulsory misses.
    fn setup_warmed(id: &str, n: usize) -> (TraceInfo, DataLatencies) {
        let full = generate_region(&by_id(id).unwrap(), 0, 0, 32_000 + n).instrs;
        let (w, r) = full.split_at(32_000);
        (analyze_static(r), analyze_data(w, r, MemConfig::default()))
    }

    #[test]
    fn commit_cycles_are_monotone() {
        let (_, info, data) = setup("S5", 6000);
        let r = rob_model(&info, &data, 128);
        for w in r.commit_cycles.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn bigger_rob_never_decreases_throughput() {
        let (_, info, data) = setup("S1", 6000);
        let mut prev = 0.0;
        for rob in ROB_SWEEP {
            let thr = rob_model(&info, &data, rob).overall_throughput();
            assert!(
                thr >= prev - 1e-9,
                "ROB {rob}: throughput {thr} decreased from {prev}"
            );
            prev = thr;
        }
    }

    #[test]
    fn rob1_serializes_completely() {
        let (_, info, data) = setup("O1", 2000);
        let r = rob_model(&info, &data, 1);
        // With ROB=1, c_i >= c_{i-1} + exec, so throughput <= 1.
        assert!(r.overall_throughput() <= 1.0 + 1e-9);
        // And every instruction's arrival equals the previous commit.
        for i in 1..200 {
            assert!(r.commit_cycles[i] > r.commit_cycles[i - 1]);
        }
    }

    #[test]
    fn dependency_chains_bound_throughput() {
        let (info, data) = setup_warmed("O4", 6000); // serial chains + divides
        let chained = rob_model(&info, &data, 1024).overall_throughput();
        let (info2, data2) = setup_warmed("O1", 6000); // parallel ALU code
        let parallel = rob_model(&info2, &data2, 1024).overall_throughput();
        assert!(
            parallel > 1.5 * chained,
            "chained code {chained} should be slower than parallel {parallel}"
        );
    }

    #[test]
    fn stage_latencies_reconstruct_commit() {
        let (_, info, data) = setup("P9", 4000);
        let r = rob_model(&info, &data, 64);
        // a + issue + exec + commit = c, and a_i = c_{i-64}.
        for i in 64..4000 {
            let a = r.commit_cycles[i - 64];
            let reconstructed = a
                + u64::from(r.issue_latency[i])
                + u64::from(r.exec_latency[i])
                + u64::from(r.commit_latency[i]);
            assert_eq!(reconstructed, r.commit_cycles[i], "at {i}");
        }
    }

    #[test]
    fn memory_bound_workload_has_low_rob_throughput() {
        // P13: independent random misses over a 40 MB set — the ROB size
        // directly limits memory-level parallelism.
        let (info, data) = setup_warmed("P13", 8000);
        let small = rob_model(&info, &data, 16).overall_throughput();
        let big = rob_model(&info, &data, 1024).overall_throughput();
        assert!(
            big > 1.5 * small,
            "ROB sweep should matter: {small} -> {big}"
        );
    }

    #[test]
    fn window_throughput_matches_eq5() {
        let (_, info, data) = setup("S5", 2048);
        let r = rob_model(&info, &data, 128);
        let thr = crate::window::throughput_from_marks(&r.commit_cycles, 256);
        assert_eq!(thr.len(), 8);
        for t in &thr {
            assert!(*t > 0.0 && *t <= crate::window::THROUGHPUT_CAP);
        }
    }
}
