//! Trace analysis (paper §3.1): turns a raw dynamic trace into the *Concorde
//! trace* — per-instruction dependencies, execution-latency estimates from
//! in-order cache simulation, I-cache latency estimates, and branch
//! misprediction statistics.
//!
//! The analysis splits into four products so each can be computed for exactly
//! the configurations it depends on (the paper's precompute discipline):
//!
//! * [`TraceInfo`] — microarchitecture independent (dependencies, op classes,
//!   cache lines, branch types, ISBs);
//! * [`DataLatencies`] — per D-side memory configuration (L1d × L2 × prefetch);
//! * [`InstLatencies`] — per I-side memory configuration (L1i × L2);
//! * [`BranchInfo`] — one TAGE + BTB simulation, from which the misprediction
//!   rate of *any* Table 1 predictor setting is derived.

use std::collections::HashMap;

use concorde_branch::{BranchUnit, PredictorKind};
use concorde_cache::{CacheLevel, Hierarchy, LatencyMap, MemConfig};
use concorde_trace::{BranchKind, Instruction, OpClass};

/// Sentinel for "no dependency".
pub const NO_DEP: u32 = u32::MAX;

/// Microarchitecture-independent per-instruction information.
#[derive(Debug, Clone)]
pub struct TraceInfo {
    /// Operation class per instruction.
    pub ops: Vec<OpClass>,
    /// Up to two register dependencies (producer indices; `NO_DEP` = none).
    pub reg_deps: Vec<[u32; 2]>,
    /// Memory dependency for loads (producer store index; `NO_DEP` = none).
    pub mem_dep: Vec<u32>,
    /// Data cache line per memory instruction (0 otherwise).
    pub data_lines: Vec<u64>,
    /// Instruction cache line per instruction.
    pub icache_lines: Vec<u64>,
    /// Branch kind per instruction (`None` for non-branches).
    pub branch_kinds: Vec<Option<BranchKind>>,
    /// ISB flags.
    pub is_isb: Vec<bool>,
}

impl TraceInfo {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of instructions in the given class.
    pub fn count(&self, op: OpClass) -> usize {
        self.ops.iter().filter(|o| **o == op).count()
    }
}

/// Builds the microarchitecture-independent trace information.
///
/// Dependencies follow the same rules the cycle-level simulator applies at
/// rename: register dependencies via last-writer tracking, and for loads a
/// memory dependency on the most recent older store to the same address (the
/// store-forwarding edge).
pub fn analyze_static(instrs: &[Instruction]) -> TraceInfo {
    let n = instrs.len();
    let mut reg_deps = Vec::with_capacity(n);
    let mut mem_dep = vec![NO_DEP; n];
    let mut data_lines = Vec::with_capacity(n);
    let mut icache_lines = Vec::with_capacity(n);
    let mut branch_kinds = Vec::with_capacity(n);
    let mut is_isb = Vec::with_capacity(n);

    let mut last_writer = [NO_DEP; concorde_trace::NUM_REGS];
    let mut last_store_addr: HashMap<u64, u32> = HashMap::new();

    for (i, instr) in instrs.iter().enumerate() {
        let mut deps = [NO_DEP; 2];
        for (slot, src) in instr.srcs.iter().flatten().enumerate().take(2) {
            deps[slot] = last_writer[*src as usize];
        }
        reg_deps.push(deps);
        if instr.op.is_load() {
            if let Some(&s) = last_store_addr.get(&instr.mem_addr) {
                mem_dep[i] = s;
            }
        }
        if instr.op.is_store() {
            last_store_addr.insert(instr.mem_addr, i as u32);
        }
        if let Some(d) = instr.dst {
            last_writer[d as usize] = i as u32;
        }
        data_lines.push(if instr.op.is_mem() {
            instr.data_line()
        } else {
            0
        });
        icache_lines.push(instr.icache_line());
        branch_kinds.push(match instr.op {
            OpClass::Branch(k) => Some(k),
            _ => None,
        });
        is_isb.push(instr.op == OpClass::Isb);
    }

    TraceInfo {
        ops: instrs.iter().map(|i| i.op).collect(),
        reg_deps,
        mem_dep,
        data_lines,
        icache_lines,
        branch_kinds,
        is_isb,
    }
}

/// Per-instruction execution-latency estimates for one D-side memory
/// configuration, plus the per-line load-latency queues Algorithm 1 consumes.
#[derive(Debug, Clone)]
pub struct DataLatencies {
    /// Estimated execution latency per instruction (loads: from the in-order
    /// cache simulation level; others: fixed opcode latency).
    pub exec_latency: Vec<u32>,
    /// For each data cache line, the latencies of the loads touching it, in
    /// program order (Algorithm 1's `exec_times[cache_line]`).
    pub line_load_latencies: HashMap<u64, Vec<u32>>,
}

/// Runs the in-order D-cache simulation (with `warmup` accesses first) and
/// derives execution-latency estimates (paper §3.1 "Microarchitecture
/// dependent (i)").
pub fn analyze_data(
    warmup: &[Instruction],
    instrs: &[Instruction],
    cfg: MemConfig,
) -> DataLatencies {
    let lat = LatencyMap::default();
    let mut h = Hierarchy::new(cfg);
    for i in warmup {
        if i.op.is_load() {
            h.access_data(i.mem_addr, false, Some(i.pc));
        } else if i.op.is_store() {
            h.access_data(i.mem_addr, true, None);
        }
    }
    let mut exec_latency = Vec::with_capacity(instrs.len());
    let mut line_load_latencies: HashMap<u64, Vec<u32>> = HashMap::new();
    for i in instrs {
        let l = if i.op.is_load() {
            let level = h.access_data(i.mem_addr, false, Some(i.pc));
            let l = lat.latency(level);
            line_load_latencies
                .entry(i.data_line())
                .or_default()
                .push(l);
            l
        } else if i.op.is_store() {
            h.access_data(i.mem_addr, true, None);
            i.op.base_latency()
        } else {
            i.op.base_latency()
        };
        exec_latency.push(l);
    }
    DataLatencies {
        exec_latency,
        line_load_latencies,
    }
}

/// Per-instruction I-cache latency estimates for one I-side configuration.
#[derive(Debug, Clone)]
pub struct InstLatencies {
    /// I-cache access latency per instruction.
    pub icache_latency: Vec<u32>,
    /// Whether the instruction's line hit in L1i.
    pub l1_hit: Vec<bool>,
}

/// Runs the in-order I-cache simulation (paper §3.1 "Microarchitecture
/// dependent (ii)").
pub fn analyze_inst(
    warmup: &[Instruction],
    instrs: &[Instruction],
    cfg: MemConfig,
) -> InstLatencies {
    let lat = LatencyMap::default();
    let mut h = Hierarchy::new(cfg);
    for i in warmup {
        h.access_inst(i.pc);
    }
    let mut icache_latency = Vec::with_capacity(instrs.len());
    let mut l1_hit = Vec::with_capacity(instrs.len());
    for i in instrs {
        let level = h.access_inst(i.pc);
        icache_latency.push(lat.latency(level));
        l1_hit.push(level == CacheLevel::L1);
    }
    InstLatencies {
        icache_latency,
        l1_hit,
    }
}

/// Branch-prediction summary from one TAGE + BTB trace simulation, sufficient
/// to derive the misprediction rate of every Table 1 predictor setting.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchInfo {
    /// Total branches.
    pub branches: u64,
    /// Conditional branches.
    pub conditional: u64,
    /// TAGE mispredictions on conditional branches.
    pub tage_cond_misses: u64,
    /// Indirect-target mispredictions (predictor independent).
    pub indirect_misses: u64,
}

impl BranchInfo {
    /// Misprediction rate (per branch) under the given predictor setting.
    pub fn mispredict_rate(&self, kind: PredictorKind) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        let cond_misses = match kind {
            PredictorKind::Tage => self.tage_cond_misses as f64,
            PredictorKind::Simple { miss_pct } => {
                self.conditional as f64 * f64::from(miss_pct) / 100.0
            }
        };
        (cond_misses + self.indirect_misses as f64) / self.branches as f64
    }

    /// Mispredictions per kilo-instruction under the given predictor.
    pub fn mpki(&self, kind: PredictorKind, instructions: usize) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        let cond_misses = match kind {
            PredictorKind::Tage => self.tage_cond_misses as f64,
            PredictorKind::Simple { miss_pct } => {
                self.conditional as f64 * f64::from(miss_pct) / 100.0
            }
        };
        (cond_misses + self.indirect_misses as f64) * 1000.0 / instructions as f64
    }
}

/// Simulates TAGE + BTB over the trace (after warmup) — paper §3.1
/// "Microarchitecture dependent (iii)".
pub fn analyze_branches(warmup: &[Instruction], instrs: &[Instruction]) -> BranchInfo {
    let mut unit = BranchUnit::new(PredictorKind::Tage, 0);
    for i in warmup {
        unit.observe(i);
    }
    unit.reset_stats();
    let mut info = BranchInfo::default();
    for i in instrs {
        let kind = match i.op {
            OpClass::Branch(k) => k,
            _ => continue,
        };
        let miss = unit.observe(i);
        info.branches += 1;
        match kind {
            BranchKind::DirectCond => {
                info.conditional += 1;
                if miss {
                    info.tage_cond_misses += 1;
                }
            }
            BranchKind::Indirect => {
                if miss {
                    info.indirect_misses += 1;
                }
            }
            BranchKind::DirectUncond => {}
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_trace::{by_id, generate_region};

    fn trace(id: &str, n: usize) -> Vec<Instruction> {
        generate_region(&by_id(id).unwrap(), 0, 0, n).instrs
    }

    #[test]
    fn reg_deps_point_backwards_to_writers() {
        let t = trace("S5", 5000);
        let info = analyze_static(&t);
        for (i, deps) in info.reg_deps.iter().enumerate() {
            for &d in deps {
                if d != NO_DEP {
                    let d = d as usize;
                    assert!(d < i, "dep must be older");
                    let produced = t[d].dst.expect("producer must write a register");
                    assert!(
                        t[i].srcs.iter().flatten().any(|s| *s == produced),
                        "dep register mismatch at {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn mem_deps_connect_stores_to_loads() {
        let t = trace("P4", 20_000); // store heavy
        let info = analyze_static(&t);
        let mut found = 0;
        for (i, &d) in info.mem_dep.iter().enumerate() {
            if d != NO_DEP {
                found += 1;
                assert!(t[i].op.is_load());
                assert!(t[d as usize].op.is_store());
                assert_eq!(t[i].mem_addr, t[d as usize].mem_addr);
            }
        }
        assert!(
            found > 10,
            "store-heavy trace should have forwarding edges, found {found}"
        );
    }

    #[test]
    fn chase_loads_have_self_chain_deps() {
        let t = trace("S1", 10_000);
        let info = analyze_static(&t);
        let chained = (0..t.len())
            .filter(|&i| {
                t[i].op.is_load()
                    && info.reg_deps[i]
                        .iter()
                        .any(|&d| d != NO_DEP && t[d as usize].op.is_load())
            })
            .count();
        assert!(
            chained > 100,
            "pointer chase must create load->load chains, got {chained}"
        );
    }

    #[test]
    fn exec_latencies_match_levels() {
        let t = trace("S1", 10_000);
        let d = analyze_data(&[], &t, MemConfig::default());
        assert_eq!(d.exec_latency.len(), t.len());
        for (lat, i) in d.exec_latency.iter().zip(&t) {
            if i.op.is_load() {
                assert!([4u32, 10, 30, 200].contains(lat), "load latency {lat}");
            } else {
                assert_eq!(*lat, i.op.base_latency());
            }
        }
        // Line lists sum to the number of loads.
        let listed: usize = d.line_load_latencies.values().map(Vec::len).sum();
        assert_eq!(listed, t.iter().filter(|i| i.op.is_load()).count());
    }

    #[test]
    fn warmup_reduces_estimated_latency() {
        let full = trace("S4", 40_000);
        let (w, r) = full.split_at(32_000);
        let cold = analyze_data(&[], r, MemConfig::default());
        let warm = analyze_data(w, r, MemConfig::default());
        let sum = |d: &DataLatencies| d.exec_latency.iter().map(|&x| u64::from(x)).sum::<u64>();
        assert!(sum(&warm) < sum(&cold));
    }

    #[test]
    fn icache_latency_reflects_code_footprint() {
        let big = trace("S10", 20_000);
        let small = trace("O1", 20_000);
        let ib = analyze_inst(&[], &big, MemConfig::default());
        let is = analyze_inst(&[], &small, MemConfig::default());
        let misses = |x: &InstLatencies| x.l1_hit.iter().filter(|h| !**h).count();
        assert!(misses(&ib) > 5 * misses(&is).max(1));
    }

    #[test]
    fn branch_info_rates_are_consistent() {
        let t = trace("S4", 30_000);
        let info = analyze_branches(&[], &t);
        assert!(info.branches > 0 && info.conditional > 0);
        let tage = info.mispredict_rate(PredictorKind::Tage);
        let perfect = info.mispredict_rate(PredictorKind::Simple { miss_pct: 0 });
        let awful = info.mispredict_rate(PredictorKind::Simple { miss_pct: 100 });
        assert!(tage > perfect && tage < awful);
        assert!(perfect >= 0.0, "only indirect misses remain: {perfect}");
        assert!(awful <= 1.0);
        assert!(info.mpki(PredictorKind::Tage, t.len()) > 0.0);
    }
}
