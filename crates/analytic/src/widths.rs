//! Static-bandwidth resource bounds (paper §3.2.1, Eq. 6).
//!
//! Commit/fetch/decode/rename widths bound *all* instructions, so their
//! per-window bound is simply the width (constant — the paper excludes such
//! constants from the distribution features and passes the widths in the
//! parameter vector instead). Issue widths bound a class of instructions;
//! their window bound is `k / n_class × width`.

use concorde_trace::OpClass;

use crate::trace_analysis::TraceInfo;
use crate::window::{bandwidth_bound, window_counts};

/// Instruction classes constrained by per-class issue widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueClass {
    /// Integer pipeline (ALU/multiply/divide, branches, nops, barriers).
    Alu,
    /// Floating-point pipeline.
    Fp,
    /// Memory pipeline (loads and stores).
    LoadStore,
}

impl IssueClass {
    /// Whether `op` issues on this class's ports (mirrors the cycle-level
    /// simulator's port binding).
    pub fn matches(self, op: OpClass) -> bool {
        match self {
            IssueClass::Alu => matches!(
                op,
                OpClass::IntAlu
                    | OpClass::IntMul
                    | OpClass::IntDiv
                    | OpClass::Branch(_)
                    | OpClass::Nop
                    | OpClass::Isb
            ),
            IssueClass::Fp => op.is_fp(),
            IssueClass::LoadStore => op.is_mem(),
        }
    }
}

/// Per-window instruction counts for an issue class.
pub fn class_counts(info: &TraceInfo, class: IssueClass, k: usize) -> Vec<u32> {
    window_counts(info.len(), k, |i| class.matches(info.ops[i]))
}

/// Per-window throughput bound for an issue width (Eq. 6), capped.
pub fn issue_width_bound(info: &TraceInfo, class: IssueClass, width: u32, k: usize) -> Vec<f64> {
    bandwidth_bound(&class_counts(info, class, k), k, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_analysis::analyze_static;
    use crate::window::THROUGHPUT_CAP;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn classes_partition_all_ops() {
        let t = generate_region(&by_id("P5").unwrap(), 0, 0, 8000).instrs;
        let info = analyze_static(&t);
        for op in &info.ops {
            let m = [IssueClass::Alu, IssueClass::Fp, IssueClass::LoadStore]
                .iter()
                .filter(|c| c.matches(*op))
                .count();
            assert_eq!(m, 1, "{op:?} must belong to exactly one class");
        }
    }

    #[test]
    fn fp_bound_is_tight_for_fp_heavy_code() {
        let t = generate_region(&by_id("P5").unwrap(), 0, 0, 8000).instrs; // Video
        let info = analyze_static(&t);
        let fp1 = issue_width_bound(&info, IssueClass::Fp, 1, 256);
        let fp8 = issue_width_bound(&info, IssueClass::Fp, 8, 256);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&fp1) < 4.0,
            "FP-heavy code with width 1 must be constrained"
        );
        assert!((avg(&fp8) - avg(&fp1) * 8.0).abs() < 1e-6 || avg(&fp8) <= THROUGHPUT_CAP);
        assert!(avg(&fp8) > avg(&fp1));
    }

    #[test]
    fn int_only_code_has_uncapped_fp_bound() {
        let t = generate_region(&by_id("O1").unwrap(), 0, 0, 4000).instrs; // Dhrystone
        let info = analyze_static(&t);
        let fp = issue_width_bound(&info, IssueClass::Fp, 1, 256);
        // Dhrystone has no FP ops; every window should sit at the cap.
        assert!(fp.iter().all(|&t| t == THROUGHPUT_CAP));
    }

    #[test]
    fn bound_scales_linearly_with_width_until_cap() {
        let t = generate_region(&by_id("S5").unwrap(), 0, 0, 4000).instrs;
        let info = analyze_static(&t);
        let w2 = issue_width_bound(&info, IssueClass::Alu, 2, 256);
        let w4 = issue_width_bound(&info, IssueClass::Alu, 4, 256);
        for (a, b) in w2.iter().zip(&w4) {
            if *b < THROUGHPUT_CAP {
                assert!((b - 2.0 * a).abs() < 1e-9);
            }
        }
    }
}
