//! Fixed-window throughput series (paper §3.2.1, Eq. 5).
//!
//! Analytical models produce per-instruction completion "marks" (commit or
//! readiness cycles); this module converts them into throughput bounds over
//! consecutive `k`-instruction windows. Windows whose duration is zero (the
//! resource imposes no constraint there) are capped at [`THROUGHPUT_CAP`].

/// Upper cap (IPC) applied to unconstrained windows. Well above the widest
/// Table 1 resource (12-wide), so the cap never masks a real bound.
pub const THROUGHPUT_CAP: f64 = 64.0;

/// Default window length (instructions). The paper uses `k = 400` on 100k+
/// regions; we default to 256 on the scaled-down regions (DESIGN.md §3) —
/// "any value of k in the order of the ROB size works well" (§3.2.1).
pub const DEFAULT_WINDOW: usize = 256;

/// Number of complete `k`-windows over `n` instructions (at least 1 when
/// `n > 0`: a trailing short window is counted as one window).
pub fn window_count(n: usize, k: usize) -> usize {
    if n == 0 {
        0
    } else {
        (n / k).max(1)
    }
}

/// Converts per-instruction completion marks into per-window throughput
/// (Eq. 5: `thr_j = k / (c_{kj} - c_{k(j-1)})`), capping unconstrained
/// windows at [`THROUGHPUT_CAP`].
pub fn throughput_from_marks(marks: &[u64], k: usize) -> Vec<f64> {
    assert!(k > 0, "window length must be positive");
    let n = marks.len();
    let mut out = Vec::with_capacity(window_count(n, k));
    let mut prev = 0u64;
    let mut start = 0usize;
    while start < n {
        let end = (start + k).min(n);
        // Skip a trailing fragment unless it is the only window.
        if end - start < k && !out.is_empty() {
            break;
        }
        let mark = marks[end - 1];
        let dur = mark.saturating_sub(prev);
        let len = (end - start) as f64;
        out.push(if dur == 0 {
            THROUGHPUT_CAP
        } else {
            (len / dur as f64).min(THROUGHPUT_CAP)
        });
        prev = mark;
        start = end;
    }
    out
}

/// Per-window counts of instructions matching a predicate.
pub fn window_counts<F: Fn(usize) -> bool>(n: usize, k: usize, pred: F) -> Vec<u32> {
    assert!(k > 0, "window length must be positive");
    let mut out = Vec::with_capacity(window_count(n, k));
    let mut start = 0usize;
    while start < n {
        let end = (start + k).min(n);
        if end - start < k && !out.is_empty() {
            break;
        }
        out.push((start..end).filter(|&i| pred(i)).count() as u32);
        start = end;
    }
    out
}

/// Bandwidth-style throughput bound per window: `k / n_class × width`
/// (paper Eq. 6), capped.
pub fn bandwidth_bound(counts: &[u32], k: usize, width: u32) -> Vec<f64> {
    counts
        .iter()
        .map(|&c| {
            if c == 0 {
                THROUGHPUT_CAP
            } else {
                (k as f64 / f64::from(c) * f64::from(width)).min(THROUGHPUT_CAP)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq5_throughput() {
        // marks: instruction i commits at 2(i+1): throughput 0.5 everywhere.
        let marks: Vec<u64> = (1..=12).map(|i| 2 * i).collect();
        let thr = throughput_from_marks(&marks, 4);
        assert_eq!(thr.len(), 3);
        for t in thr {
            assert!((t - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_duration_windows_are_capped() {
        let marks = vec![5, 5, 5, 5, 5, 5, 5, 5];
        let thr = throughput_from_marks(&marks, 4);
        assert!((thr[0] - 0.8).abs() < 1e-12, "4 instructions over 5 cycles");
        assert_eq!(thr[1], THROUGHPUT_CAP, "second window has zero duration");
    }

    #[test]
    fn short_trace_single_window() {
        let marks = vec![1, 2, 3];
        let thr = throughput_from_marks(&marks, 400);
        assert_eq!(thr.len(), 1);
        assert!((thr[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trailing_fragment_dropped() {
        let marks: Vec<u64> = (1..=10).collect();
        let thr = throughput_from_marks(&marks, 4);
        assert_eq!(thr.len(), 2, "10 = 2 full windows of 4 + fragment");
    }

    #[test]
    fn counts_and_bandwidth() {
        let c = window_counts(8, 4, |i| i % 2 == 0);
        assert_eq!(c, vec![2, 2]);
        let b = bandwidth_bound(&c, 4, 3);
        assert!((b[0] - 6.0).abs() < 1e-12);
        let empty = bandwidth_bound(&[0], 4, 3);
        assert_eq!(empty[0], THROUGHPUT_CAP);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_k_rejected() {
        let _ = throughput_from_marks(&[1], 0);
    }
}
