//! Shapley attribution over *feature blocks* — the players are spans of the
//! ML input vector, defined by the [`FeatureSchema`] instead of hand-kept
//! index ranges.
//!
//! Where [`shapley`](crate::shapley) asks "which microarchitecture parameters
//! explain the CPI difference between two designs?", this module asks "which
//! feature blocks explain the difference between two model inputs?": a
//! coalition substitutes the target's values for its member blocks into the
//! baseline vector, and the value function is the model's prediction on the
//! blended vector. Because the players come straight from the schema, the
//! game stays correct whenever the layout evolves (the schema version is the
//! contract).

use std::collections::HashMap;
use std::ops::Range;

use concorde_core::schema::{BlockGroup, FeatureSchema};
use rand::seq::SliceRandom;
use rand_chacha::ChaCha12Rng;

use crate::shapley::Attribution;

/// A feature-space Shapley game: one player per named span of the vector.
#[derive(Debug, Clone)]
pub struct FeatureBlockGame {
    /// Player labels (block or group names).
    pub labels: Vec<String>,
    /// Vector span owned by each player.
    pub ranges: Vec<Range<usize>>,
    /// Total vector dimension the game was built for.
    pub dim: usize,
}

impl FeatureBlockGame {
    /// One player per schema block (the finest-grained game; usually played
    /// with [`feature_shapley_mc`] since a full schema has >20 blocks).
    pub fn per_block(schema: &FeatureSchema) -> Self {
        FeatureBlockGame {
            labels: schema.blocks().iter().map(|b| b.name.clone()).collect(),
            ranges: schema.blocks().iter().map(|b| b.range()).collect(),
            dim: schema.dim(),
        }
    }

    /// One player per [`BlockGroup`] present in the schema (≤5 players, so
    /// [`feature_shapley_exact`] is cheap).
    pub fn per_group(schema: &FeatureSchema) -> Self {
        let mut labels = Vec::new();
        let mut ranges = Vec::new();
        for g in BlockGroup::ALL {
            if let Some(r) = schema.group_range(g) {
                labels.push(format!("{g:?}"));
                ranges.push(r);
            }
        }
        FeatureBlockGame {
            labels,
            ranges,
            dim: schema.dim(),
        }
    }

    /// Number of players.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the game has no players.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Bound on memoized coalition values. Exact enumeration fits well inside
/// it (≤2^20 masks); Monte Carlo permutation prefixes are almost all unique,
/// so past this point caching buys nothing — stop inserting rather than let
/// a long MC run grow the map without limit.
const MEMO_CAP: usize = 1 << 20;

/// Memoizing evaluator: coalition mask → prediction on the blended vector.
struct BlendEval<'a, F> {
    f: F,
    base: &'a [f32],
    target: &'a [f32],
    game: &'a FeatureBlockGame,
    scratch: Vec<f32>,
    cache: HashMap<u64, f64>,
    evals: usize,
}

impl<'a, F: FnMut(&[f32]) -> f64> BlendEval<'a, F> {
    fn new(f: F, base: &'a [f32], target: &'a [f32], game: &'a FeatureBlockGame) -> Self {
        assert_eq!(base.len(), game.dim, "baseline vector dimension");
        assert_eq!(target.len(), game.dim, "target vector dimension");
        assert!(game.len() <= 64, "mask-based games cap at 64 players");
        BlendEval {
            f,
            base,
            target,
            game,
            scratch: base.to_vec(),
            cache: HashMap::new(),
            evals: 0,
        }
    }

    fn value(&mut self, mask: u64) -> f64 {
        if let Some(&v) = self.cache.get(&mask) {
            return v;
        }
        self.scratch.copy_from_slice(self.base);
        for (g, range) in self.game.ranges.iter().enumerate() {
            if mask & (1 << g) != 0 {
                self.scratch[range.clone()].copy_from_slice(&self.target[range.clone()]);
            }
        }
        let v = (self.f)(&self.scratch);
        if self.cache.len() < MEMO_CAP {
            self.cache.insert(mask, v);
        }
        self.evals += 1;
        v
    }
}

/// Exact feature-block Shapley values by subset enumeration.
///
/// # Panics
///
/// Panics if the game has more than 20 players (use
/// [`feature_shapley_mc`]) or if the vectors don't match the game dimension.
pub fn feature_shapley_exact<F: FnMut(&[f32]) -> f64>(
    f: F,
    base: &[f32],
    target: &[f32],
    game: &FeatureBlockGame,
) -> Attribution {
    let d = game.len();
    assert!(d <= 20, "exact Shapley is exponential; got {d} players");
    let mut eval = BlendEval::new(f, base, target, game);
    let mut fact = vec![1.0f64; d + 1];
    for i in 1..=d {
        fact[i] = fact[i - 1] * i as f64;
    }
    let mut values = vec![0.0f64; d];
    for mask in 0u64..(1 << d) {
        let s = mask.count_ones() as usize;
        let v_s = eval.value(mask);
        for (g, value) in values.iter_mut().enumerate() {
            if mask & (1 << g) == 0 {
                let w = fact[s] * fact[d - 1 - s] / fact[d];
                let v_si = eval.value(mask | (1 << g));
                *value += w * (v_si - v_s);
            }
        }
    }
    let base_value = eval.value(0);
    let target_value = eval.value((1u64 << d) - 1);
    Attribution {
        labels: game.labels.clone(),
        values,
        base_value,
        target_value,
        evaluations: eval.evals,
    }
}

/// Monte Carlo feature-block Shapley over `n_perms` random orderings. Each
/// permutation telescopes, so values sum exactly to
/// `f(target) − f(base)` at any sample size.
///
/// # Panics
///
/// Panics if `n_perms == 0` or the vectors don't match the game dimension.
pub fn feature_shapley_mc<F: FnMut(&[f32]) -> f64>(
    f: F,
    base: &[f32],
    target: &[f32],
    game: &FeatureBlockGame,
    n_perms: usize,
    rng: &mut ChaCha12Rng,
) -> Attribution {
    assert!(n_perms > 0, "need at least one permutation");
    let d = game.len();
    let mut eval = BlendEval::new(f, base, target, game);
    let mut values = vec![0.0f64; d];
    let mut order: Vec<usize> = (0..d).collect();
    for _ in 0..n_perms {
        order.shuffle(rng);
        let mut mask = 0u64;
        let mut prev = eval.value(0);
        for &g in &order {
            mask |= 1 << g;
            let v = eval.value(mask);
            values[g] += v - prev;
            prev = v;
        }
    }
    for v in &mut values {
        *v /= n_perms as f64;
    }
    let base_value = eval.value(0);
    let target_value = eval.value(if d == 64 { u64::MAX } else { (1u64 << d) - 1 });
    Attribution {
        labels: game.labels.clone(),
        values,
        base_value,
        target_value,
        evaluations: eval.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_analytic::distribution::Encoding;
    use concorde_core::features::FeatureVariant;
    use rand::SeedableRng;

    fn schema() -> FeatureSchema {
        FeatureSchema::new(Encoding { levels: 4 }, FeatureVariant::Full)
    }

    /// Model that only reads the first dim of the "rob" block and the
    /// mispredict scalar — attribution must land on exactly those blocks.
    fn two_block_model(schema: &FeatureSchema) -> impl FnMut(&[f32]) -> f64 {
        let rob = schema.range("rob").unwrap().start;
        let mis = schema.range("mispredict").unwrap().start;
        move |x: &[f32]| f64::from(x[rob]) * 2.0 + f64::from(x[mis]) * 3.0
    }

    #[test]
    fn exact_attribution_lands_on_the_read_blocks() {
        let s = schema();
        let game = FeatureBlockGame::per_group(&s);
        assert_eq!(game.len(), 5);
        let base = vec![0.0f32; s.dim()];
        let mut target = vec![0.0f32; s.dim()];
        target[s.range("rob").unwrap().start] = 1.0;
        target[s.range("mispredict").unwrap().start] = 1.0;
        let attr = feature_shapley_exact(two_block_model(&s), &base, &target, &game);
        let total: f64 = attr.values.iter().sum();
        assert!((total - (attr.target_value - attr.base_value)).abs() < 1e-9);
        // Primary gets the ×2 effect, Mispredict the ×3; the rest nothing.
        let by_label: HashMap<&str, f64> = attr
            .labels
            .iter()
            .map(String::as_str)
            .zip(attr.values.iter().copied())
            .collect();
        assert!((by_label["Primary"] - 2.0).abs() < 1e-9);
        assert!((by_label["Mispredict"] - 3.0).abs() < 1e-9);
        assert!(by_label["Latency"].abs() < 1e-12);
    }

    #[test]
    fn mc_matches_exact_and_telescopes() {
        let s = schema();
        let game = FeatureBlockGame::per_group(&s);
        let base = vec![0.1f32; s.dim()];
        let target = vec![0.9f32; s.dim()];
        let exact = feature_shapley_exact(two_block_model(&s), &base, &target, &game);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let mc = feature_shapley_mc(two_block_model(&s), &base, &target, &game, 64, &mut rng);
        for (e, m) in exact.values.iter().zip(&mc.values) {
            assert!((e - m).abs() < 0.05, "exact {e} vs mc {m}");
        }
        let total: f64 = mc.values.iter().sum();
        assert!((total - (mc.target_value - mc.base_value)).abs() < 1e-9);
    }

    #[test]
    fn per_block_game_covers_the_whole_vector() {
        let s = schema();
        let game = FeatureBlockGame::per_block(&s);
        assert_eq!(game.len(), s.blocks().len());
        let covered: usize = game.ranges.iter().map(|r| r.len()).sum();
        assert_eq!(covered, s.dim());
        assert!(!game.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn dimension_mismatch_is_rejected() {
        let s = schema();
        let game = FeatureBlockGame::per_group(&s);
        let base = vec![0.0f32; 3];
        let target = vec![0.0f32; s.dim()];
        let _ = feature_shapley_exact(|_| 0.0, &base, &target, &game);
    }
}
