//! Parameter groups for attribution (the "players" of the Shapley game).

use concorde_cyclesim::{MicroArch, ParamId};
use serde::{Deserialize, Serialize};

/// A named group of Table 1 parameters that move together in ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGroup {
    /// Display label (Figure 16 legend).
    pub label: String,
    /// Member parameters.
    pub params: Vec<ParamId>,
}

impl ParamGroup {
    /// Single-parameter group.
    pub fn single(p: ParamId) -> Self {
        ParamGroup {
            label: p.label().to_string(),
            params: vec![p],
        }
    }
}

/// The 17 groups of Figure 16: the three cache sizes move together, the
/// branch-predictor type and its Simple rate move together, and every other
/// parameter is its own player.
pub fn default_groups() -> Vec<ParamGroup> {
    vec![
        ParamGroup {
            label: "L1i/L1d/L2 caches".into(),
            params: vec![ParamId::L1iKb, ParamId::L1dKb, ParamId::L2Kb],
        },
        ParamGroup::single(ParamId::PrefetchDegree),
        ParamGroup::single(ParamId::RobSize),
        ParamGroup::single(ParamId::LqSize),
        ParamGroup::single(ParamId::SqSize),
        ParamGroup::single(ParamId::LoadPipes),
        ParamGroup::single(ParamId::LsPipes),
        ParamGroup::single(ParamId::AluWidth),
        ParamGroup::single(ParamId::FpWidth),
        ParamGroup::single(ParamId::LsWidth),
        ParamGroup::single(ParamId::CommitWidth),
        ParamGroup {
            label: "Branch predictor".into(),
            params: vec![ParamId::BranchPredictor, ParamId::SimpleBpPct],
        },
        ParamGroup::single(ParamId::MaxIcacheFills),
        ParamGroup::single(ParamId::FetchBuffers),
        ParamGroup::single(ParamId::FetchWidth),
        ParamGroup::single(ParamId::DecodeWidth),
        ParamGroup::single(ParamId::RenameWidth),
    ]
}

/// The two-player game of Figure 15: cache sizes vs the load queue.
pub fn cache_vs_lq_groups() -> Vec<ParamGroup> {
    vec![
        ParamGroup {
            label: "Caches".into(),
            params: vec![ParamId::L1iKb, ParamId::L1dKb, ParamId::L2Kb],
        },
        ParamGroup {
            label: "Load queue".into(),
            params: vec![ParamId::LqSize],
        },
    ]
}

/// Builds the design reached from `base` by moving the groups whose bit is
/// set in `mask` to their `target` values.
pub fn arch_for_mask(
    base: &MicroArch,
    target: &MicroArch,
    groups: &[ParamGroup],
    mask: u64,
) -> MicroArch {
    let mut arch = *base;
    for (g, group) in groups.iter().enumerate() {
        if mask & (1 << g) != 0 {
            for p in &group.params {
                p.transplant(&mut arch, target);
            }
        }
    }
    arch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_groups_cover_all_params_once() {
        let groups = default_groups();
        assert_eq!(groups.len(), 17);
        let mut all: Vec<ParamId> = groups.iter().flat_map(|g| g.params.clone()).collect();
        all.sort();
        all.dedup();
        assert_eq!(
            all.len(),
            ParamId::ALL.len(),
            "every Table 1 parameter appears exactly once"
        );
    }

    #[test]
    fn mask_endpoints() {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let groups = default_groups();
        assert_eq!(arch_for_mask(&base, &target, &groups, 0), base);
        let full = (1u64 << groups.len()) - 1;
        assert_eq!(arch_for_mask(&base, &target, &groups, full), target);
    }

    #[test]
    fn single_bit_moves_one_group() {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let groups = default_groups();
        // Bit 2 = ROB.
        let a = arch_for_mask(&base, &target, &groups, 1 << 2);
        assert_eq!(a.rob_size, target.rob_size);
        assert_eq!(a.lq_size, base.lq_size);
        assert_eq!(a.mem, base.mem);
    }
}
