//! # concorde-attribution
//!
//! Fine-grained performance attribution with Shapley values (paper §6).
//!
//! Given any performance model `f(microarchitecture) → CPI` — Concorde's
//! predictor, the cycle-level simulator, or a synthetic function — attribute
//! the CPI difference between a baseline and a target design to groups of
//! Table 1 parameters. [`shapley::ablation_deltas`] reproduces the classic
//! (order-biased) single-path ablation; [`shapley::shapley_exact`] and
//! [`shapley::shapley_mc`] compute the fair, order-independent Shapley
//! attribution, with model evaluations memoized by parameter subset.
//!
//! ```
//! use concorde_attribution::{cache_vs_lq_groups, shapley_exact};
//! use concorde_cyclesim::MicroArch;
//!
//! let base = MicroArch::big_core();
//! let target = MicroArch::arm_n1();
//! let f = |a: &MicroArch| 1.0 + f64::from(256 - a.lq_size) * 1e-3;
//! let s = shapley_exact(f, &base, &target, &cache_vs_lq_groups());
//! let total: f64 = s.values.iter().sum();
//! assert!((total - (s.target_value - s.base_value)).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

pub mod feature_blocks;
pub mod groups;
pub mod shapley;

pub use feature_blocks::{feature_shapley_exact, feature_shapley_mc, FeatureBlockGame};
pub use groups::{arch_for_mask, cache_vs_lq_groups, default_groups, ParamGroup};
pub use shapley::{ablation_deltas, shapley_exact, shapley_mc, Attribution};
