//! Shapley-value performance attribution (paper §6).
//!
//! Given a performance model `f(arch) → CPI`, a baseline design, and a target
//! design, attribute the CPI difference `f(target) − f(base)` to parameter
//! groups. Ordered single-path ablations are order-biased (Figure 15); the
//! Shapley value averages the incremental effect of each group over orderings
//! — all `d!` of them exactly for small games, or a Monte Carlo sample of
//! permutations for large ones. Evaluations are memoized by the subset of
//! groups moved, which is what makes large-scale attribution affordable with
//! a fast model like Concorde.

use std::collections::HashMap;

use concorde_cyclesim::MicroArch;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::groups::{arch_for_mask, ParamGroup};

/// Result of an attribution analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attribution {
    /// Group labels, in input order.
    pub labels: Vec<String>,
    /// Attributed CPI deltas per group (`Σ values = target − base`).
    pub values: Vec<f64>,
    /// `f(base)`.
    pub base_value: f64,
    /// `f(target)`.
    pub target_value: f64,
    /// Number of model evaluations performed (memoized calls excluded).
    pub evaluations: usize,
}

/// Memoizing evaluator over group subsets.
struct SubsetEval<'a, F> {
    f: F,
    base: &'a MicroArch,
    target: &'a MicroArch,
    groups: &'a [ParamGroup],
    cache: HashMap<u64, f64>,
    evals: usize,
}

impl<'a, F: FnMut(&MicroArch) -> f64> SubsetEval<'a, F> {
    fn new(f: F, base: &'a MicroArch, target: &'a MicroArch, groups: &'a [ParamGroup]) -> Self {
        SubsetEval {
            f,
            base,
            target,
            groups,
            cache: HashMap::new(),
            evals: 0,
        }
    }

    fn value(&mut self, mask: u64) -> f64 {
        if let Some(&v) = self.cache.get(&mask) {
            return v;
        }
        let arch = arch_for_mask(self.base, self.target, self.groups, mask);
        let v = (self.f)(&arch);
        self.cache.insert(mask, v);
        self.evals += 1;
        v
    }
}

/// One ordered ablation path: moving groups from `base` to `target` in the
/// given `order`, returns the incremental CPI delta attributed to each group
/// (indexed by group, not by position).
pub fn ablation_deltas<F: FnMut(&MicroArch) -> f64>(
    f: F,
    base: &MicroArch,
    target: &MicroArch,
    groups: &[ParamGroup],
    order: &[usize],
) -> Attribution {
    assert_eq!(order.len(), groups.len(), "order must permute all groups");
    let mut eval = SubsetEval::new(f, base, target, groups);
    let mut mask = 0u64;
    let mut prev = eval.value(0);
    let base_value = prev;
    let mut values = vec![0.0; groups.len()];
    for &g in order {
        mask |= 1 << g;
        let v = eval.value(mask);
        values[g] = v - prev;
        prev = v;
    }
    Attribution {
        labels: groups.iter().map(|g| g.label.clone()).collect(),
        values,
        base_value,
        target_value: prev,
        evaluations: eval.evals,
    }
}

/// Exact Shapley values by full subset enumeration (2^d evaluations).
///
/// # Panics
///
/// Panics if there are more than 20 groups (2^20 evaluations is the sane
/// ceiling; use [`shapley_mc`] beyond that).
pub fn shapley_exact<F: FnMut(&MicroArch) -> f64>(
    f: F,
    base: &MicroArch,
    target: &MicroArch,
    groups: &[ParamGroup],
) -> Attribution {
    let d = groups.len();
    assert!(d <= 20, "exact Shapley is exponential; got {d} groups");
    let mut eval = SubsetEval::new(f, base, target, groups);
    // Precompute |S|!(d-1-|S|)!/d! weights.
    let mut fact = vec![1.0f64; d + 1];
    for i in 1..=d {
        fact[i] = fact[i - 1] * i as f64;
    }
    let mut values = vec![0.0f64; d];
    for mask in 0u64..(1 << d) {
        let s = mask.count_ones() as usize;
        let v_s = eval.value(mask);
        for (g, value) in values.iter_mut().enumerate() {
            if mask & (1 << g) == 0 {
                let w = fact[s] * fact[d - 1 - s] / fact[d];
                let v_si = eval.value(mask | (1 << g));
                *value += w * (v_si - v_s);
            }
        }
    }
    let base_value = eval.value(0);
    let target_value = eval.value((1 << d) - 1);
    Attribution {
        labels: groups.iter().map(|g| g.label.clone()).collect(),
        values,
        base_value,
        target_value,
        evaluations: eval.evals,
    }
}

/// Monte Carlo Shapley estimate over `n_perms` random orderings (Eq. 8's
/// permutation form). Each permutation telescopes, so the returned values sum
/// exactly to `f(target) − f(base)` regardless of the sample size.
pub fn shapley_mc<F: FnMut(&MicroArch) -> f64>(
    f: F,
    base: &MicroArch,
    target: &MicroArch,
    groups: &[ParamGroup],
    n_perms: usize,
    rng: &mut ChaCha12Rng,
) -> Attribution {
    assert!(n_perms > 0, "need at least one permutation");
    let d = groups.len();
    let mut eval = SubsetEval::new(f, base, target, groups);
    let mut values = vec![0.0f64; d];
    let mut order: Vec<usize> = (0..d).collect();
    for _ in 0..n_perms {
        order.shuffle(rng);
        let mut mask = 0u64;
        let mut prev = eval.value(0);
        for &g in &order {
            mask |= 1 << g;
            let v = eval.value(mask);
            values[g] += v - prev;
            prev = v;
        }
    }
    for v in &mut values {
        *v /= n_perms as f64;
    }
    let base_value = eval.value(0);
    let target_value = eval.value((1 << d) - 1);
    Attribution {
        labels: groups.iter().map(|g| g.label.clone()).collect(),
        values,
        base_value,
        target_value,
        evaluations: eval.evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groups::{cache_vs_lq_groups, default_groups};
    use concorde_cyclesim::ParamId;
    use rand::SeedableRng;

    /// Synthetic "performance model" with a known interaction: CPI grows only
    /// when BOTH the caches shrink and the LQ shrinks (the Figure 15 story).
    fn interacting_model(arch: &MicroArch) -> f64 {
        let small_cache = arch.mem.l1d_kb <= 64;
        let small_lq = arch.lq_size <= 16;
        match (small_cache, small_lq) {
            (true, true) => 2.0,
            (true, false) => 1.1,
            (false, true) => 1.05,
            (false, false) => 1.0,
        }
    }

    fn endpoints() -> (MicroArch, MicroArch) {
        (MicroArch::big_core(), MicroArch::arm_n1())
    }

    #[test]
    fn ablation_order_changes_attribution() {
        let (base, target) = endpoints();
        let groups = cache_vs_lq_groups();
        let a = ablation_deltas(interacting_model, &base, &target, &groups, &[0, 1]);
        let b = ablation_deltas(interacting_model, &base, &target, &groups, &[1, 0]);
        // Cache-first blames the LQ; LQ-first blames the caches.
        assert!(
            a.values[1] > a.values[0],
            "cache-first: LQ gets the blame: {:?}",
            a.values
        );
        assert!(
            b.values[0] > b.values[1],
            "LQ-first: caches get the blame: {:?}",
            b.values
        );
        // Both telescope to the same total.
        let ta: f64 = a.values.iter().sum();
        let tb: f64 = b.values.iter().sum();
        assert!((ta - tb).abs() < 1e-12);
    }

    #[test]
    fn exact_shapley_is_fair_and_efficient() {
        let (base, target) = endpoints();
        let groups = cache_vs_lq_groups();
        let s = shapley_exact(interacting_model, &base, &target, &groups);
        let total: f64 = s.values.iter().sum();
        assert!(
            (total - (s.target_value - s.base_value)).abs() < 1e-12,
            "efficiency"
        );
        // Symmetric-ish interaction: both players get a substantial share.
        assert!(s.values[0] > 0.2 && s.values[1] > 0.2, "{:?}", s.values);
        // Exact two-player Shapley of this game: caches get slightly more
        // (their solo effect 0.1 > LQ's 0.05).
        assert!(s.values[0] > s.values[1]);
    }

    #[test]
    fn mc_matches_exact_for_small_games() {
        let (base, target) = endpoints();
        let groups = cache_vs_lq_groups();
        let exact = shapley_exact(interacting_model, &base, &target, &groups);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let mc = shapley_mc(interacting_model, &base, &target, &groups, 200, &mut rng);
        for (e, m) in exact.values.iter().zip(&mc.values) {
            assert!((e - m).abs() < 0.05, "exact {e} vs mc {m}");
        }
        let total: f64 = mc.values.iter().sum();
        assert!(
            (total - (mc.target_value - mc.base_value)).abs() < 1e-9,
            "MC efficiency holds exactly"
        );
    }

    #[test]
    fn memoization_bounds_evaluations() {
        let (base, target) = endpoints();
        let groups = default_groups();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mut calls = 0usize;
        let f = |a: &MicroArch| {
            calls += 1;
            f64::from(a.rob_size % 7) * 0.01 + 1.0
        };
        let s = shapley_mc(f, &base, &target, &groups, 50, &mut rng);
        assert_eq!(s.evaluations, calls);
        assert!(calls <= 50 * 17 + 2, "memoized evals {calls}");
        assert!(calls < 850, "dedup must help: {calls}");
    }

    #[test]
    fn additive_model_has_order_independent_attribution() {
        // No interactions: ablation equals Shapley for any order.
        let f = |a: &MicroArch| {
            1.0 + f64::from(1024 - a.rob_size) * 1e-3 + f64::from(256 - a.lq_size) * 1e-3
        };
        let (base, target) = endpoints();
        let groups = vec![
            crate::groups::ParamGroup::single(ParamId::RobSize),
            crate::groups::ParamGroup::single(ParamId::LqSize),
        ];
        let a = ablation_deltas(f, &base, &target, &groups, &[0, 1]);
        let b = ablation_deltas(f, &base, &target, &groups, &[1, 0]);
        let s = shapley_exact(f, &base, &target, &groups);
        for i in 0..2 {
            assert!((a.values[i] - b.values[i]).abs() < 1e-12);
            assert!((a.values[i] - s.values[i]).abs() < 1e-12);
        }
    }
}
