//! Per-window instruction featurization for the sequence baseline.
//!
//! TAO-style models consume the instruction stream itself; to keep the O(L)
//! character while making CPU training tractable, the baseline summarizes
//! each window of [`BASE_WINDOW`] instructions into a small feature vector
//! (instruction mix, dependency locality, cache/branch behaviour under the
//! *fixed* target microarchitecture) and runs an LSTM over the window
//! sequence. Inference cost remains proportional to the region length.

use concorde_analytic::prelude::*;
use concorde_trace::{Instruction, OpClass};

/// Instructions summarized per sequence step.
pub const BASE_WINDOW: usize = 64;

/// Features per sequence step.
pub const BASE_FEATS: usize = 12;

/// Featurizes a region for the baseline under a fixed memory configuration
/// (the baseline is specialized to one microarchitecture, like TAO).
///
/// Returns a row-major `[T × BASE_FEATS]` sequence.
pub fn featurize(
    warmup: &[Instruction],
    instrs: &[Instruction],
    mem: concorde_cache::MemConfig,
) -> Vec<f32> {
    let info = analyze_static(instrs);
    let data = analyze_data(warmup, instrs, mem);
    let inst = analyze_inst(warmup, instrs, mem);

    let n = instrs.len();
    let t = n / BASE_WINDOW;
    let mut out = Vec::with_capacity(t * BASE_FEATS);
    for w in 0..t {
        let range = w * BASE_WINDOW..(w + 1) * BASE_WINDOW;
        let mut mix = [0f32; 6]; // alu, muldiv, fp, load, store, branch
        let mut isb = 0f32;
        let mut dep_dist = 0f32;
        let mut dep_cnt = 0f32;
        let mut load_lat = 0f32;
        let mut load_cnt = 0f32;
        let mut imiss = 0f32;
        let mut mem_dep = 0f32;
        for i in range.clone() {
            match info.ops[i] {
                OpClass::IntAlu | OpClass::Nop => mix[0] += 1.0,
                OpClass::IntMul | OpClass::IntDiv => mix[1] += 1.0,
                OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => mix[2] += 1.0,
                OpClass::Load => mix[3] += 1.0,
                OpClass::Store => mix[4] += 1.0,
                OpClass::Branch(_) => mix[5] += 1.0,
                OpClass::Isb => isb += 1.0,
            }
            for &d in &info.reg_deps[i] {
                if d != NO_DEP {
                    dep_dist += (i as f32 - d as f32).min(256.0);
                    dep_cnt += 1.0;
                }
            }
            if info.mem_dep[i] != NO_DEP {
                mem_dep += 1.0;
            }
            if info.ops[i].is_load() {
                load_lat += data.exec_latency[i] as f32;
                load_cnt += 1.0;
            }
            if !inst.l1_hit[i] {
                imiss += 1.0;
            }
        }
        let wl = BASE_WINDOW as f32;
        out.extend_from_slice(&[
            mix[0] / wl,
            mix[1] / wl,
            mix[2] / wl,
            mix[3] / wl,
            mix[4] / wl,
            mix[5] / wl,
            isb / wl,
            (dep_dist / dep_cnt.max(1.0)) / 64.0,
            mem_dep / wl,
            (load_lat / load_cnt.max(1.0)) / 200.0,
            imiss / wl,
            load_cnt / wl,
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_cache::MemConfig;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn shapes_and_ranges() {
        let t = generate_region(&by_id("S1").unwrap(), 0, 0, 4096).instrs;
        let f = featurize(&[], &t, MemConfig::default());
        assert_eq!(f.len(), (4096 / BASE_WINDOW) * BASE_FEATS);
        for x in &f {
            assert!(x.is_finite() && *x >= 0.0 && *x <= 4.0, "feature {x}");
        }
    }

    #[test]
    fn mem_bound_vs_resident_differ_in_latency_feature() {
        let chase = generate_region(&by_id("S1").unwrap(), 0, 0, 8192).instrs;
        let resident = generate_region(&by_id("O1").unwrap(), 0, 0, 8192).instrs;
        let fc = featurize(&[], &chase, MemConfig::default());
        let fr = featurize(&[], &resident, MemConfig::default());
        let avg_lat = |f: &[f32]| {
            let t = f.len() / BASE_FEATS;
            (0..t).map(|w| f[w * BASE_FEATS + 9]).sum::<f32>() / t as f32
        };
        assert!(
            avg_lat(&fc) > 2.0 * avg_lat(&fr),
            "{} vs {}",
            avg_lat(&fc),
            avg_lat(&fr)
        );
    }
}
