//! # concorde-baseline
//!
//! The TAO-like O(L) sequence-model baseline (paper §5.1, Figure 8): a
//! single-microarchitecture learned simulator that featurizes windows of the
//! instruction stream and runs an LSTM over the sequence — representative of
//! prior sequence-based approaches (TAO, SimNet), against which Concorde's
//! O(1) compositional model is compared.
//!
//! ```no_run
//! use concorde_baseline::{featurize, train_baseline, BaselineConfig};
//! use concorde_cache::MemConfig;
//! use concorde_trace::{by_id, generate_region};
//!
//! let region = generate_region(&by_id("S5").unwrap(), 0, 0, 4096);
//! let seq = featurize(&[], &region.instrs, MemConfig::default());
//! let model = train_baseline(&[(seq.clone(), 1.2)], &BaselineConfig::default());
//! let cpi = model.predict(&seq);
//! assert!(cpi > 0.0);
//! ```

#![warn(missing_docs)]

pub mod featurize;
pub mod model;

pub use featurize::{featurize, BASE_FEATS, BASE_WINDOW};
pub use model::{train_baseline, BaselineConfig, TaoBaseline};
