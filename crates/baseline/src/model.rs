//! The TAO-like sequence baseline: LSTM over window features → CPI.
//!
//! Specialized to a single microarchitecture (like TAO, which "does not
//! generalize without additional retraining beyond a single
//! microarchitecture", paper §5.1) and O(L) at inference.

use concorde_ml::{AdamVec, LstmGrads, LstmRegressor};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::featurize::BASE_FEATS;

/// Training configuration for the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// LSTM hidden width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Seed.
    pub seed: u64,
    /// Worker threads (0 = all).
    pub threads: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hidden: 32,
            epochs: 30,
            lr: 3e-3,
            seed: 7,
            threads: 0,
        }
    }
}

/// A trained baseline model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaoBaseline {
    lstm: LstmRegressor,
    feat_mean: Vec<f32>,
    feat_std: Vec<f32>,
}

impl TaoBaseline {
    fn normalize(&self, seq: &[f32]) -> Vec<f32> {
        let mut out = seq.to_vec();
        for row in out.chunks_exact_mut(BASE_FEATS) {
            for ((x, m), s) in row.iter_mut().zip(&self.feat_mean).zip(&self.feat_std) {
                *x = (*x - m) / s;
            }
        }
        out
    }

    /// Predicts CPI for a featurized sequence.
    pub fn predict(&self, seq: &[f32]) -> f64 {
        let x = self.normalize(seq);
        f64::from(self.lstm.predict(&x)).clamp(-8.0, 8.0).exp()
    }
}

fn flatten_params(m: &LstmRegressor) -> Vec<f32> {
    let mut v = Vec::with_capacity(m.num_params());
    v.extend_from_slice(&m.wx);
    v.extend_from_slice(&m.wh);
    v.extend_from_slice(&m.b);
    v.extend_from_slice(&m.head_w);
    v.push(m.head_b);
    v
}

fn unflatten_params(m: &mut LstmRegressor, v: &[f32]) {
    let (nwx, nwh, nb, nhw) = (m.wx.len(), m.wh.len(), m.b.len(), m.head_w.len());
    let mut o = 0;
    m.wx.copy_from_slice(&v[o..o + nwx]);
    o += nwx;
    m.wh.copy_from_slice(&v[o..o + nwh]);
    o += nwh;
    m.b.copy_from_slice(&v[o..o + nb]);
    o += nb;
    m.head_w.copy_from_slice(&v[o..o + nhw]);
    o += nhw;
    m.head_b = v[o];
}

fn flatten_grads(g: &LstmGrads) -> Vec<f32> {
    let mut v = Vec::new();
    v.extend_from_slice(&g.wx);
    v.extend_from_slice(&g.wh);
    v.extend_from_slice(&g.b);
    v.extend_from_slice(&g.head_w);
    v.push(g.head_b);
    v
}

/// Trains the baseline on `(sequence, cpi)` pairs. Sequences may have
/// different lengths (each a multiple of [`BASE_FEATS`]).
///
/// # Panics
///
/// Panics if `data` is empty or labels are non-positive.
pub fn train_baseline(data: &[(Vec<f32>, f64)], cfg: &BaselineConfig) -> TaoBaseline {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(
        data.iter().all(|(_, y)| *y > 0.0),
        "labels must be positive"
    );

    // Fit feature normalization.
    let mut mean = vec![0.0f64; BASE_FEATS];
    let mut count = 0usize;
    for (seq, _) in data {
        for row in seq.chunks_exact(BASE_FEATS) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += f64::from(x);
            }
            count += 1;
        }
    }
    for m in &mut mean {
        *m /= count.max(1) as f64;
    }
    let mut var = [0.0f64; BASE_FEATS];
    for (seq, _) in data {
        for row in seq.chunks_exact(BASE_FEATS) {
            for ((v, m), &x) in var.iter_mut().zip(&mean).zip(row) {
                let d = f64::from(x) - m;
                *v += d * d;
            }
        }
    }
    let feat_mean: Vec<f32> = mean.iter().map(|m| *m as f32).collect();
    let feat_std: Vec<f32> = var
        .iter()
        .map(|v| ((v / count.max(1) as f64).sqrt().max(1e-4)) as f32)
        .collect();

    let mut rng = ChaCha12Rng::seed_from_u64(cfg.seed);
    let mut lstm = LstmRegressor::new(BASE_FEATS, cfg.hidden, &mut rng);
    let mut params = flatten_params(&lstm);
    let mut opt = AdamVec::new(params.len(), cfg.lr);

    let model_stub = TaoBaseline {
        lstm: lstm.clone(),
        feat_mean: feat_mean.clone(),
        feat_std: feat_std.clone(),
    };
    let normalized: Vec<(Vec<f32>, f32)> = data
        .iter()
        .map(|(seq, y)| (model_stub.normalize(seq), (*y as f32).ln()))
        .collect();

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    // Log-MAE loss, matching the Concorde trainer's surrogate.
    let log_mae = |o: f32, t: f32| ((o - t).abs(), if o >= t { 1.0 } else { -1.0 });

    for _ in 0..cfg.epochs {
        unflatten_params(&mut lstm, &params);
        let shard = normalized.len().div_ceil(threads).max(1);
        let grads: Vec<(LstmGrads, usize)> = std::thread::scope(|s| {
            let lstm_ref = &lstm;
            let mut handles = Vec::new();
            for chunk in normalized.chunks(shard) {
                handles.push(s.spawn(move || {
                    let mut g = LstmGrads::zeros_like(lstm_ref);
                    for (seq, t) in chunk {
                        let (gi, _) = lstm_ref.grad_sequence(seq, *t, log_mae);
                        g.merge(&gi);
                    }
                    (g, chunk.len())
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("baseline thread panicked"))
                .collect()
        });
        let mut total = LstmGrads::zeros_like(&lstm);
        for (g, _) in grads {
            total.merge(&g);
        }
        total.average();
        let gflat = flatten_grads(&total);
        opt.apply(&mut params, &gflat, 1.0);
    }
    unflatten_params(&mut lstm, &params);
    TaoBaseline {
        lstm,
        feat_mean,
        feat_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{featurize, BASE_WINDOW};
    use concorde_cache::MemConfig;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn baseline_learns_workload_cpi_ordering() {
        // Two workloads with very different CPIs at a fixed arch; the
        // baseline should at least order them correctly after training.
        let mem = MemConfig::default();
        let mut data = Vec::new();
        for (id, cpi) in [("O1", 0.6f64), ("S1", 8.0)] {
            for t in 0..6u32 {
                let r = generate_region(&by_id(id).unwrap(), t % 2, u64::from(t) * 8192, 4096);
                let seq = featurize(&[], &r.instrs, mem);
                data.push((seq, cpi * (1.0 + f64::from(t) * 0.01)));
            }
        }
        let cfg = BaselineConfig {
            epochs: 60,
            hidden: 16,
            ..BaselineConfig::default()
        };
        let model = train_baseline(&data, &cfg);
        let fast = generate_region(&by_id("O1").unwrap(), 1, 64 * 4096, 4096);
        let slow = generate_region(&by_id("S1").unwrap(), 1, 64 * 4096, 4096);
        let pf = model.predict(&featurize(&[], &fast.instrs, mem));
        let ps = model.predict(&featurize(&[], &slow.instrs, mem));
        assert!(ps > pf, "slow {ps} must exceed fast {pf}");
        assert!(pf > 0.0 && ps.is_finite());
    }

    #[test]
    fn sequences_of_different_lengths_work() {
        let mem = MemConfig::default();
        let r1 = generate_region(&by_id("O2").unwrap(), 0, 0, 2 * BASE_WINDOW);
        let r2 = generate_region(&by_id("O2").unwrap(), 0, 0, 8 * BASE_WINDOW);
        let data = vec![
            (featurize(&[], &r1.instrs, mem), 1.0),
            (featurize(&[], &r2.instrs, mem), 1.2),
        ];
        let cfg = BaselineConfig {
            epochs: 3,
            hidden: 8,
            ..BaselineConfig::default()
        };
        let m = train_baseline(&data, &cfg);
        assert!(m.predict(&data[0].0) > 0.0);
    }
}
