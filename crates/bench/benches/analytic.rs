//! Criterion microbenchmarks of the analytical-stage components — the cost
//! breakdown behind the paper's §5.2.3 preprocessing table (the ROB model
//! invocations dominate; everything else is comparatively free).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use concorde_analytic::prelude::*;
use concorde_branch::{BranchUnit, PredictorKind};
use concorde_cache::{simulate_inorder, MemConfig};
use concorde_trace::{by_id, generate_region};

fn bench_analytic(c: &mut Criterion) {
    let n = 16_384;
    let spec = by_id("P9").unwrap();
    let trace = generate_region(&spec, 0, 0, n);
    let info = analyze_static(&trace.instrs);
    let data = analyze_data(&[], &trace.instrs, MemConfig::default());
    let inst = analyze_inst(&[], &trace.instrs, MemConfig::default());

    c.bench_function("trace_generation_16k", |b| {
        b.iter(|| generate_region(&spec, 0, 0, n));
    });
    c.bench_function("inorder_cache_sim_16k", |b| {
        b.iter(|| simulate_inorder(&trace.instrs, MemConfig::default()));
    });
    c.bench_function("tage_simulation_16k", |b| {
        b.iter(|| BranchUnit::simulate(PredictorKind::Tage, 0, &trace.instrs));
    });

    let mut g = c.benchmark_group("rob_model");
    for rob in [16u32, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(rob), &rob, |b, &rob| {
            b.iter(|| rob_model(&info, &data, rob));
        });
    }
    g.finish();

    c.bench_function("lq_model_16", |b| {
        b.iter(|| queue_model(&info, &data, 16, QueueKind::Load));
    });
    c.bench_function("pipes_bounds", |b| {
        b.iter(|| pipe_bounds(&info, 2, 2, 256));
    });
    c.bench_function("icache_fills_model_8", |b| {
        b.iter(|| icache_fills_model(&info, &inst, 8));
    });
    c.bench_function("percentile_encoding_101", |b| {
        let samples: Vec<f64> = (0..64).map(|i| (i % 13) as f64).collect();
        let enc = Encoding::paper();
        b.iter(|| enc.encode(&samples));
    });
}

criterion_group! {
    name = analytic;
    config = Criterion::default().sample_size(20);
    targets = bench_analytic
}
criterion_main!(analytic);
