//! Criterion benches for the feature pipeline: assembly ns/vector
//! (allocating `features` vs zero-allocation `features_into`), nearest-grid
//! quantized lookups under the quantized sweep, and `precompute` wall time
//! at 1 vs 4 threads (the §5.2.3 serve-cache-miss long tail).

use criterion::{criterion_group, criterion_main, Criterion};

use concorde_core::prelude::*;
use concorde_cyclesim::MicroArch;
use concorde_trace::Instruction;

struct Setup {
    profile: ReproProfile,
    warm: Vec<Instruction>,
    region: Vec<Instruction>,
    store: FeatureStore,
    arch: MicroArch,
}

fn setup() -> Setup {
    let profile = ReproProfile::quick();
    let spec = concorde_trace::by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let arch = MicroArch::arm_n1();
    let store = FeatureStore::precompute(
        w,
        r,
        &SweepConfig::for_pair(&MicroArch::big_core(), &arch),
        &profile,
    );
    Setup {
        profile,
        warm: w.to_vec(),
        region: r.to_vec(),
        store,
        arch,
    }
}

fn bench_assembly(c: &mut Criterion) {
    let s = setup();
    let dim = FeatureSchema::dim_for(s.profile.encoding, FeatureVariant::Full);
    // Off-grid query: every lookup pays the nearest-grid search.
    let mut off = s.arch;
    off.rob_size = 200;
    off.lq_size = 40;
    off.alu_width = 5;

    let mut g = c.benchmark_group("feature_assembly");
    g.bench_function("features_alloc_full", |b| {
        b.iter(|| s.store.features(&s.arch, FeatureVariant::Full))
    });
    let mut buf = vec![0.0f32; dim];
    g.bench_function("features_into_full", |b| {
        b.iter(|| {
            s.store
                .features_into(&s.arch, FeatureVariant::Full, &mut buf)
        })
    });
    g.bench_function("features_into_full_offgrid", |b| {
        b.iter(|| s.store.features_into(&off, FeatureVariant::Full, &mut buf))
    });
    let base_dim = FeatureSchema::dim_for(s.profile.encoding, FeatureVariant::Base);
    let mut base_buf = vec![0.0f32; base_dim];
    g.bench_function("features_into_base", |b| {
        b.iter(|| {
            s.store
                .features_into(&s.arch, FeatureVariant::Base, &mut base_buf)
        })
    });
    g.finish();
}

fn bench_precompute(c: &mut Criterion) {
    let s = setup();
    let sweep = SweepConfig::for_pair(&MicroArch::big_core(), &s.arch);
    let mut g = c.benchmark_group("precompute");
    g.sample_size(10);
    g.bench_function("pair_sweep_1_thread", |b| {
        b.iter(|| FeatureStore::precompute_threaded(&s.warm, &s.region, &sweep, &s.profile, 1))
    });
    g.bench_function("pair_sweep_4_threads", |b| {
        b.iter(|| FeatureStore::precompute_threaded(&s.warm, &s.region, &sweep, &s.profile, 4))
    });
    g.finish();
}

criterion_group!(benches, bench_assembly, bench_precompute);
criterion_main!(benches);
