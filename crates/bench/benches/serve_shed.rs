//! Criterion bench for SLO-aware miss load-shedding: cold-storm tail
//! latency with shedding on vs off.
//!
//! Scenario: a single batch worker and a single precompute worker, a byte
//! budget that keeps a ring of cold regions permanently evicted, and every
//! measured request carrying a tight `deadline_ms`. Each iteration first
//! fires a fire-and-forget cold request (keeping the pool backlogged), then
//! measures a deadline-carrying cold request end to end:
//!
//! - `shed_off` — no SLO: the measured request parks until its full
//!   feature-store build lands, so its latency is one-to-two precompute
//!   builds (it queues behind the storm).
//! - `shed_on` — the same load with `--miss-slo-ms`-style deadlines: the
//!   backlogged miss is answered immediately with the flagged analytic
//!   min-bound, so the reported median IS the bounded degraded-answer
//!   latency (trace analysis at one grid point, no store build).
//!
//! After the measured scenarios the bench prints the shed rate each service
//! observed and the analytic-vs-exact CPI gap for the cold region, so the
//! accuracy cost of the bounded tail is visible next to the latency win.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use concorde_core::prelude::*;
use concorde_serve::{
    ArchSpec, ClassSlo, PredictRequest, PredictionService, RequestClass, ServeConfig, SweepScope,
};
use concorde_trace::by_id;

struct Setup {
    model: ConcordePredictor,
    profile: ReproProfile,
}

fn setup() -> Setup {
    let profile = ReproProfile::quick();
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 1,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    });
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    Setup { model, profile }
}

/// The cold-storm request ring: distinct far-apart region starts, so each
/// submission is a genuine miss once the tight budget has evicted its store.
fn cold_request(id: u64, slot: u64, deadline_ms: Option<u64>) -> PredictRequest {
    let mut r = PredictRequest::new(id, "S5", ArchSpec::base("n1"));
    r.start = 1_000_000 * (1 + slot % 4);
    r.deadline_ms = deadline_ms;
    r
}

/// Tags a ring request with a QoS class (the class SLO then supplies its
/// effective deadline — no per-request `deadline_ms`).
fn classed(mut r: PredictRequest, class: RequestClass) -> PredictRequest {
    r.class = class;
    r
}

fn bench_shed(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("serve_shed");

    let arch = concorde_cyclesim::MicroArch::arm_n1();
    let cold_store_bytes = {
        let spec = by_id("S5").unwrap();
        let full = concorde_trace::generate_region(
            &spec,
            0,
            1_000_000 - s.profile.warmup_len as u64,
            s.profile.warmup_len + s.profile.region_len,
        );
        let (w, r) = full.instrs.split_at(s.profile.warmup_len);
        FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &s.profile).approx_bytes()
    };

    for (name, deadline_ms) in [("shed_off", None), ("shed_on", Some(2u64))] {
        let service = PredictionService::start(
            s.model.clone(),
            s.profile.clone(),
            ServeConfig {
                workers: 1,
                precompute_workers: 1,
                max_batch: 8,
                batch_deadline: Duration::from_micros(200),
                // Budget below ~2 cold stores on one shard: each landing
                // build evicts an earlier ring member, so the storm never
                // warms up.
                cache_shards: 1,
                cache_bytes: cold_store_bytes * 3 / 2,
                sweep: SweepScope::PerArch,
                ..ServeConfig::default()
            },
        );
        let client = service.client();
        // Seed the build-latency EWMA (the shed decision is conservative
        // until one build has been observed).
        client
            .predict(cold_request(0, 0, None))
            .expect("seed the EWMA");

        let seq = AtomicU64::new(1);
        g.throughput(Throughput::Elements(1));
        g.bench_function(format!("cold_storm_deadline_p50/{name}"), |b| {
            b.iter(|| {
                let i = seq.fetch_add(2, Ordering::Relaxed);
                // Keep the pool backlogged: one fire-and-forget cold miss…
                let _storm = client.submit(cold_request(1_000_000 + i, i, None));
                // …then the measured deadline-carrying cold request.
                client
                    .predict(cold_request(2_000_000 + i, i + 1, deadline_ms))
                    .expect("measured cold request")
            });
        });

        let m = service.metrics();
        eprintln!(
            "[serve_shed] {name}: shed {} of {} completed ({:.1}% shed rate), \
             build EWMA {}µs, inflight builds at end {}",
            m.shed,
            m.completed,
            100.0 * m.shed as f64 / m.completed.max(1) as f64,
            m.build_ewma_us,
            m.inflight_builds,
        );
        drop(client);
        drop(service);
    }

    // Per-class QoS under the same cold storm: class SLOs supply the
    // deadlines (`--slo interactive=2,batch=500`), the precompute pool
    // orders misses earliest-deadline-first, and shedding is live — the
    // per-class medians Criterion reports ARE the per-class deadline p50s.
    {
        let mut class_slo = ClassSlo::default();
        class_slo.set(RequestClass::Interactive, Duration::from_millis(2));
        class_slo.set(RequestClass::Batch, Duration::from_millis(500));
        let slo_of = |class: RequestClass| class_slo.get(class).unwrap();
        let service = PredictionService::start(
            s.model.clone(),
            s.profile.clone(),
            ServeConfig {
                workers: 1,
                precompute_workers: 1,
                max_batch: 8,
                batch_deadline: Duration::from_micros(200),
                cache_shards: 1,
                cache_bytes: cold_store_bytes * 3 / 2,
                sweep: SweepScope::PerArch,
                class_slo,
                ..ServeConfig::default()
            },
        );
        let client = service.client();
        client
            .predict(cold_request(0, 0, None))
            .expect("seed the EWMA");

        let seq = AtomicU64::new(1);
        for class in [RequestClass::Interactive, RequestClass::Batch] {
            g.bench_function(format!("cold_storm_deadline_p50/qos_edf_{class}"), |b| {
                b.iter(|| {
                    let i = seq.fetch_add(2, Ordering::Relaxed);
                    // The storm is batch-class: its roomy SLO keeps the pool
                    // backlogged without shedding every storm miss outright.
                    let _storm = client.submit(classed(
                        cold_request(1_000_000 + i, i, None),
                        RequestClass::Batch,
                    ));
                    client
                        .predict(classed(cold_request(2_000_000 + i, i + 1, None), class))
                        .expect("measured cold request")
                });
            });
        }

        // Explicit deadline-attainment readout next to Criterion's timing:
        // per-class p50 against the class's own SLO over one fixed pass.
        for class in [RequestClass::Interactive, RequestClass::Batch] {
            let mut lat = Vec::with_capacity(40);
            let mut within = 0usize;
            let mut shed = 0usize;
            for _ in 0..40 {
                let i = seq.fetch_add(2, Ordering::Relaxed);
                let _storm = client.submit(classed(
                    cold_request(1_000_000 + i, i, None),
                    RequestClass::Batch,
                ));
                let t0 = std::time::Instant::now();
                let resp = client
                    .predict(classed(cold_request(2_000_000 + i, i + 1, None), class))
                    .expect("measured cold request");
                let elapsed = t0.elapsed();
                lat.push(elapsed);
                within += usize::from(elapsed <= slo_of(class));
                shed += usize::from(resp.approx);
            }
            lat.sort();
            eprintln!(
                "[serve_shed] qos_edf {class}: SLO {:?}, deadline p50 {:?}, \
                 {within}/{} within SLO, {shed} shed",
                slo_of(class),
                lat[lat.len() / 2],
                lat.len(),
            );
        }
        let m = service.metrics();
        eprintln!(
            "[serve_shed] qos_edf totals: shed {} of {} completed, build EWMA {}µs",
            m.shed, m.completed, m.build_ewma_us,
        );
    }
    g.finish();

    // Accuracy cost of a shed answer for one cold ring region: the exact
    // model prediction vs the analytic min-bound the shed path returns.
    let spec = by_id("S5").unwrap();
    let start = 1_000_000u64;
    let warm_start = start - s.profile.warmup_len as u64;
    let full = concorde_trace::generate_region(
        &spec,
        0,
        warm_start,
        s.profile.warmup_len + s.profile.region_len,
    );
    let (w, r) = full.instrs.split_at(s.profile.warmup_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &s.profile);
    let exact = s.model.predict(&store, &arch);
    let bound = analytic_min_bound_cpi(w, r, &arch, &s.profile);
    eprintln!(
        "[serve_shed] analytic-vs-exact CPI gap on the cold region: \
         exact {exact:.4}, min-bound {bound:.4} ({:+.1}% relative)",
        100.0 * (bound - exact) / exact
    );
}

criterion_group! {
    name = shed;
    config = Criterion::default().sample_size(10);
    targets = bench_shed
}
criterion_main!(shed);
