//! Criterion bench for the serving engine, two scenarios:
//!
//! 1. `serve_throughput` — sequential single-sample prediction vs. the
//!    batched `concorde-serve` path at batch sizes 1/16/128. All requests
//!    hit a warmed feature-store cache, so the comparison isolates the
//!    serving overhead + evaluation: per-request feature assembly and a
//!    single-threaded MLP forward on the sequential side, versus queueing,
//!    micro-batching, and the worker pool's batched forward on the service
//!    side. Expected shape: batch=1 pays the queueing tax; by batch ≥ 16
//!    the batched path's throughput (elem/s) exceeds the sequential
//!    baseline.
//!
//! 2. `serve_cold_warm` — the mixed cold/warm shape the precompute pool
//!    exists for: each iteration fires one *cold*-region request
//!    (fire-and-forget) and then measures a 16-request *warm* (cache-hit)
//!    batch, on a single batch worker. Under `inline_miss` the worker
//!    builds the cold store itself, so the warm batch stalls behind a full
//!    analytic precompute; under `async_pool` the miss parks on the
//!    dedicated pool and warm latency stays flat. The reported medians are
//!    the hit-path p50 under cold-region churn — expect the async-pool
//!    median to be ≥2× (typically orders of magnitude) better.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use concorde_core::prelude::*;
use concorde_serve::{
    ArchSpec, MissPolicy, PredictRequest, PredictionService, ServeConfig, SweepScope,
};
use concorde_trace::by_id;

struct Setup {
    model: ConcordePredictor,
    profile: ReproProfile,
    store: FeatureStore,
    arch: concorde_cyclesim::MicroArch,
}

fn setup() -> Setup {
    let profile = ReproProfile::quick();
    let arch = concorde_cyclesim::MicroArch::arm_n1();
    let spec = by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    // The §5.2.3 quantized sweep: one store answers any microarchitecture —
    // the same store shape the service uses below.
    let store = FeatureStore::precompute(w, r, &SweepConfig::quantized(), &profile);
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 1,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    });
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    Setup {
        model,
        profile,
        store,
        arch,
    }
}

/// `n` requests over a small ROB sweep of the N1 (all on the same store
/// grid, so every request is a cache hit but feature assembly still runs per
/// request — the design-space-exploration shape).
fn requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| {
            let mut spec = ArchSpec::base("n1");
            spec.rob = Some(128 + (i as u32 % 8));
            PredictRequest::new(i as u64, "S5", spec)
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let s = setup();

    let service = PredictionService::start(
        s.model.clone(),
        s.profile.clone(),
        ServeConfig {
            workers: 4,
            // Small micro-batches: request waves split into full tiles that
            // flush without waiting for the deadline, and on multi-core hosts
            // they also fan out across the worker pool.
            max_batch: 8,
            batch_deadline: Duration::from_micros(200),
            sweep: SweepScope::Quantized,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    // Warm the S5 quantized feature store so every measured request is a cache hit.
    client
        .predict(requests(1).pop().unwrap())
        .expect("warmup prediction");

    let mut g = c.benchmark_group("serve_throughput");

    // Baseline: the pre-serving shape — one synchronous prediction at a time
    // against an already-precomputed store, single-threaded. Same ROB sweep
    // as the service requests.
    g.throughput(Throughput::Elements(128));
    g.bench_function("sequential_direct_x128", |b| {
        b.iter(|| {
            for i in 0..128u32 {
                let mut arch = s.arch;
                arch.rob_size = 128 + (i % 8);
                criterion::black_box(s.model.predict(&s.store, &arch));
            }
        });
    });

    for batch in [1usize, 16, 128] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("service_batch_{batch}"), |b| {
            let reqs = requests(batch);
            b.iter(|| client.predict_many(reqs.clone()).expect("batch prediction"));
        });
    }
    drop(client);
    drop(service);

    // The same warm batched shape with `--model-encoding int8`: group
    // evaluation runs the fused dequantize-assembly path instead of the
    // f32 batched forward.
    let int8_service = PredictionService::start(
        s.model.clone(),
        s.profile.clone(),
        ServeConfig {
            workers: 4,
            max_batch: 8,
            batch_deadline: Duration::from_micros(200),
            sweep: SweepScope::Quantized,
            model_encoding: concorde_core::model::ModelEncoding::Int8,
            ..ServeConfig::default()
        },
    );
    let client = int8_service.client();
    client
        .predict(requests(1).pop().unwrap())
        .expect("warmup prediction");
    g.throughput(Throughput::Elements(128));
    g.bench_function("service_batch_128_int8", |b| {
        let reqs = requests(128);
        b.iter(|| client.predict_many(reqs.clone()).expect("batch prediction"));
    });
    g.finish();
}

/// `n` warm requests against one fixed arch — a single per-arch store, so
/// every request is a cache hit once the store is warmed.
fn warm_requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| PredictRequest::new(i as u64, "S5", ArchSpec::base("n1")))
        .collect()
}

fn bench_cold_warm(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("serve_cold_warm");

    // The cheap per-arch sweep keeps each cold build to a few milliseconds,
    // so both policies complete in sane bench time; the *ratio* between them
    // is the result. One store per distinct region start.
    let arch = concorde_cyclesim::MicroArch::arm_n1();
    let warm_store_bytes = {
        let spec = by_id("S5").unwrap();
        let full = concorde_trace::generate_region(
            &spec,
            0,
            0,
            s.profile.warmup_len + s.profile.region_len,
        );
        let (w, r) = full.instrs.split_at(s.profile.warmup_len);
        FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &s.profile).approx_bytes()
    };

    for (name, policy) in [
        ("async_pool", MissPolicy::AsyncPool),
        ("inline_miss", MissPolicy::Inline),
    ] {
        let service = PredictionService::start(
            s.model.clone(),
            s.profile.clone(),
            ServeConfig {
                // ONE batch worker: an inline miss stalls the entire hit
                // path; the async pool leaves it free.
                workers: 1,
                precompute_workers: 1,
                max_batch: 16,
                batch_deadline: Duration::from_micros(200),
                // Budget for ~2 stores on one shard: the hot warm store
                // stays resident while each landing cold store evicts the
                // previous one, so the cold keys in the ring below stay
                // genuinely cold across iterations.
                cache_shards: 1,
                cache_bytes: warm_store_bytes * 5 / 2,
                miss_policy: policy,
                sweep: SweepScope::PerArch,
                ..ServeConfig::default()
            },
        );
        let client = service.client();
        client
            .predict(warm_requests(1).pop().unwrap())
            .expect("warm the S5 store");

        let cold_seq = AtomicU64::new(0);
        g.throughput(Throughput::Elements(16));
        g.bench_function(format!("warm16_p50_under_cold_churn/{name}"), |b| {
            b.iter(|| {
                // Fire one cold-region request and do not wait for it; a
                // small ring of starts keeps pool backlog bounded (repeat
                // submissions coalesce onto the in-flight build) while the
                // tight byte budget above keeps the ring cold.
                let i = cold_seq.fetch_add(1, Ordering::Relaxed);
                let mut cold = PredictRequest::new(1_000_000 + i, "S5", ArchSpec::base("n1"));
                cold.start = 1_000_000 * (1 + i % 4);
                let _cold_rx = client.submit(cold).expect("submit cold");
                // Measured: the warm 16-request batch (the hit path).
                client.predict_many(warm_requests(16)).expect("warm batch")
            });
        });
        drop(client);
        drop(service);
    }
    g.finish();
}

criterion_group! {
    name = serve;
    config = Criterion::default().sample_size(12);
    targets = bench_serve, bench_cold_warm
}
criterion_main!(serve);
