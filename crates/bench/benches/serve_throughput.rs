//! Criterion bench for the serving engine: sequential single-sample
//! prediction vs. the batched `concorde-serve` path at batch sizes 1/16/128.
//!
//! All requests hit a warmed feature-store cache, so the comparison isolates
//! the serving overhead + evaluation: per-request feature assembly and a
//! single-threaded MLP forward on the sequential side, versus queueing,
//! micro-batching, and the worker pool's batched forward on the service
//! side. Expected shape: batch=1 pays the queueing tax; by batch ≥ 16 the
//! batched path's throughput (elem/s) exceeds the sequential baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use concorde_core::prelude::*;
use concorde_serve::{ArchSpec, PredictRequest, PredictionService, ServeConfig, SweepScope};
use concorde_trace::by_id;

struct Setup {
    model: ConcordePredictor,
    profile: ReproProfile,
    store: FeatureStore,
    arch: concorde_cyclesim::MicroArch,
}

fn setup() -> Setup {
    let profile = ReproProfile::quick();
    let arch = concorde_cyclesim::MicroArch::arm_n1();
    let spec = by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    // The §5.2.3 quantized sweep: one store answers any microarchitecture —
    // the same store shape the service uses below.
    let store = FeatureStore::precompute(w, r, &SweepConfig::quantized(), &profile);
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 1,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    });
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    Setup {
        model,
        profile,
        store,
        arch,
    }
}

/// `n` requests over a small ROB sweep of the N1 (all on the same store
/// grid, so every request is a cache hit but feature assembly still runs per
/// request — the design-space-exploration shape).
fn requests(n: usize) -> Vec<PredictRequest> {
    (0..n)
        .map(|i| {
            let mut spec = ArchSpec::base("n1");
            spec.rob = Some(128 + (i as u32 % 8));
            PredictRequest::new(i as u64, "S5", spec)
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let s = setup();

    let service = PredictionService::start(
        s.model.clone(),
        s.profile.clone(),
        ServeConfig {
            workers: 4,
            // Small micro-batches: request waves split into full tiles that
            // flush without waiting for the deadline, and on multi-core hosts
            // they also fan out across the worker pool.
            max_batch: 8,
            batch_deadline: Duration::from_micros(200),
            sweep: SweepScope::Quantized,
            ..ServeConfig::default()
        },
    );
    let client = service.client();
    // Warm the S5 quantized feature store so every measured request is a cache hit.
    client
        .predict(requests(1).pop().unwrap())
        .expect("warmup prediction");

    let mut g = c.benchmark_group("serve_throughput");

    // Baseline: the pre-serving shape — one synchronous prediction at a time
    // against an already-precomputed store, single-threaded. Same ROB sweep
    // as the service requests.
    g.throughput(Throughput::Elements(128));
    g.bench_function("sequential_direct_x128", |b| {
        b.iter(|| {
            for i in 0..128u32 {
                let mut arch = s.arch;
                arch.rob_size = 128 + (i % 8);
                criterion::black_box(s.model.predict(&s.store, &arch));
            }
        });
    });

    for batch in [1usize, 16, 128] {
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_function(format!("service_batch_{batch}"), |b| {
            let reqs = requests(batch);
            b.iter(|| client.predict_many(reqs.clone()).expect("batch prediction"));
        });
    }
    g.finish();
}

criterion_group! {
    name = serve;
    config = Criterion::default().sample_size(12);
    targets = bench_serve
}
criterion_main!(serve);
