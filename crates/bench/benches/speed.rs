//! Criterion benches backing Figure 10: Concorde inference vs cycle-level
//! simulation, plus the one-time preprocessing cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use concorde_core::prelude::*;
use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};

struct Setup {
    profile: ReproProfile,
    warm: Vec<concorde_trace::Instruction>,
    region: Vec<concorde_trace::Instruction>,
    store: FeatureStore,
    model: ConcordePredictor,
    arch: MicroArch,
}

fn setup() -> Setup {
    let mut profile = ReproProfile::quick();
    profile.region_len = 16_384;
    profile.warmup_len = 16_384;
    let spec = concorde_trace::by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let arch = MicroArch::arm_n1();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
    // A small trained model (accuracy is irrelevant for timing).
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 1,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    });
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    Setup {
        profile,
        warm: w.to_vec(),
        region: r.to_vec(),
        store,
        model,
        arch,
    }
}

fn bench_speed(c: &mut Criterion) {
    let s = setup();

    // The paper's headline: one CPI prediction = feature lookup + MLP.
    c.bench_function("concorde_inference", |b| {
        b.iter(|| s.model.predict(&s.store, &s.arch));
    });

    c.bench_function("cyclesim_region_16k", |b| {
        b.iter(|| simulate_warmed(&s.warm, &s.region, &s.arch, SimOptions::default()));
    });

    c.bench_function("feature_precompute_single_arch", |b| {
        // One thread: this measures the serial per-training-sample cost
        // (dataset generation precomputes single-threaded); the 1-vs-4
        // thread scaling lives in the feature_assembly bench.
        b.iter(|| {
            FeatureStore::precompute_threaded(
                &s.warm,
                &s.region,
                &SweepConfig::for_arch(&s.arch),
                &s.profile,
                1,
            )
        });
    });

    c.bench_function("concorde_inference_random_archs", |b| {
        // Predictions across designs reuse the same store (quantized lookups).
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter_batched(
            || MicroArch::sample(&mut rng),
            |arch| s.model.predict(&s.store, &arch),
            BatchSize::SmallInput,
        );
    });

    // Int8-weight inference, same store/arch: the materialized path (f32
    // features → quantized MLP) and the fused path (encoded segments
    // straight into the quantized first layer).
    let qmlp = s.model.quantized();
    let mut qbuf = concorde_ml::QuantFeatureBuf::default();
    let mut qscratch = concorde_ml::QuantScratch::default();
    c.bench_function("concorde_inference_int8_fused", |b| {
        b.iter(|| {
            s.model
                .predict_quantized(&qmlp, &s.store, &s.arch, &mut qbuf, &mut qscratch)
        });
    });
}

/// The raw MLP forward at serving batch sizes, dispatched kernel vs the
/// pinned scalar fallback (`forced_scalar`) — the SIMD speedup number,
/// isolated from feature assembly. Runs on one thread, so the thread-local
/// guard covers the whole measurement.
fn bench_mlp_kernels(c: &mut Criterion) {
    use criterion::Throughput;
    let mut rng = ChaCha12Rng::seed_from_u64(7);
    // The serving model's shape class: wide standardized input, two hidden
    // layers, scalar output.
    let mlp = concorde_ml::Mlp::new(&[512, 64, 32, 1], &mut rng);
    let qmlp = mlp.quantize();
    let mut scratch = concorde_ml::MlpScratch::default();
    let mut qscratch = concorde_ml::QuantScratch::default();
    let n = 128usize;
    let xs: Vec<f32> = (0..n * 512)
        .map(|i| ((i as f32) * 0.37).sin() * 2.0)
        .collect();
    let mut out = vec![0.0f32; n];

    let mut g = c.benchmark_group("mlp_kernels");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(format!("batch128/{}", concorde_ml::kernel_name()), |b| {
        b.iter(|| mlp.predict_batch_into(&xs, &mut out, &mut scratch))
    });
    g.bench_function("batch128/scalar_forced", |b| {
        let _guard = concorde_ml::forced_scalar();
        b.iter(|| mlp.predict_batch_into(&xs, &mut out, &mut scratch));
    });
    g.bench_function("batch128/int8", |b| {
        b.iter(|| qmlp.predict_batch_into(&xs, &mut out, &mut qscratch))
    });
    g.finish();
}

criterion_group! {
    name = speed;
    config = Criterion::default().sample_size(20);
    targets = bench_speed, bench_mlp_kernels
}
criterion_main!(speed);
