//! Criterion benches backing Figure 10: Concorde inference vs cycle-level
//! simulation, plus the one-time preprocessing cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use concorde_core::prelude::*;
use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};

struct Setup {
    profile: ReproProfile,
    warm: Vec<concorde_trace::Instruction>,
    region: Vec<concorde_trace::Instruction>,
    store: FeatureStore,
    model: ConcordePredictor,
    arch: MicroArch,
}

fn setup() -> Setup {
    let mut profile = ReproProfile::quick();
    profile.region_len = 16_384;
    profile.warmup_len = 16_384;
    let spec = concorde_trace::by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let arch = MicroArch::arm_n1();
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile);
    // A small trained model (accuracy is irrelevant for timing).
    let data = generate_dataset(&DatasetConfig {
        profile: profile.clone(),
        n: 48,
        seed: 1,
        arch: ArchSampling::Random,
        workloads: Some(vec![15, 16]),
        threads: 0,
    });
    let model = train_model(
        &data,
        &profile,
        &TrainOptions {
            epochs: Some(3),
            ..TrainOptions::default()
        },
    );
    Setup {
        profile,
        warm: w.to_vec(),
        region: r.to_vec(),
        store,
        model,
        arch,
    }
}

fn bench_speed(c: &mut Criterion) {
    let s = setup();

    // The paper's headline: one CPI prediction = feature lookup + MLP.
    c.bench_function("concorde_inference", |b| {
        b.iter(|| s.model.predict(&s.store, &s.arch));
    });

    c.bench_function("cyclesim_region_16k", |b| {
        b.iter(|| simulate_warmed(&s.warm, &s.region, &s.arch, SimOptions::default()));
    });

    c.bench_function("feature_precompute_single_arch", |b| {
        // One thread: this measures the serial per-training-sample cost
        // (dataset generation precomputes single-threaded); the 1-vs-4
        // thread scaling lives in the feature_assembly bench.
        b.iter(|| {
            FeatureStore::precompute_threaded(
                &s.warm,
                &s.region,
                &SweepConfig::for_arch(&s.arch),
                &s.profile,
                1,
            )
        });
    });

    c.bench_function("concorde_inference_random_archs", |b| {
        // Predictions across designs reuse the same store (quantized lookups).
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        b.iter_batched(
            || MicroArch::sample(&mut rng),
            |arch| s.model.predict(&s.store, &arch),
            BatchSize::SmallInput,
        );
    });
}

criterion_group! {
    name = speed;
    config = Criterion::default().sample_size(20);
    targets = bench_speed
}
criterion_main!(speed);
