//! Store-footprint benches for the quantized arenas (§5.2.3): bytes/region
//! and cache hit rate at a fixed `--cache-bytes` budget for f32 vs f16 vs
//! int8, dequantizing-assembly cost per encoding, and artifact preload wall
//! time owned-copy (`StoreArtifact::load`) vs mmap (`StoreArtifact::map`).
//!
//! The footprint/hit-rate section prints a report (it measures bytes, not
//! time); the assembly and preload sections are ordinary criterion timings.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use concorde_core::arena::ArenaEncoding;
use concorde_core::cache::{FeatureKey, ShardedStoreCache, StoreArtifact};
use concorde_core::prelude::*;
use concorde_cyclesim::MicroArch;

fn reference_store() -> (FeatureStore, ReproProfile, MicroArch) {
    // window_k 64 → a representative windows-per-series count (the default
    // profile's 24k-instruction regions at k=256 land in the same regime).
    let profile = ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    };
    let spec = concorde_trace::by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let arch = MicroArch::arm_n1();
    let store = FeatureStore::precompute(
        w,
        r,
        &SweepConfig::for_pair(&MicroArch::big_core(), &arch),
        &profile,
    );
    (store, profile, arch)
}

fn key(start: u64) -> FeatureKey {
    FeatureKey {
        workload: "S5".into(),
        trace: 0,
        start,
        region_len: 4096,
        sweep_hash: 7,
    }
}

/// Replays a deterministic uniform-pseudorandom access trace (LCG, fixed
/// seed) over `regions` distinct region keys against a budgeted cache
/// holding `store`-sized entries, returning the hit rate. Under uniform
/// access the LRU hit rate ≈ resident-regions / total-regions, so it
/// directly measures how many regions the encoding packs under the budget.
fn scan_hit_rate(store: &Arc<FeatureStore>, regions: u64, touches: u64) -> f64 {
    let budget = 1_500_000usize; // fixed --cache-bytes across encodings
    let cache = ShardedStoreCache::new(1, budget);
    let mut hits = 0u64;
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for _ in 0..touches {
        x = x
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let k = key((x >> 33) % regions);
        if cache.get(&k).is_some() {
            hits += 1;
        } else {
            cache.insert(k, Arc::clone(store));
        }
    }
    hits as f64 / touches as f64
}

fn bench_footprint_report(_c: &mut Criterion) {
    let (store, _, _) = reference_store();
    let regions = 30u64;
    let touches = 3_000;
    eprintln!("\n== store_footprint: bytes/region and hit rate @ 1.5MB --cache-bytes ==");
    eprintln!(
        "{:>5}  {:>12}  {:>12}  {:>10}  {:>9}  {:>8}",
        "enc", "encoded(B)", "raw(B)", "approx(B)", "vs f32", "hit rate"
    );
    let f32_total = store.approx_bytes();
    for enc in ArenaEncoding::ALL {
        let s = Arc::new(store.reencoded(enc));
        let rate = scan_hit_rate(&s, regions, touches);
        eprintln!(
            "{:>5}  {:>12}  {:>12}  {:>10}  {:>8.2}x  {:>7.1}%",
            enc.name(),
            s.encoded_bytes(),
            s.raw_bytes(),
            s.approx_bytes(),
            f32_total as f64 / s.approx_bytes() as f64,
            rate * 100.0
        );
    }
}

fn bench_assembly_per_encoding(c: &mut Criterion) {
    let (store, profile, arch) = reference_store();
    let dim = FeatureSchema::dim_for(profile.encoding, FeatureVariant::Full);
    let mut buf = vec![0.0f32; dim];
    let mut g = c.benchmark_group("assembly_by_encoding");
    for enc in ArenaEncoding::ALL {
        let s = store.reencoded(enc);
        g.bench_function(format!("features_into_full_{}", enc.name()), |b| {
            b.iter(|| s.features_into(&arch, FeatureVariant::Full, &mut buf))
        });
    }
    g.finish();
}

fn bench_preload(c: &mut Criterion) {
    // A fleet-shaped artifact: the §5.2.3 quantized sweep produces a store
    // big enough (MBs at f32) that owned preload pays a real copy while the
    // mapped path stays O(page faults touched at parse time).
    let profile = ReproProfile {
        window_k: 64,
        ..ReproProfile::quick()
    };
    let spec = concorde_trace::by_id("S5").unwrap();
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::quantized(), &profile);
    let dir = std::env::temp_dir();
    let mut g = c.benchmark_group("artifact_preload");
    g.sample_size(20);
    for enc in ArenaEncoding::ALL {
        let artifact = StoreArtifact::new(key(0), store.reencoded(enc));
        let path = dir.join(format!(
            "concorde_bench_{}_{}.cfa",
            enc.name(),
            std::process::id()
        ));
        artifact.save(&path).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        eprintln!("preload fixture {}: {} bytes", enc.name(), bytes);
        g.bench_function(format!("owned_copy_{}", enc.name()), |b| {
            b.iter(|| StoreArtifact::load(&path).unwrap())
        });
        g.bench_function(format!("mmap_{}", enc.name()), |b| {
            b.iter(|| StoreArtifact::map(&path).unwrap())
        });
    }
    g.finish();
    for enc in ArenaEncoding::ALL {
        let path = dir.join(format!(
            "concorde_bench_{}_{}.cfa",
            enc.name(),
            std::process::id()
        ));
        std::fs::remove_file(&path).ok();
    }
}

criterion_group!(
    benches,
    bench_footprint_report,
    bench_assembly_per_encoding,
    bench_preload
);
criterion_main!(benches);
