//! Regenerates Figure 1 (per-resource bounds vs IPC).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::bounds::fig01(&ctx);
}
