//! Regenerates Figure 4 (train/test overlap).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::fig04(&ctx);
}
