//! Regenerates Figure 5 (headline accuracy).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::fig05(&ctx);
}
