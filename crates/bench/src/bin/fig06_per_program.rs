//! Regenerates Figure 6 (per-program errors).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::fig06(&ctx);
}
