//! Regenerates Figure 7 (region-length study).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::fig07(&ctx);
}
