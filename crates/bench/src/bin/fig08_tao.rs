//! Regenerates Figure 8 (Concorde vs TAO-like baseline).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::baseline_cmp::fig08(&ctx);
}
