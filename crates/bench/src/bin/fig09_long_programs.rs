//! Regenerates Figure 9 (long-program sampling).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::longspeed::fig09(&ctx);
}
