//! Regenerates Figure 10 (speed comparison).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::longspeed::fig10(&ctx);
}
