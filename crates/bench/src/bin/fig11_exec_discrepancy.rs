//! Regenerates Figure 11 (exec-time discrepancy buckets).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::fig11(&ctx);
}
