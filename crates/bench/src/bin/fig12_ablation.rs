//! Regenerates Figure 12 (feature/model ablations).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::ablation::fig12(&ctx);
}
