//! Regenerates Figure 13 (dataset-size study).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::ablation::fig13(&ctx);
}
