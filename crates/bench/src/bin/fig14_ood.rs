//! Regenerates Figure 14 (OOD generalization + onboarding).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::ablation::fig14(&ctx);
}
