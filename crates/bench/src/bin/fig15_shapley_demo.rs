//! Regenerates Figure 15 (ablation bias vs Shapley).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::attribution::fig15(&ctx);
}
