//! Regenerates Figure 16 (suite-wide N1 attribution).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::attribution::fig16(&ctx);
}
