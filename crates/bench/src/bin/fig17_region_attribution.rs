//! Regenerates Figure 17 (per-region P9 attribution).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::attribution::fig17(&ctx);
}
