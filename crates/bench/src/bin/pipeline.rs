//! Generates the shared dataset, trains the full Concorde model, and caches
//! both under `target/concorde-artifacts/` for every figure binary to reuse.
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    let data = ctx.main_data();
    println!(
        "pipeline complete: {} train / {} test samples, model input dim {}",
        data.train.len(),
        data.test.len(),
        data.model.layout.dim()
    );
}
