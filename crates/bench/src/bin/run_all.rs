//! Regenerates every table and figure of the paper in one run.
//!
//! `--quick` for a smoke run, default for the scaled reproduction, `--full`
//! for a larger (slower) run. Artifacts land in `target/concorde-artifacts/`.
use concorde_bench::experiments as e;

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = concorde_bench::Ctx::from_args();
    e::tables::tab01(&ctx);
    e::tables::tab02(&ctx);
    e::tables::tab03(&ctx);
    ctx.main_data();
    e::bounds::fig01(&ctx);
    e::accuracy::fig04(&ctx);
    e::accuracy::fig05(&ctx);
    e::accuracy::fig06(&ctx);
    e::accuracy::fig07(&ctx);
    e::baseline_cmp::fig08(&ctx);
    e::longspeed::fig09(&ctx);
    e::longspeed::fig10(&ctx);
    e::accuracy::fig11(&ctx);
    e::accuracy::tab04(&ctx);
    e::ablation::fig12(&ctx);
    e::ablation::fig13(&ctx);
    e::ablation::fig14(&ctx);
    e::tables::tab_preproc(&ctx);
    e::accuracy::tab_other_metrics(&ctx);
    e::attribution::fig15(&ctx);
    e::attribution::fig16(&ctx);
    e::attribution::fig17(&ctx);
    println!(
        "\nrun_all complete in {:?}; artifacts in {}",
        t0.elapsed(),
        ctx.dir.display()
    );
}
