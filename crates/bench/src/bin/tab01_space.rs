//! Regenerates Table 1 (design space).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::tables::tab01(&ctx);
}
