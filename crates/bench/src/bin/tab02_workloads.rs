//! Regenerates Table 2 (workload suite).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::tables::tab02(&ctx);
}
