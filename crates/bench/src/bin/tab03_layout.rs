//! Regenerates Table 3 (ML input layout).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::tables::tab03(&ctx);
}
