//! Regenerates Table 4 (branch misprediction buckets).
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::tab04(&ctx);
}
