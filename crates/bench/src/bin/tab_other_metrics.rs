//! Regenerates the section-5.2.6 other-metrics study.
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::accuracy::tab_other_metrics(&ctx);
}
