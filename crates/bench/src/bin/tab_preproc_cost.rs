//! Regenerates the section-5.2.3 preprocessing-cost table.
fn main() {
    let ctx = concorde_bench::Ctx::from_args();
    concorde_bench::experiments::tables::tab_preproc(&ctx);
}
