//! Ablation studies: Figure 12 (feature/model ablations), Figure 13 (dataset
//! size), Figure 14 (out-of-distribution generalization + onboarding).

use concorde_core::prelude::*;
use concorde_ml::ErrorStats;
use serde_json::json;

use crate::{print_table, Ctx};

/// Figure 12: min-bound (no ML) vs Base vs Base+stalls vs Full, plus the
/// §5.2.2 model-size ablation.
pub fn fig12(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 12: design-component ablation ==");
    let data = ctx.main_data();
    let mut rows = Vec::new();
    let mut out = serde_json::Map::new();

    // Pure analytical min-bound (no ML): rebuild per-sample stores is costly,
    // so approximate with the features' stored raw series via a fresh store
    // per test sample — instead we reuse the ratio of stored min-bound
    // features: recompute from a subsample.
    let nsub = data.test.len().min(200);
    let min_pairs: Vec<(f64, f64)> = {
        let profile = ctx.profile.clone();
        let suite = concorde_trace::suite();
        parallel_map_all(nsub, |i| {
            let smp = &data.test[i];
            let spec = &suite[smp.workload as usize];
            let warm_start = smp.region.start.saturating_sub(profile.warmup_len as u64);
            let warm_len = (smp.region.start - warm_start) as usize;
            let full = concorde_trace::generate_region(
                spec,
                smp.region.trace_idx,
                warm_start,
                warm_len + profile.region_len,
            );
            let (w, r) = full.instrs.split_at(warm_len);
            // One thread per store: samples already run in parallel.
            let store = FeatureStore::precompute_threaded(
                w,
                r,
                &SweepConfig::for_arch(&smp.arch),
                &profile,
                1,
            );
            (store.min_bound_cpi(&smp.arch), smp.cpi)
        })
    };
    let min_stats = ErrorStats::from_pairs(&min_pairs);
    rows.push(vec![
        "min bound (analytical, no ML)".to_string(),
        format!("{:.1}%", min_stats.mean * 100.0),
        format!("{:.1}%", min_stats.frac_above_10pct * 100.0),
    ]);
    out.insert(
        "min_bound".into(),
        json!({ "mean": min_stats.mean, "frac_above_10pct": min_stats.frac_above_10pct }),
    );

    for (label, variant) in [
        ("base (throughput dists + BP rate)", FeatureVariant::Base),
        ("base + pipeline-stall features", FeatureVariant::BaseBranch),
        ("full Concorde (+ latency dists)", FeatureVariant::Full),
    ] {
        let stats = if variant == FeatureVariant::Full {
            let pairs = predict_all(&data.model, &data.test, &ctx.profile);
            ErrorStats::from_pairs(&pairs)
        } else {
            let opts = TrainOptions {
                variant,
                ..TrainOptions::default()
            };
            let (_, stats) = train_and_evaluate(&data.train, &data.test, &ctx.profile, &opts);
            stats
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", stats.mean * 100.0),
            format!("{:.2}%", stats.frac_above_10pct * 100.0),
        ]);
        out.insert(
            label.into(),
            json!({ "mean": stats.mean, "frac_above_10pct": stats.frac_above_10pct }),
        );
    }
    print_table(&["Model", "Mean err", ">10% err"], &rows);
    println!("(paper ordering: 65% → 3.32% → 2.4% → 2.03%)");

    // Schema-block knockout ablation: zero each named block of the Full
    // input and measure the error shift — finer-grained than the variant
    // ablation above, and driven entirely by the versioned schema (new
    // blocks show up here without touching this experiment).
    println!("\n-- schema-block knockout ablation (v{SCHEMA_VERSION}) --");
    let schema = FeatureSchema::new(ctx.profile.encoding, FeatureVariant::Full);
    let nblk = data.test.len().min(128);
    let baseline_pairs: Vec<(f64, f64)> = data.test[..nblk]
        .iter()
        .map(|s| (data.model.predict_features(&s.features), s.cpi))
        .collect();
    let baseline = ErrorStats::from_pairs(&baseline_pairs);
    let mut block_rows = Vec::new();
    let mut block_out = Vec::new();
    for block in schema.blocks() {
        let pairs: Vec<(f64, f64)> = data.test[..nblk]
            .iter()
            .map(|s| {
                let mut x = s.features.clone();
                x[block.range()].fill(0.0);
                (data.model.predict_features(&x), s.cpi)
            })
            .collect();
        let stats = ErrorStats::from_pairs(&pairs);
        block_rows.push(vec![
            block.name.clone(),
            format!("{:?}", block.group),
            block.len.to_string(),
            format!("{:.2}%", stats.mean * 100.0),
            format!("{:+.2}%", (stats.mean - baseline.mean) * 100.0),
        ]);
        block_out.push(json!({
            "block": block.name,
            "group": format!("{:?}", block.group),
            "dims": block.len,
            "mean": stats.mean,
            "delta_vs_full": stats.mean - baseline.mean,
        }));
    }
    print_table(
        &["Block", "Group", "Dims", "Mean err", "Δ vs full"],
        &block_rows,
    );
    println!(
        "(full-model baseline on the same {nblk} samples: {:.2}%)",
        baseline.mean * 100.0
    );
    out.insert("block_knockout".into(), json!(block_out));
    out.insert("block_baseline_mean".into(), json!(baseline.mean));

    // §5.2.2 model-size ablation.
    println!("\n-- §5.2.2: model-size ablation --");
    let mut size_rows = Vec::new();
    for (name, hidden) in [
        ("1 x 256", vec![256usize]),
        ("256 / 128 (paper)", vec![256, 128]),
        ("512 / 256 / 128", vec![512, 256, 128]),
    ] {
        let opts = TrainOptions {
            hidden: Some(hidden.clone()),
            ..TrainOptions::default()
        };
        let (_, stats) = train_and_evaluate(&data.train, &data.test, &ctx.profile, &opts);
        size_rows.push(vec![
            name.to_string(),
            format!("{:.2}%", stats.mean * 100.0),
        ]);
        out.insert(format!("hidden {name}"), json!(stats.mean));
    }
    print_table(&["Hidden layers", "Mean err"], &size_rows);
    println!("(paper: 3.91% / 2.03% / 1.85%)");

    let j = serde_json::Value::Object(out);
    ctx.write_report("fig12_ablation", &j);
    j
}

/// Figure 13: accuracy vs training-set size.
pub fn fig13(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 13: accuracy vs training-set size ==");
    let data = ctx.main_data();
    let n = data.train.len();
    let fracs = [0.125, 0.25, 0.5, 1.0];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for f in fracs {
        let k = ((n as f64 * f) as usize).max(16);
        let subset = &data.train[..k];
        let (_, stats) =
            train_and_evaluate(subset, &data.test, &ctx.profile, &TrainOptions::default());
        rows.push(vec![k.to_string(), format!("{:.2}%", stats.mean * 100.0)]);
        series.push(json!({ "train_samples": k, "mean": stats.mean }));
    }
    print_table(&["Train samples", "Mean err"], &rows);
    println!("(paper: 200k → 3.07%, full 789k → 2.01%; error decreases monotonically with data)");
    let j = json!(series);
    ctx.write_report("fig13_dataset_size", &j);
    j
}

/// Figure 14: leave-one-program-out OOD errors, plus the onboarding curve.
pub fn fig14(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 14: out-of-distribution generalization ==");
    let data = ctx.main_data();
    let suite = concorde_trace::suite();
    // Programs the paper highlights: the synthetic outliers (O3, O4) and the
    // distinctive real workloads (S1, C2), plus two typical ones.
    let focus = ["O3", "O4", "S1", "C2", "S5", "P5"];
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for id in focus {
        let w = suite.iter().position(|s| s.id == id).unwrap() as u16;
        let train: Vec<Sample> = data
            .train
            .iter()
            .filter(|s| s.workload != w)
            .cloned()
            .collect();
        let test: Vec<Sample> = data
            .test
            .iter()
            .filter(|s| s.workload == w)
            .cloned()
            .collect();
        if test.is_empty() {
            continue;
        }
        let (model, stats) =
            train_and_evaluate(&train, &test, &ctx.profile, &TrainOptions::default());
        drop(model);
        // In-distribution reference from the main model.
        let pairs = predict_all(&data.model, &test, &ctx.profile);
        let indist = ErrorStats::from_pairs(&pairs);
        rows.push(vec![
            id.to_string(),
            format!("{:.2}%", stats.mean * 100.0),
            format!("{:.2}%", indist.mean * 100.0),
            test.len().to_string(),
        ]);
        out.push(json!({ "program": id, "ood_mean": stats.mean, "indist_mean": indist.mean, "n": test.len() }));
    }
    print_table(
        &["Held-out program", "OOD err", "In-dist err", "n test"],
        &rows,
    );
    println!("(paper: OOD errors rise — most <10%, synthetic microbenchmarks worst)");

    // Onboarding: add k samples of the held-out program back.
    println!("\n-- onboarding curve (held-out program: O3) --");
    let w = suite.iter().position(|s| s.id == "O3").unwrap() as u16;
    let others: Vec<Sample> = data
        .train
        .iter()
        .filter(|s| s.workload != w)
        .cloned()
        .collect();
    let own: Vec<Sample> = data
        .train
        .iter()
        .filter(|s| s.workload == w)
        .cloned()
        .collect();
    let test: Vec<Sample> = data
        .test
        .iter()
        .filter(|s| s.workload == w)
        .cloned()
        .collect();
    let mut curve = Vec::new();
    let mut curve_rows = Vec::new();
    if !test.is_empty() {
        let mut levels = vec![0usize, 8, 32, own.len().min(128), own.len()];
        levels.sort_unstable();
        levels.dedup();
        for k in levels {
            let mut train = others.clone();
            train.extend(own.iter().take(k).cloned());
            let (_, stats) =
                train_and_evaluate(&train, &test, &ctx.profile, &TrainOptions::default());
            curve_rows.push(vec![k.to_string(), format!("{:.2}%", stats.mean * 100.0)]);
            curve.push(json!({ "onboard_samples": k, "mean": stats.mean }));
        }
        print_table(&["New-program samples", "Err on program"], &curve_rows);
        println!("(paper: 2k samples reach within 5% of the error floor)");
    }
    let j = json!({ "ood": out, "onboarding_o3": curve });
    ctx.write_report("fig14_ood", &j);
    j
}
