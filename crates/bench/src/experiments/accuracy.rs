//! Accuracy experiments: Figures 4–7, 11 and Tables 4, §5.2.6.

use concorde_core::prelude::*;
use concorde_ml::ErrorStats;
use serde_json::json;

use crate::{print_table, Ctx};

/// Figure 4: average train/test region overlap per program.
pub fn fig04(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 4: train/test region overlap ==");
    let data = ctx.main_data();
    let report = overlap_report(&data.train, &data.test);
    let suite = concorde_trace::suite();
    let rows: Vec<Vec<String>> = report
        .iter()
        .map(|(w, frac)| {
            vec![
                suite[*w as usize].id.clone(),
                format!("{:.1}%", frac * 100.0),
            ]
        })
        .collect();
    print_table(&["Program", "Avg overlap"], &rows);
    let avg = report.iter().map(|(_, f)| f).sum::<f64>() / report.len().max(1) as f64;
    println!("suite average: {:.1}% (paper: 16.9%)", avg * 100.0);
    let j = json!({ "per_program": report, "average": avg });
    ctx.write_report("fig04_overlap", &j);
    j
}

/// Figure 5: headline accuracy on random (region, arch) pairs.
pub fn fig05(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 5: CPI prediction accuracy (random architectures) ==");
    let data = ctx.main_data();
    let pairs = predict_all(&data.model, &data.test, &ctx.profile);
    let stats = ErrorStats::from_pairs(&pairs);
    println!(
        "mean {:.2}%  median {:.2}%  P90 {:.2}%  >10% errors: {:.2}%  (paper: mean 2.03%, >10%: 2.51%)",
        stats.mean * 100.0,
        stats.p50 * 100.0,
        stats.p90 * 100.0,
        stats.frac_above_10pct * 100.0
    );
    // Error CDF at a few grid points + CPI distribution summary.
    let mut errs: Vec<f64> = pairs.iter().map(|(p, y)| (p - y).abs() / y).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| errs[((f * errs.len() as f64) as usize).min(errs.len() - 1)];
    let rows: Vec<Vec<String>> = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]
        .iter()
        .map(|p| {
            vec![
                format!("P{:.0}", p * 100.0),
                format!("{:.2}%", q(*p) * 100.0),
            ]
        })
        .collect();
    print_table(&["Percentile", "Relative error"], &rows);
    let j = json!({
        "mean": stats.mean, "p50": stats.p50, "p90": stats.p90,
        "frac_above_10pct": stats.frac_above_10pct, "n": stats.n,
        "pairs": pairs,
    });
    ctx.write_report("fig05_accuracy", &j);
    j
}

/// Figure 6: per-program error breakdown.
pub fn fig06(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 6: error breakdown across programs ==");
    let data = ctx.main_data();
    let pairs = predict_all(&data.model, &data.test, &ctx.profile);
    let groups = per_program(&data.test, &pairs);
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|g| {
            vec![
                g.label.clone(),
                format!("{:.2}%", g.mean * 100.0),
                format!("{:.2}%", g.p90 * 100.0),
                g.n.to_string(),
            ]
        })
        .collect();
    print_table(&["Program", "Mean err", "P90 err", "n"], &rows);
    let worst = groups.iter().map(|g| g.mean).fold(0.0, f64::max);
    println!(
        "worst program mean: {:.2}% (paper caps at 4.2%)",
        worst * 100.0
    );
    let j = serde_json::to_value(&groups).unwrap();
    ctx.write_report("fig06_per_program", &j);
    j
}

/// Figure 7: longer regions are easier (error CDF for 1× vs 4× region length).
pub fn fig07(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 7: accuracy vs region length ==");
    let data = ctx.main_data();
    let short_pairs = predict_all(&data.model, &data.test, &ctx.profile);
    let short = ErrorStats::from_pairs(&short_pairs);

    // 4× regions: fresh dataset + model at the longer length.
    let mut long_profile = ctx.profile.clone();
    long_profile.region_len *= 4;
    long_profile.train_samples = (ctx.profile.train_samples / 3).max(60);
    long_profile.test_samples = (ctx.profile.test_samples / 3).max(20);
    let train = generate_dataset(&DatasetConfig::random(
        long_profile.clone(),
        long_profile.train_samples,
        41,
    ));
    let test = generate_dataset(&DatasetConfig::random(
        long_profile.clone(),
        long_profile.test_samples,
        42,
    ));
    let (model, long) = train_and_evaluate(&train, &test, &long_profile, &TrainOptions::default());
    drop(model);

    let rows = vec![
        vec![
            format!("{}k instr", ctx.profile.region_len / 1000),
            format!("{:.2}%", short.mean * 100.0),
            format!("{:.2}%", short.frac_above_10pct * 100.0),
            short.n.to_string(),
        ],
        vec![
            format!("{}k instr", long_profile.region_len / 1000),
            format!("{:.2}%", long.mean * 100.0),
            format!("{:.2}%", long.frac_above_10pct * 100.0),
            long.n.to_string(),
        ],
    ];
    print_table(&["Region length", "Mean err", ">10% err", "n"], &rows);
    println!("(paper: 100k → 2.03% mean, 1M → 1.75%; note the longer-region model here trains on fewer samples)");
    let j = json!({
        "short": { "region_len": ctx.profile.region_len, "mean": short.mean, "frac_above_10pct": short.frac_above_10pct },
        "long": { "region_len": long_profile.region_len, "mean": long.mean, "frac_above_10pct": long.frac_above_10pct },
    });
    ctx.write_report("fig07_region_len", &j);
    j
}

/// Figure 11: execution-time discrepancy buckets vs error.
pub fn fig11(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 11: trace-analysis execution-time discrepancy ==");
    let data = ctx.main_data();
    let pairs = predict_all(&data.model, &data.test, &ctx.profile);
    let groups = bucketed(
        &data.test,
        &pairs,
        &[1.1, 1.5],
        |s| s.exec_ratio,
        "exec ratio",
    );
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|g| {
            vec![
                g.label.clone(),
                format!("{:.2}%", g.mean * 100.0),
                format!("{:.2}%", g.frac_above_10pct * 100.0),
                g.n.to_string(),
            ]
        })
        .collect();
    print_table(
        &["Exec-time ratio bucket", "Mean err", ">10% err", "n"],
        &rows,
    );
    println!(
        "(paper: errors grow with the ratio but stay single-digit — ratio>1.5 bucket at 4.53%)"
    );
    let frac_high =
        data.test.iter().filter(|s| s.exec_ratio > 1.5).count() as f64 / data.test.len() as f64;
    println!(
        "fraction of regions with ratio > 1.5: {:.1}% (paper: ~10%)",
        frac_high * 100.0
    );
    let j = serde_json::to_value(&groups).unwrap();
    ctx.write_report("fig11_exec_discrepancy", &j);
    j
}

/// Table 4: error vs number of branch mispredictions.
pub fn tab04(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Table 4: accuracy vs branch mispredictions ==");
    let data = ctx.main_data();
    let pairs = predict_all(&data.model, &data.test, &ctx.profile);
    // Scale the paper's 100k-region bucket edges to our region length.
    let scale = ctx.profile.region_len as f64 / 100_000.0;
    let edges = [1000.0 * scale, 5000.0 * scale];
    let groups = bucketed(
        &data.test,
        &pairs,
        &edges,
        |s| s.branch_mispredictions as f64,
        "mispredictions",
    );
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|g| {
            vec![
                g.label.clone(),
                format!("{:.2}%", g.mean * 100.0),
                format!("{:.2}%", g.frac_above_10pct * 100.0),
                g.n.to_string(),
            ]
        })
        .collect();
    print_table(
        &["Branch mispredictions", "Mean err", ">10% err", "n"],
        &rows,
    );
    println!("(paper: error *decreases* with more mispredictions: 2.16 → 2.12 → 1.82%)");
    let j = serde_json::to_value(&groups).unwrap();
    ctx.write_report("tab04_branch", &j);
    j
}

/// §5.2.6: predicting metrics other than CPI (ROB / rename-queue occupancy).
pub fn tab_other_metrics(ctx: &Ctx) -> serde_json::Value {
    println!("\n== §5.2.6: predicting other metrics ==");
    let data = ctx.main_data();
    let mut rows = Vec::new();
    let mut out = serde_json::Map::new();
    for (name, get) in [
        (
            "ROB occupancy %",
            Box::new(|s: &Sample| s.rob_occupancy) as Box<dyn Fn(&Sample) -> f64>,
        ),
        (
            "Rename-queue occupancy %",
            Box::new(|s: &Sample| s.rename_occupancy),
        ),
    ] {
        // Labels must be positive for the relative loss; occupancies below 1%
        // are floored (relative error on near-zero occupancy is meaningless).
        let train_labels: Vec<f64> = data.train.iter().map(|s| get(s).max(1.0)).collect();
        let test_labels: Vec<f64> = data.test.iter().map(|s| get(s).max(1.0)).collect();
        let opts = TrainOptions::default();
        let model = train_model_with_labels(&data.train, &train_labels, &ctx.profile, &opts);
        let pairs = predict_all_with_labels(&model, &data.test, &test_labels, &ctx.profile);
        let stats = ErrorStats::from_pairs(&pairs);
        rows.push(vec![
            name.to_string(),
            format!("{:.2}%", stats.mean * 100.0),
            format!("{:.2}%", stats.p90 * 100.0),
        ]);
        out.insert(
            name.to_string(),
            json!({ "mean": stats.mean, "p90": stats.p90 }),
        );
    }
    print_table(&["Metric", "Mean rel err", "P90"], &rows);
    println!("(paper: rename-queue 2.50%, ROB occupancy 2.23%)");
    let j = serde_json::Value::Object(out);
    ctx.write_report("tab_other_metrics", &j);
    j
}
