//! Figures 15–17: Shapley-value performance attribution (paper §6).

use concorde_attribution::{
    ablation_deltas, cache_vs_lq_groups, default_groups, shapley_exact, shapley_mc,
};
use concorde_core::prelude::*;
use concorde_cyclesim::MicroArch;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde_json::json;

use crate::{print_table, Ctx};

fn region_store(ctx: &Ctx, id: &str, trace: u32, start: u64, sweep: &SweepConfig) -> FeatureStore {
    let profile = &ctx.profile;
    let spec = concorde_trace::by_id(id).unwrap();
    let warm_start = start.saturating_sub(profile.warmup_len as u64);
    let warm_len = (start - warm_start) as usize;
    let full =
        concorde_trace::generate_region(&spec, trace, warm_start, warm_len + profile.region_len);
    let (w, r) = full.instrs.split_at(warm_len);
    // One thread per store: the callers parallelize across regions.
    FeatureStore::precompute_threaded(w, r, sweep, profile, 1)
}

/// Figure 15: order-dependent ablations vs the Shapley attribution for the
/// cache-size / load-queue interaction on a Search3 (P9) region.
pub fn fig15(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 15: ablation order bias vs Shapley ==");
    let model = &ctx.main_data().model;
    let base = MicroArch::big_core();
    // Target: the paper's example — shrink caches to 64/64/1024 and LQ to 12.
    let mut target = base;
    target.mem.l1i_kb = 64;
    target.mem.l1d_kb = 64;
    target.mem.l2_kb = 1024;
    target.lq_size = 12;
    let groups = cache_vs_lq_groups();

    let store = region_store(
        ctx,
        "P9",
        0,
        3 * ctx.profile.region_len as u64,
        &SweepConfig::for_pair(&base, &target),
    );
    let f = |a: &MicroArch| model.predict(&store, a);

    let cache_first = ablation_deltas(f, &base, &target, &groups, &[0, 1]);
    let lq_first = ablation_deltas(f, &base, &target, &groups, &[1, 0]);
    let shapley = shapley_exact(f, &base, &target, &groups);

    let pct = |v: f64, b: f64| format!("{:+.0}%", v / b * 100.0);
    let b = shapley.base_value;
    let rows = vec![
        vec![
            "Cache -> LQ".into(),
            pct(cache_first.values[0], b),
            pct(cache_first.values[1], b),
        ],
        vec![
            "LQ -> Cache".into(),
            pct(lq_first.values[0], b),
            pct(lq_first.values[1], b),
        ],
        vec![
            "Shapley".into(),
            pct(shapley.values[0], b),
            pct(shapley.values[1], b),
        ],
    ];
    print_table(&["Attribution", "Caches", "Load queue"], &rows);
    println!(
        "baseline CPI {:.3} -> target CPI {:.3}; Shapley splits the interaction fairly \
         (paper: 53/458 vs 501/… vs 277/234)",
        shapley.base_value, shapley.target_value
    );
    let j = json!({
        "base_cpi": shapley.base_value,
        "target_cpi": shapley.target_value,
        "cache_first": cache_first.values,
        "lq_first": lq_first.values,
        "shapley": shapley.values,
    });
    ctx.write_report("fig15_shapley_demo", &j);
    j
}

/// Figure 16: CPI attribution for ARM N1 across the whole workload suite.
pub fn fig16(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 16: CPI attribution for ARM N1 across workloads ==");
    let model = &ctx.main_data().model;
    let base = MicroArch::big_core();
    let target = MicroArch::arm_n1();
    let groups = default_groups();
    let sweep = SweepConfig::for_pair(&base, &target);
    let suite = concorde_trace::suite();

    let (regions_per_wl, perms) = match ctx.scale {
        crate::Scale::Quick => (2usize, 8usize),
        crate::Scale::Default => (16, 40),
        crate::Scale::Full => (48, 100),
    };

    let total_evals = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Option<serde_json::Value>>> = suite
        .iter()
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let wi = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if wi >= suite.len() {
                    break;
                }
                let spec = &suite[wi];
                let mut sum = vec![0.0f64; groups.len()];
                let mut base_cpi = 0.0;
                let mut target_cpi = 0.0;
                let mut rng = ChaCha12Rng::seed_from_u64(0xF16 ^ wi as u64);
                for rgn in 0..regions_per_wl {
                    let start = (rgn as u64 * 7 + 1) * concorde_trace::SEGMENT_LEN * 4
                        % spec
                            .trace_len
                            .saturating_sub(ctx.profile.region_len as u64)
                            .max(1);
                    let store =
                        region_store(ctx, &spec.id, rgn as u32 % spec.n_traces, start, &sweep);
                    let f = |a: &MicroArch| model.predict(&store, a);
                    let attr = shapley_mc(f, &base, &target, &groups, perms, &mut rng);
                    for (acc, v) in sum.iter_mut().zip(&attr.values) {
                        *acc += v;
                    }
                    base_cpi += attr.base_value;
                    target_cpi += attr.target_value;
                    total_evals.fetch_add(attr.evaluations, std::sync::atomic::Ordering::Relaxed);
                }
                let k = regions_per_wl as f64;
                let values: Vec<f64> = sum.iter().map(|v| v / k).collect();
                *results[wi].lock() = Some(json!({
                    "program": spec.id,
                    "base_cpi": base_cpi / k,
                    "target_cpi": target_cpi / k,
                    "attribution": values,
                }));
            });
        }
    });
    let elapsed = t0.elapsed();
    let per_program: Vec<serde_json::Value> = results
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();

    // Print: per program, baseline→target CPI and the top-3 bottlenecks.
    let mut rows = Vec::new();
    for r in &per_program {
        let vals: Vec<f64> = r["attribution"]
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[b].partial_cmp(&vals[a]).unwrap());
        let top: Vec<String> = idx
            .iter()
            .take(3)
            .filter(|&&i| vals[i] > 1e-3)
            .map(|&i| format!("{} ({:+.2})", groups[i].label, vals[i]))
            .collect();
        rows.push(vec![
            r["program"].as_str().unwrap().to_string(),
            format!("{:.2}", r["base_cpi"].as_f64().unwrap()),
            format!("{:.2}", r["target_cpi"].as_f64().unwrap()),
            top.join(", "),
        ]);
    }
    print_table(
        &[
            "Program",
            "Base CPI",
            "N1 CPI",
            "Top bottlenecks (Shapley ΔCPI)",
        ],
        &rows,
    );
    let evals = total_evals.load(std::sync::atomic::Ordering::Relaxed);
    println!(
        "{} CPI evaluations across {} programs x {regions_per_wl} regions x {perms} permutations in {elapsed:?} \
         (paper: 143M evaluations in ~1 hour on a TPU)",
        evals,
        suite.len()
    );
    let j = json!({
        "groups": groups.iter().map(|g| g.label.clone()).collect::<Vec<_>>(),
        "per_program": per_program,
        "evaluations": evals,
        "elapsed_secs": elapsed.as_secs_f64(),
    });
    ctx.write_report("fig16_attribution", &j);
    j
}

/// Figure 17: per-region attribution for Search3 (P9) — phase behaviour.
pub fn fig17(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 17: per-region attribution (P9 / Search3) ==");
    let model = &ctx.main_data().model;
    let base = MicroArch::big_core();
    let target = MicroArch::arm_n1();
    let groups = default_groups();
    let cache_gi = 0usize; // "L1i/L1d/L2 caches" is group 0
    let sweep = SweepConfig::for_pair(&base, &target);
    let spec = concorde_trace::by_id("P9").unwrap();

    let n_regions = match ctx.scale {
        crate::Scale::Quick => 4usize,
        crate::Scale::Default => 48,
        crate::Scale::Full => 200,
    };
    let perms = if ctx.scale == crate::Scale::Quick {
        8
    } else {
        30
    };

    let results: Vec<parking_lot::Mutex<Option<(f64, f64)>>> = (0..n_regions)
        .map(|_| parking_lot::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n_regions {
                    break;
                }
                // Stride regions across the trace so phases alternate.
                let start = (i as u64 * 5 + 1) * concorde_trace::SEGMENT_LEN * 2
                    % spec
                        .trace_len
                        .saturating_sub(ctx.profile.region_len as u64)
                        .max(1);
                let store = region_store(
                    ctx,
                    "P9",
                    (i % spec.n_traces as usize) as u32,
                    start,
                    &sweep,
                );
                let f = |a: &MicroArch| model.predict(&store, a);
                let mut rng = ChaCha12Rng::seed_from_u64(0xF17 ^ i as u64);
                let attr = shapley_mc(f, &base, &target, &groups, perms, &mut rng);
                let total: f64 = attr.values.iter().sum();
                *results[i].lock() = Some((attr.values[cache_gi], total));
            });
        }
    });
    let mut per_region: Vec<(f64, f64)> = results
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    per_region.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    let cache_vals: Vec<f64> = per_region.iter().map(|(c, _)| *c).collect();
    let mean = cache_vals.iter().sum::<f64>() / cache_vals.len() as f64;
    let hi_sens = cache_vals
        .iter()
        .filter(|&&c| c > 2.0 * mean.max(0.01))
        .count();
    println!(
        "cache-size attribution across {n_regions} regions: min {:+.3}, mean {:+.3}, max {:+.3} ΔCPI",
        cache_vals.first().unwrap(),
        mean,
        cache_vals.last().unwrap()
    );
    println!(
        "{} of {} regions ({:.0}%) are >2x more cache-sensitive than the program average \
         (paper: ~10% of P9 regions are cache-sensitive despite a small average — phase behaviour)",
        hi_sens,
        n_regions,
        hi_sens as f64 / n_regions as f64 * 100.0
    );
    let j = json!({
        "cache_attribution_sorted": cache_vals,
        "total_delta_sorted": per_region.iter().map(|(_, t)| *t).collect::<Vec<_>>(),
        "mean_cache_attribution": mean,
        "high_sensitivity_regions": hi_sens,
    });
    ctx.write_report("fig17_region_attribution", &j);
    j
}
