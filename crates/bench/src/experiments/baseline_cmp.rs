//! Figure 8: Concorde vs the TAO-like sequence baseline on ARM N1.

use concorde_baseline::{featurize, train_baseline, BaselineConfig};
use concorde_core::prelude::*;
use concorde_cyclesim::MicroArch;
use concorde_ml::ErrorStats;
use serde_json::json;

use crate::{print_table, Ctx};

/// Runs Figure 8: per-SPEC-program accuracy of Concorde (trained on random
/// microarchitectures) vs the baseline (specialized to ARM N1).
pub fn fig08(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 8: Concorde vs TAO-like baseline (ARM N1, SPEC) ==");
    let profile = &ctx.profile;
    let suite = concorde_trace::suite();
    let spec_ids: Vec<u16> = suite
        .iter()
        .enumerate()
        .filter(|(_, w)| w.class == concorde_trace::WorkloadClass::Spec2017)
        .map(|(i, _)| i as u16)
        .collect();
    let arch = MicroArch::arm_n1();

    // Fixed-arch SPEC datasets for the baseline + shared test set.
    let n_train = (profile.train_samples / 6).clamp(60, 4000);
    let n_test = (profile.test_samples / 2).clamp(40, 1500);
    let mk = |n, seed| DatasetConfig {
        profile: profile.clone(),
        n,
        seed,
        arch: ArchSampling::Fixed(arch),
        workloads: Some(spec_ids.clone()),
        threads: 0,
    };
    eprintln!("[fig08] generating fixed-arch SPEC datasets ({n_train} train / {n_test} test) …");
    let train = generate_dataset(&mk(n_train, 81));
    let test = generate_dataset(&mk(n_test, 82));

    // Baseline: featurize sequences (O(L)) and train the LSTM.
    eprintln!("[fig08] featurizing + training baseline …");
    #[allow(clippy::type_complexity)]
    let featurize_set = |set: &[Sample]| -> Vec<(Vec<f32>, f64)> {
        let results: Vec<parking_lot::Mutex<Option<(Vec<f32>, f64)>>> =
            set.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= set.len() {
                        break;
                    }
                    let smp = &set[i];
                    let spec = &suite[smp.workload as usize];
                    let warm_start = smp.region.start.saturating_sub(profile.warmup_len as u64);
                    let warm_len = (smp.region.start - warm_start) as usize;
                    let full = concorde_trace::generate_region(
                        spec,
                        smp.region.trace_idx,
                        warm_start,
                        warm_len + profile.region_len,
                    );
                    let (w, r) = full.instrs.split_at(warm_len);
                    *results[i].lock() = Some((featurize(w, r, arch.mem), smp.cpi));
                });
            }
        });
        results
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect()
    };
    let train_seqs = featurize_set(&train);
    let test_seqs = featurize_set(&test);
    let bl_cfg = BaselineConfig {
        epochs: if ctx.scale == crate::Scale::Quick {
            10
        } else {
            60
        },
        ..BaselineConfig::default()
    };
    let baseline = train_baseline(&train_seqs, &bl_cfg);

    // Concorde: the main random-arch model, evaluated at the fixed N1 design
    // (the paper's setup: Concorde is *not* specialized to N1). We also train
    // an N1-specialized Concorde on exactly the baseline's data budget, for an
    // apples-to-apples comparison at this reduced dataset scale.
    let concorde = &ctx.main_data().model;
    let concorde_pairs = predict_all(concorde, &test, profile);
    let specialized = train_model(&train, profile, &TrainOptions::default());
    let specialized_pairs = predict_all(&specialized, &test, profile);
    let baseline_pairs: Vec<(f64, f64)> = test_seqs
        .iter()
        .map(|(seq, cpi)| (baseline.predict(seq), *cpi))
        .collect();

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &w in &spec_ids {
        let idx: Vec<usize> = test
            .iter()
            .enumerate()
            .filter(|(_, s)| s.workload == w)
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            continue;
        }
        let cp: Vec<(f64, f64)> = idx.iter().map(|&i| concorde_pairs[i]).collect();
        let sp: Vec<(f64, f64)> = idx.iter().map(|&i| specialized_pairs[i]).collect();
        let bp: Vec<(f64, f64)> = idx.iter().map(|&i| baseline_pairs[i]).collect();
        let cs = ErrorStats::from_pairs(&cp);
        let ss = ErrorStats::from_pairs(&sp);
        let bs = ErrorStats::from_pairs(&bp);
        rows.push(vec![
            suite[w as usize].id.clone(),
            format!("{:.2}%", cs.mean * 100.0),
            format!("{:.2}%", ss.mean * 100.0),
            format!("{:.2}%", bs.mean * 100.0),
            idx.len().to_string(),
        ]);
        out.push(json!({
            "program": suite[w as usize].id,
            "concorde": cs.mean,
            "concorde_specialized": ss.mean,
            "baseline": bs.mean,
            "n": idx.len(),
        }));
    }
    print_table(
        &[
            "Program",
            "Concorde (random-arch)",
            "Concorde (N1)",
            "Baseline err",
            "n",
        ],
        &rows,
    );
    let call = ErrorStats::from_pairs(&concorde_pairs);
    let sall = ErrorStats::from_pairs(&specialized_pairs);
    let ball = ErrorStats::from_pairs(&baseline_pairs);
    println!(
        "overall: Concorde(random-arch) {:.2}% / Concorde(N1, same data as baseline) {:.2}% vs baseline {:.2}% \
         (paper: Concorde 3.5% vs TAO 7.8%; the random-arch model needs the paper's 66x-larger dataset to win)",
        call.mean * 100.0,
        sall.mean * 100.0,
        ball.mean * 100.0
    );
    let j = json!({
        "per_program": out,
        "concorde_overall": call.mean,
        "concorde_specialized_overall": sall.mean,
        "baseline_overall": ball.mean,
    });
    ctx.write_report("fig08_tao", &j);
    j
}
