//! Figure 1: per-resource throughput bounds vs ground-truth IPC.

use concorde_core::prelude::*;
use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};
use serde_json::json;

use crate::{print_table, Ctx};

/// Reproduces Figure 1 for two contrasting programs: the timeseries of
/// per-resource throughput bounds over instruction windows, next to the
/// cycle-level simulator's per-window IPC, plus the derived distributions.
pub fn fig01(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 1: per-resource bounds vs ground-truth IPC ==");
    let profile = &ctx.profile;
    let arch = MicroArch::arm_n1();
    let mut out = Vec::new();

    for id in ["P9", "S4"] {
        let spec = concorde_trace::by_id(id).unwrap();
        let full =
            concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
        let (w, r) = full.instrs.split_at(profile.warmup_len);

        let sim = simulate_warmed(
            w,
            r,
            &arch,
            SimOptions {
                record_commit_cycles: true,
                seed: 0,
            },
        );
        let ipc = sim.window_ipc(profile.window_k);
        let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), profile);

        let resources = [
            Resource::Rob,
            Resource::LoadQueue,
            Resource::IcacheFills,
            Resource::FetchBuffers,
        ];
        println!("\n-- {id} ({}) --", spec.name);
        let windows = ipc.len().min(12);
        let mut rows = Vec::new();
        for j in 0..windows {
            let mut row = vec![j.to_string(), format!("{:.2}", ipc[j])];
            for res in resources {
                let s = store.raw_series(res, &arch);
                row.push(if j < s.len() {
                    format!("{:.2}", s[j].min(99.0))
                } else {
                    "-".into()
                });
            }
            rows.push(row);
        }
        print_table(
            &[
                "win",
                "IPC (sim)",
                "ROB",
                "LQ",
                "icache fills",
                "fetch bufs",
            ],
            &rows,
        );

        // Correlation check: the min of the bounds should track IPC.
        let n = ipc.len();
        let min_bound: Vec<f64> = (0..n)
            .map(|j| {
                let mut m = f64::from(arch.commit_width.min(arch.decode_width));
                for res in Resource::ALL.iter().take(10) {
                    let s = store.raw_series(*res, &arch);
                    if j < s.len() {
                        m = m.min(s[j]);
                    }
                }
                m
            })
            .collect();
        let corr = pearson(&ipc, &min_bound[..n.min(min_bound.len())]);
        println!("correlation(min bound, IPC) over {n} windows: {corr:.3} (paper: bounds explain IPC trends)");
        out.push(json!({ "program": id, "ipc": ipc, "min_bound": min_bound, "correlation": corr }));
    }
    let j = json!(out);
    ctx.write_report("fig01_bounds", &j);
    j
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
