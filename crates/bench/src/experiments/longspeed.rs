//! Figure 9 (long-program accuracy) and Figure 10 (speed comparison).

use std::time::Instant;

use concorde_core::prelude::*;
use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};
use serde_json::json;

use crate::{print_table, Ctx};

/// Figure 9: long-program CPI from sampled regions.
pub fn fig09(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 9: long-program CPI via region sampling ==");
    let model = &ctx.main_data().model;
    let arch = MicroArch::arm_n1();
    let suite = concorde_trace::suite();
    // The paper uses its ten longest programs; pick a representative subset
    // (scaled long-program length: the full virtual traces are millions of
    // instructions, vs 1B in the paper).
    let ids = if ctx.scale == crate::Scale::Quick {
        vec!["O2", "S5"]
    } else {
        vec!["P12", "P9", "P2", "P11", "O4", "P7", "S5", "O2", "S7", "S6"]
    };
    let program_len = if ctx.scale == crate::Scale::Quick {
        200_000
    } else {
        1_500_000
    };
    let sample_counts = if ctx.scale == crate::Scale::Quick {
        vec![3, 10]
    } else {
        vec![10, 30, 100]
    };

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for id in &ids {
        let spec = suite.iter().find(|w| w.id == *id).unwrap();
        let res = long_program_experiment(
            spec,
            &arch,
            model,
            &ctx.profile,
            program_len,
            &sample_counts,
            0xF19,
        );
        let mut cells = vec![id.to_string(), format!("{:.3}", res.true_cpi)];
        for (_, est, err) in &res.estimates {
            cells.push(format!("{est:.3} ({:.1}%)", err * 100.0));
        }
        rows.push(cells);
        out.push(serde_json::to_value(&res).unwrap());
    }
    let mut headers = vec!["Program".to_string(), "True CPI".to_string()];
    for n in &sample_counts {
        headers.push(format!("{n} samples"));
    }
    let hdr: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table(&hdr, &rows);
    println!("(paper: with 100 samples every program is below 5% error, average 3.5%)");
    let avg_err_last: f64 = out
        .iter()
        .map(|r| {
            r["estimates"].as_array().unwrap().last().unwrap()[2]
                .as_f64()
                .unwrap()
        })
        .sum::<f64>()
        / out.len() as f64;
    println!(
        "average error at {} samples: {:.2}%",
        sample_counts.last().unwrap(),
        avg_err_last * 100.0
    );
    let j = json!({ "programs": out, "avg_err_at_max_samples": avg_err_last });
    ctx.write_report("fig09_long_programs", &j);
    j
}

/// Figure 10: running-time comparison.
pub fn fig10(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Figure 10: speed comparison ==");
    let data = ctx.main_data();
    let model = &data.model;
    let profile = &ctx.profile;
    let arch = MicroArch::arm_n1();
    let spec = concorde_trace::by_id("S5").unwrap();

    // Materialize one region + store.
    let full =
        concorde_trace::generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);
    let store = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), profile);

    // (a) Concorde inference: feature lookup + MLP (amortized, the paper's
    // "single neural network evaluation").
    let n_inf = 2000;
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n_inf {
        acc += model.predict(&store, &arch);
    }
    let t_inference = t0.elapsed().as_secs_f64() / n_inf as f64;
    assert!(acc > 0.0);

    // (b) Cycle-level simulation of the same region.
    let t1 = Instant::now();
    let sim = simulate_warmed(w, r, &arch, SimOptions::default());
    let t_sim_region = t1.elapsed().as_secs_f64();

    // (c) Cycle-level simulation of a long program (shows O(L) scaling).
    let long_len = if ctx.scale == crate::Scale::Quick {
        100_000
    } else {
        1_000_000
    };
    let long = concorde_trace::generate_region(&spec, 0, 0, long_len);
    let t2 = Instant::now();
    let sim_long = simulate_warmed(&[], &long.instrs, &arch, SimOptions::default());
    let t_sim_long = t2.elapsed().as_secs_f64();

    // (d) Concorde long-program estimate: 100 sequential inferences.
    let t3 = Instant::now();
    let mut acc2 = 0.0;
    for _ in 0..100 {
        acc2 += model.predict(&store, &arch);
    }
    let t_concorde_100 = t3.elapsed().as_secs_f64();
    assert!(acc2 > 0.0);

    // (e) One-time preprocessing for this region (amortized over the space).
    let t4 = Instant::now();
    let _store2 = FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), profile);
    let t_preproc = t4.elapsed().as_secs_f64();

    let speedup_region = t_sim_region / t_inference;
    let speedup_long = t_sim_long / t_concorde_100;
    let rows = vec![
        vec![
            "Concorde inference (1 region)".into(),
            format!("{:.1} µs", t_inference * 1e6),
        ],
        vec![
            format!("cycle-level sim ({}k region)", profile.region_len / 1000),
            format!("{:.1} ms", t_sim_region * 1e3),
        ],
        vec![
            format!("cycle-level sim ({}k program)", long_len / 1000),
            format!("{:.1} ms", t_sim_long * 1e3),
        ],
        vec![
            "Concorde 100-sample estimate".into(),
            format!("{:.2} ms", t_concorde_100 * 1e3),
        ],
        vec![
            "one-time preprocessing (1 arch)".into(),
            format!("{:.1} ms", t_preproc * 1e3),
        ],
    ];
    print_table(&["Stage", "Time"], &rows);
    println!(
        "speedup vs cycle-level: {speedup_region:.0}x per region, {speedup_long:.0}x for the long program \
         (paper: >2e5x and ~1e7x; our cycle-level simulator is itself ~100x faster than gem5, \
         so absolute ratios scale accordingly — inference time is length-independent either way)"
    );
    println!(
        "simulated CPIs: region {:.3}, long {:.3}; inference cost is O(1) in region length",
        sim.cpi(),
        sim_long.cpi()
    );
    let j = json!({
        "inference_secs": t_inference,
        "sim_region_secs": t_sim_region,
        "sim_long_secs": t_sim_long,
        "concorde_100_samples_secs": t_concorde_100,
        "preprocessing_secs": t_preproc,
        "speedup_region": speedup_region,
        "speedup_long_program": speedup_long,
    });
    ctx.write_report("fig10_speed", &j);
    j
}
