//! One module per paper table/figure family.

pub mod ablation;
pub mod accuracy;
pub mod attribution;
pub mod baseline_cmp;
pub mod bounds;
pub mod longspeed;
pub mod tables;
