//! Tables 1–3 and the §5.2.3 preprocessing-cost table.

use std::time::Instant;

use concorde_analytic::distribution::Encoding;
use concorde_core::prelude::*;
use concorde_cyclesim::{design_space_size, quantized_space_size, MicroArch, ParamId};
use concorde_trace::{generate_region, suite};
use serde_json::json;

use crate::{print_table, Ctx};

/// Table 1: the parameter space and its size.
pub fn tab01(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Table 1: design-parameter space ==");
    let n1 = MicroArch::arm_n1();
    let rows: Vec<Vec<String>> = ParamId::ALL
        .iter()
        .map(|p| {
            let n1v = match p {
                ParamId::RobSize => n1.rob_size.to_string(),
                ParamId::CommitWidth => n1.commit_width.to_string(),
                ParamId::LqSize => n1.lq_size.to_string(),
                ParamId::SqSize => n1.sq_size.to_string(),
                ParamId::AluWidth => n1.alu_width.to_string(),
                ParamId::FpWidth => n1.fp_width.to_string(),
                ParamId::LsWidth => n1.ls_width.to_string(),
                ParamId::LsPipes => n1.ls_pipes.to_string(),
                ParamId::LoadPipes => n1.load_pipes.to_string(),
                ParamId::FetchWidth => n1.fetch_width.to_string(),
                ParamId::DecodeWidth => n1.decode_width.to_string(),
                ParamId::RenameWidth => n1.rename_width.to_string(),
                ParamId::FetchBuffers => n1.fetch_buffers.to_string(),
                ParamId::MaxIcacheFills => n1.max_icache_fills.to_string(),
                ParamId::BranchPredictor => "TAGE".to_string(),
                ParamId::SimpleBpPct => "-".to_string(),
                ParamId::L1dKb => n1.mem.l1d_kb.to_string(),
                ParamId::L1iKb => n1.mem.l1i_kb.to_string(),
                ParamId::L2Kb => n1.mem.l2_kb.to_string(),
                ParamId::PrefetchDegree => n1.mem.prefetch_degree.to_string(),
            };
            vec![p.label().to_string(), p.cardinality().to_string(), n1v]
        })
        .collect();
    print_table(&["Parameter", "Values", "ARM N1"], &rows);
    let full = design_space_size();
    let quant = quantized_space_size();
    println!("full space: {full:.2e} combinations (paper: ~2.2e23)");
    println!("pow2-quantized space: {quant:.2e} combinations (paper: ~1.8e18)");
    let report = json!({ "full_space": full, "quantized_space": quant });
    ctx.write_report("tab01_space", &report);
    report
}

/// Table 2: the 29-program workload suite.
pub fn tab02(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Table 2: workload suite ==");
    let rows: Vec<Vec<String>> = suite()
        .iter()
        .map(|w| {
            vec![
                format!("{:?}", w.class),
                w.id.clone(),
                w.name.clone(),
                w.n_traces.to_string(),
                format!("{:.1}", w.n_traces as f64 * w.trace_len as f64 / 1e6),
            ]
        })
        .collect();
    print_table(&["Class", "Id", "Name", "Traces", "Instr (M)"], &rows);
    let total: f64 = suite()
        .iter()
        .map(|w| w.n_traces as f64 * w.trace_len as f64)
        .sum();
    println!(
        "total virtual instructions: {:.1}M across 29 programs",
        total / 1e6
    );
    let report = json!({ "programs": suite().len(), "total_instructions": total });
    ctx.write_report("tab02_workloads", &report);
    report
}

/// Table 3: ML input dimension breakdown, straight from the schema.
pub fn tab03(ctx: &Ctx) -> serde_json::Value {
    println!("\n== Table 3: ML input layout (schema v{SCHEMA_VERSION}) ==");
    let mut rows = Vec::new();
    for (name, enc) in [
        ("paper (101-dim)", Encoding::paper()),
        ("default (33-dim)", ctx.profile.encoding),
    ] {
        let schema = FeatureSchema::new(enc, FeatureVariant::Full);
        let width = |g: BlockGroup| schema.group_range(g).map_or(0, |r| r.len());
        rows.push(vec![
            name.to_string(),
            width(BlockGroup::Primary).to_string(),
            (width(BlockGroup::Mispredict) + width(BlockGroup::Stall)).to_string(),
            width(BlockGroup::Latency).to_string(),
            width(BlockGroup::Params).to_string(),
            schema.dim().to_string(),
        ]);
    }
    print_table(
        &[
            "Encoding",
            "Per-resource",
            "Pipeline stalls",
            "Latency dists",
            "Params",
            "Total",
        ],
        &rows,
    );
    println!(
        "paper total must be 3873: {}",
        FeatureLayout {
            encoding: Encoding::paper(),
            variant: FeatureVariant::Full
        }
        .dim()
    );
    let report = json!({
        "paper_total": FeatureLayout { encoding: Encoding::paper(), variant: FeatureVariant::Full }.dim(),
        "default_total": FeatureLayout { encoding: ctx.profile.encoding, variant: FeatureVariant::Full }.dim(),
    });
    ctx.write_report("tab03_layout", &report);
    report
}

/// §5.2.3: preprocessing cost — full vs quantized sweeps on one region.
pub fn tab_preproc(ctx: &Ctx) -> serde_json::Value {
    println!("\n== §5.2.3: preprocessing cost (one region) ==");
    let profile = &ctx.profile;
    let spec = concorde_trace::by_id("S5").unwrap();
    let full = generate_region(&spec, 0, 0, profile.warmup_len + profile.region_len);
    let (w, r) = full.instrs.split_at(profile.warmup_len);

    // Single-arch precompute (the per-training-sample cost). One thread:
    // the paper statistic is the serial analytic cost per sample, and
    // dataset generation runs its precomputes single-threaded too.
    let arch = MicroArch::arm_n1();
    let t0 = Instant::now();
    let s_single =
        FeatureStore::precompute_threaded(w, r, &SweepConfig::for_arch(&arch), profile, 1);
    let t_single = t0.elapsed();

    // Quantized full-space sweep (§5.2.3's 1.8e18-combination variant),
    // also single-threaded so the "≈ N cycle-level simulations" ratio
    // compares like with like (the simulator below is serial).
    let t1 = Instant::now();
    let s_quant = FeatureStore::precompute_threaded(w, r, &SweepConfig::quantized(), profile, 1);
    let t_quant = t1.elapsed();

    // Reference: one cycle-level simulation of the same region.
    let t2 = Instant::now();
    let sim = concorde_cyclesim::simulate_warmed(w, r, &arch, Default::default());
    let t_sim = t2.elapsed();

    let rows = vec![
        vec![
            "single-arch precompute".into(),
            format!("{t_single:?}"),
            format!("{} B", s_single.encoded_bytes()),
        ],
        vec![
            "quantized-space precompute".into(),
            format!("{t_quant:?}"),
            format!("{} B", s_quant.encoded_bytes()),
        ],
        vec![
            "one cycle-level simulation".into(),
            format!("{t_sim:?}"),
            format!("CPI {:.3}", sim.cpi()),
        ],
    ];
    print_table(&["Stage", "Time", "Size / note"], &rows);
    let ratio = t_quant.as_secs_f64() / t_sim.as_secs_f64().max(1e-9);
    println!(
        "quantized precompute ≈ {ratio:.1} cycle-level simulations (paper: 7 with pow2 sweeps; \
         covers {:.1e} parameter combinations)",
        quantized_space_size()
    );
    let report = serde_json::json!({
        "single_arch_secs": t_single.as_secs_f64(),
        "quantized_secs": t_quant.as_secs_f64(),
        "one_sim_secs": t_sim.as_secs_f64(),
        "sims_equivalent": ratio,
        "quantized_feature_bytes": s_quant.encoded_bytes(),
    });
    ctx.write_report("tab_preproc_cost", &report);
    report
}
