//! # concorde-bench
//!
//! Experiment harness for the Concorde reproduction: one module (and one
//! thin binary) per table and figure of the paper's evaluation, sharing a
//! disk-cached dataset + trained model through [`Ctx`].
//!
//! Run `cargo run -p concorde-bench --release --bin run_all` to regenerate
//! everything; individual binaries (`fig05_accuracy`, `fig16_attribution`, …)
//! rebuild just their artifact. All outputs land in
//! `target/concorde-artifacts/` as JSON plus human-readable stdout tables.

#![allow(missing_docs)]

pub mod experiments;

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use concorde_core::prelude::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny: CI-fast smoke runs.
    Quick,
    /// Default scaled reproduction (DESIGN.md §3).
    Default,
    /// Bigger run (closer to the paper; slower).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from CLI args.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Default
        }
    }

    /// The repro profile for this scale.
    pub fn profile(&self) -> ReproProfile {
        match self {
            Scale::Quick => {
                let mut p = ReproProfile::quick();
                p.train_samples = 300;
                p.test_samples = 60;
                p.epochs = 15;
                p.region_len = 8_192;
                p.warmup_len = 8_192;
                p
            }
            Scale::Default => ReproProfile::default_repro(),
            Scale::Full => {
                let mut p = ReproProfile::default_repro();
                p.train_samples = 30_000;
                p.test_samples = 4_000;
                p.epochs = 60;
                p
            }
        }
    }
}

/// Shared experiment context: profile, artifact directory, and lazily built
/// (disk-cached) main dataset + model.
pub struct Ctx {
    pub scale: Scale,
    pub profile: ReproProfile,
    pub dir: PathBuf,
    main: OnceLock<MainData>,
}

/// The shared train/test split and the full-variant model.
pub struct MainData {
    pub train: Vec<Sample>,
    pub test: Vec<Sample>,
    pub model: ConcordePredictor,
}

impl Ctx {
    /// Creates a context from CLI args (`--quick`/`--full`).
    pub fn from_args() -> Ctx {
        Ctx::new(Scale::from_args())
    }

    /// Creates a context at the given scale.
    pub fn new(scale: Scale) -> Ctx {
        let profile = scale.profile();
        let dir = artifacts_dir();
        std::fs::create_dir_all(&dir).expect("create artifacts dir");
        Ctx {
            scale,
            profile,
            dir,
            main: OnceLock::new(),
        }
    }

    fn cache_tag(&self) -> String {
        format!(
            "n{}t{}r{}e{}",
            self.profile.train_samples,
            self.profile.test_samples,
            self.profile.region_len,
            self.profile.encoding.dim()
        )
    }

    /// Returns (building and disk-caching on first use) the shared dataset
    /// and trained full-variant model.
    pub fn main_data(&self) -> &MainData {
        self.main.get_or_init(|| {
            let tag = self.cache_tag();
            let train_p = self.dir.join(format!("train_{tag}.json"));
            let test_p = self.dir.join(format!("test_{tag}.json"));
            let model_p = self.dir.join(format!("model_{tag}.json"));
            if train_p.exists() && test_p.exists() && model_p.exists() {
                eprintln!("[ctx] loading cached dataset + model ({tag})");
                if let (Some(train), Some(test), Ok(model)) = (
                    load_json::<Vec<Sample>>(&train_p),
                    load_json::<Vec<Sample>>(&test_p),
                    ConcordePredictor::load(&model_p),
                ) {
                    return MainData { train, test, model };
                }
                eprintln!("[ctx] cache unreadable; regenerating");
            }
            eprintln!("[ctx] generating dataset ({tag}) …");
            let t0 = std::time::Instant::now();
            let train = generate_dataset(&DatasetConfig::random(
                self.profile.clone(),
                self.profile.train_samples,
                1,
            ));
            let test = generate_dataset(&DatasetConfig::random(
                self.profile.clone(),
                self.profile.test_samples,
                2,
            ));
            eprintln!("[ctx] dataset generated in {:?}; training …", t0.elapsed());
            let t1 = std::time::Instant::now();
            let model = train_model(
                &train,
                &self.profile,
                &TrainOptions {
                    verbose: true,
                    ..TrainOptions::default()
                },
            );
            eprintln!("[ctx] trained in {:?}", t1.elapsed());
            save_json(&train_p, &train);
            save_json(&test_p, &test);
            model.save(&model_p).expect("save model");
            MainData { train, test, model }
        })
    }

    /// Writes an experiment report JSON into the artifacts directory.
    pub fn write_report<T: Serialize>(&self, name: &str, value: &T) {
        let p = self.dir.join(format!("{name}.json"));
        save_json(&p, value);
        eprintln!("[artifact] {}", p.display());
    }
}

/// `target/concorde-artifacts` relative to the workspace root.
pub fn artifacts_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.exists() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    break;
                }
            }
        }
        if !dir.pop() {
            dir = std::env::current_dir().expect("cwd");
            break;
        }
    }
    dir.join("target").join("concorde-artifacts")
}

/// Serializes `value` as JSON at `path`.
pub fn save_json<T: Serialize>(path: &Path, value: &T) {
    let f = std::fs::File::create(path).expect("create artifact file");
    serde_json::to_writer(std::io::BufWriter::new(f), value).expect("serialize artifact");
}

/// Loads JSON from `path`, returning `None` on any error.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> Option<T> {
    let f = std::fs::File::open(path).ok()?;
    serde_json::from_reader(std::io::BufReader::new(f)).ok()
}

/// Renders a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:<width$}  ", width = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}
