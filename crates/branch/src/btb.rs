//! Indirect-branch target prediction (BTB-style last-target table).
//!
//! Direct branches have statically known targets; indirect branches mispredict
//! whenever their dynamic target differs from the last observed target for the
//! same PC (a direct-mapped, tagged target buffer).

/// Last-target indirect branch predictor.
#[derive(Debug, Clone)]
pub struct TargetPredictor {
    entries: Vec<Option<(u64, u64)>>, // (pc, last_target)
    bits: usize,
}

impl Default for TargetPredictor {
    fn default() -> Self {
        Self::new(12)
    }
}

impl TargetPredictor {
    /// Creates a table with `2^bits` entries.
    pub fn new(bits: usize) -> Self {
        TargetPredictor {
            entries: vec![None; 1 << bits],
            bits,
        }
    }

    fn idx(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & ((1 << self.bits) - 1)
    }

    /// Predicts the target for an indirect branch at `pc`; `None` on a miss
    /// (no entry or tag mismatch), which counts as a misprediction.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.idx(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records the actual target.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.idx(pc);
        self.entries[i] = Some((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut b = TargetPredictor::new(8);
        assert_eq!(b.predict(0x100), None);
        b.update(0x100, 0x900);
        assert_eq!(b.predict(0x100), Some(0x900));
    }

    #[test]
    fn target_change_detected() {
        let mut b = TargetPredictor::new(8);
        b.update(0x100, 0x900);
        b.update(0x100, 0xA00);
        assert_eq!(b.predict(0x100), Some(0xA00));
    }

    #[test]
    fn aliasing_entries_evict() {
        let mut b = TargetPredictor::new(4); // 16 entries
        b.update(0x100, 0x900);
        // Same index (pc >> 2 mod 16), different tag.
        b.update(0x100 + (16 << 2), 0xB00);
        assert_eq!(b.predict(0x100), None, "tag mismatch must miss");
    }
}
