//! # concorde-branch
//!
//! Branch-prediction substrate for the Concorde reproduction: a from-scratch
//! [TAGE](tage::Tage) predictor, the paper's randomly mispredicting
//! [`Simple`](simple::SimplePredictor) predictor (Table 1), and a BTB-style
//! [indirect target predictor](btb::TargetPredictor), combined in a
//! trace-driven [`BranchUnit`].
//!
//! ```
//! use concorde_branch::{BranchUnit, PredictorKind};
//! use concorde_trace::{by_id, generate_region};
//!
//! let spec = by_id("S5").unwrap();
//! let region = generate_region(&spec, 0, 0, 10_000);
//! let (flags, stats) = BranchUnit::simulate(PredictorKind::Tage, 0, &region.instrs);
//! assert_eq!(flags.len(), region.instrs.len());
//! assert!(stats.mispredict_rate() < 0.5);
//! ```

#![warn(missing_docs)]

pub mod btb;
pub mod simple;
pub mod tage;
pub mod unit;

pub use btb::TargetPredictor;
pub use simple::SimplePredictor;
pub use tage::Tage;
pub use unit::{BranchStats, BranchUnit, PredictorKind};

/// A direction predictor for conditional branches.
///
/// `predict` must be called before `update` for each dynamic branch; the pair
/// models the speculative-predict / retire-update flow of a real frontend.
pub trait ConditionalPredictor {
    /// Predicts taken/not-taken for the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;
    /// Trains the predictor with the actual outcome.
    fn update(&mut self, pc: u64, taken: bool);
}
