//! The paper's `Simple` predictor: mispredicts conditional branches uniformly
//! at random with a pre-specified rate (Table 1: "Percent misprediction for
//! Simple BP", 0..=100).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

use crate::ConditionalPredictor;

/// Randomly mispredicting conditional-branch predictor.
///
/// `predict` returns the branch's actual outcome flipped with probability
/// `rate`; the outcome is supplied through [`SimplePredictor::set_outcome`]
/// before `predict` (the trace-driven setting always knows the outcome).
#[derive(Debug, Clone)]
pub struct SimplePredictor {
    rate: f64,
    rng: ChaCha12Rng,
    next_outcome: bool,
}

impl SimplePredictor {
    /// Creates a predictor with the given misprediction percentage (0..=100).
    ///
    /// # Panics
    ///
    /// Panics if `pct > 100`.
    pub fn new(pct: u8, seed: u64) -> Self {
        assert!(
            pct <= 100,
            "misprediction percentage must be 0..=100, got {pct}"
        );
        SimplePredictor {
            rate: f64::from(pct) / 100.0,
            rng: ChaCha12Rng::seed_from_u64(seed),
            next_outcome: false,
        }
    }

    /// Supplies the actual outcome the next `predict` call will (mis)predict.
    pub fn set_outcome(&mut self, taken: bool) {
        self.next_outcome = taken;
    }

    /// Configured misprediction rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl ConditionalPredictor for SimplePredictor {
    fn predict(&mut self, _pc: u64) -> bool {
        if self.rng.gen_bool(self.rate) {
            !self.next_outcome
        } else {
            self.next_outcome
        }
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_rate(pct: u8) -> f64 {
        let mut p = SimplePredictor::new(pct, 42);
        let n = 20_000;
        let mut miss = 0;
        for i in 0..n {
            let outcome = i % 3 == 0;
            p.set_outcome(outcome);
            if p.predict(0x100) != outcome {
                miss += 1;
            }
            p.update(0x100, outcome);
        }
        miss as f64 / n as f64
    }

    #[test]
    fn zero_rate_is_perfect() {
        assert_eq!(measured_rate(0), 0.0);
    }

    #[test]
    fn hundred_rate_always_wrong() {
        assert_eq!(measured_rate(100), 1.0);
    }

    #[test]
    fn mid_rates_match_statistically() {
        for pct in [5u8, 20, 50] {
            let r = measured_rate(pct);
            let want = f64::from(pct) / 100.0;
            assert!((r - want).abs() < 0.02, "pct={pct}: measured {r}");
        }
    }

    #[test]
    #[should_panic(expected = "misprediction percentage")]
    fn rejects_out_of_range() {
        let _ = SimplePredictor::new(101, 0);
    }
}
