//! TAGE conditional branch predictor (Seznec & Michaud).
//!
//! A faithful, compact implementation of the TAgged GEometric-history-length
//! predictor the paper's reference core uses: a bimodal base table plus `N`
//! partially tagged tables indexed by hashes of the PC and geometrically
//! growing fractions of the global branch history. Prediction comes from the
//! longest-history matching table; allocation on mispredictions steals
//! not-useful entries from longer tables; `u` counters age periodically.

use crate::ConditionalPredictor;

/// Number of tagged tables.
const NUM_TABLES: usize = 5;
/// Geometric history lengths per tagged table.
const HIST_LENS: [u32; NUM_TABLES] = [5, 11, 24, 54, 120];
/// log2(entries) per tagged table.
const TABLE_BITS: usize = 10;
/// Tag width in bits.
const TAG_BITS: u32 = 9;
/// log2(entries) of the bimodal base table.
const BIMODAL_BITS: usize = 12;
/// Reset the `u` bits after this many allocation failures ("ticks").
const U_RESET_PERIOD: u32 = 1 << 14;

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    /// 3-bit signed prediction counter (−4..=3); taken when >= 0.
    ctr: i8,
    /// Partial tag.
    tag: u16,
    /// 2-bit usefulness counter.
    useful: u8,
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    bimodal: Vec<i8>,
    tables: [Vec<TaggedEntry>; NUM_TABLES],
    /// Global history, newest outcome in bit 0.
    ghist: u128,
    /// Path/allocation randomness: a tiny xorshift state.
    lfsr: u32,
    tick: u32,
    /// State captured by the last `predict` call, consumed by `update`.
    last: PredictState,
}

#[derive(Debug, Clone, Copy, Default)]
struct PredictState {
    provider: Option<usize>,
    provider_idx: usize,
    alt_pred: bool,
    provider_pred: bool,
    pred: bool,
    bimodal_idx: usize,
    indices: [usize; NUM_TABLES],
    tags: [u16; NUM_TABLES],
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> Self {
        Tage {
            bimodal: vec![0; 1 << BIMODAL_BITS],
            tables: std::array::from_fn(|_| vec![TaggedEntry::default(); 1 << TABLE_BITS]),
            ghist: 0,
            lfsr: 0x2468_ace1,
            tick: 0,
            last: PredictState::default(),
        }
    }

    /// Folds the low `hist_len` bits of history into `out_bits` bits.
    fn fold(hist: u128, hist_len: u32, out_bits: u32) -> u64 {
        let mut acc: u64 = 0;
        let mask = if hist_len >= 128 {
            u128::MAX
        } else {
            (1u128 << hist_len) - 1
        };
        let mut h = hist & mask;
        while h != 0 {
            acc ^= (h as u64) & ((1 << out_bits) - 1);
            h >>= out_bits;
        }
        acc
    }

    fn index(&self, t: usize, pc: u64) -> usize {
        let folded = Self::fold(self.ghist, HIST_LENS[t], TABLE_BITS as u32);
        ((pc >> 2) ^ (pc >> (TABLE_BITS + 2)) ^ folded) as usize & ((1 << TABLE_BITS) - 1)
    }

    fn tag(&self, t: usize, pc: u64) -> u16 {
        let f1 = Self::fold(self.ghist, HIST_LENS[t], TAG_BITS);
        let f2 = Self::fold(self.ghist, HIST_LENS[t], TAG_BITS - 1) << 1;
        (((pc >> 2) ^ f1 ^ f2) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn rand(&mut self) -> u32 {
        // xorshift32; cheap deterministic allocation randomness.
        let mut x = self.lfsr;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.lfsr = x;
        x
    }

    /// Current global-history register (for tests/diagnostics).
    pub fn history(&self) -> u128 {
        self.ghist
    }
}

impl ConditionalPredictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        let bimodal_idx = ((pc >> 2) as usize) & ((1 << BIMODAL_BITS) - 1);
        let base_pred = self.bimodal[bimodal_idx] >= 0;

        let mut st = PredictState {
            provider: None,
            provider_idx: 0,
            alt_pred: base_pred,
            provider_pred: base_pred,
            pred: base_pred,
            bimodal_idx,
            indices: [0; NUM_TABLES],
            tags: [0; NUM_TABLES],
        };
        for t in 0..NUM_TABLES {
            st.indices[t] = self.index(t, pc);
            st.tags[t] = self.tag(t, pc);
        }

        // Longest matching table provides; next matching (or bimodal) is altpred.
        let mut provider = None;
        let mut alt: Option<bool> = None;
        for t in (0..NUM_TABLES).rev() {
            let e = &self.tables[t][st.indices[t]];
            if e.tag == st.tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else if alt.is_none() {
                    alt = Some(e.ctr >= 0);
                    break;
                }
            }
        }
        if let Some(p) = provider {
            st.provider = Some(p);
            st.provider_idx = st.indices[p];
            st.provider_pred = self.tables[p][st.provider_idx].ctr >= 0;
            st.alt_pred = alt.unwrap_or(base_pred);
            // Weak ("newly allocated") entries may defer to altpred; classic TAGE
            // uses a use_alt_on_na counter — we use the simple weak-entry rule.
            let e = &self.tables[p][st.provider_idx];
            let weak = e.ctr == 0 || e.ctr == -1;
            st.pred = if weak && e.useful == 0 {
                st.alt_pred
            } else {
                st.provider_pred
            };
        }
        self.last = st;
        st.pred
    }

    fn update(&mut self, _pc: u64, taken: bool) {
        let st = self.last;
        let mispred = st.pred != taken;

        // Update provider (or bimodal when no provider).
        match st.provider {
            Some(p) => {
                let e = &mut self.tables[p][st.provider_idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if st.provider_pred != st.alt_pred {
                    if st.provider_pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Also strengthen bimodal when it was the alternate.
                if st.provider_pred != taken {
                    let b = &mut self.bimodal[st.bimodal_idx];
                    *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
                }
            }
            None => {
                let b = &mut self.bimodal[st.bimodal_idx];
                *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }

        // Allocate a new entry on misprediction in a longer-history table.
        if mispred {
            let from = st.provider.map_or(0, |p| p + 1);
            if from < NUM_TABLES {
                // Find tables with a free (u == 0) victim.
                let mut free = [false; NUM_TABLES];
                let mut any = false;
                for (t, is_free) in free.iter_mut().enumerate().take(NUM_TABLES).skip(from) {
                    if self.tables[t][st.indices[t]].useful == 0 {
                        *is_free = true;
                        any = true;
                    }
                }
                if any {
                    // Prefer shorter tables with probability 1/2 each step
                    // (approximates TAGE's geometric allocation preference).
                    let mut chosen = None;
                    for (t, &is_free) in free.iter().enumerate().take(NUM_TABLES).skip(from) {
                        if is_free && (chosen.is_none() || self.rand() & 1 == 0) {
                            chosen = Some(t);
                            if self.rand() & 1 == 0 {
                                break;
                            }
                        }
                    }
                    let t = chosen.unwrap();
                    let e = &mut self.tables[t][st.indices[t]];
                    e.tag = st.tags[t];
                    e.ctr = if taken { 0 } else { -1 };
                    e.useful = 0;
                } else {
                    // Nowhere to allocate: age candidates and tick the reset clock.
                    for t in from..NUM_TABLES {
                        let e = &mut self.tables[t][st.indices[t]];
                        e.useful = e.useful.saturating_sub(1);
                    }
                    self.tick += 1;
                    if self.tick >= U_RESET_PERIOD {
                        self.tick = 0;
                        for table in &mut self.tables {
                            for e in table.iter_mut() {
                                e.useful >>= 1;
                            }
                        }
                    }
                }
            }
        }

        self.ghist = (self.ghist << 1) | u128::from(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(pred: &mut Tage, pc: u64, outcomes: &[bool]) -> usize {
        let mut miss = 0;
        for &o in outcomes {
            if pred.predict(pc) != o {
                miss += 1;
            }
            pred.update(pc, o);
        }
        miss
    }

    #[test]
    fn learns_always_taken() {
        let mut t = Tage::new();
        let outcomes = vec![true; 2000];
        let miss = run(&mut t, 0x4000, &outcomes);
        assert!(
            miss < 20,
            "always-taken should be near perfect, missed {miss}"
        );
    }

    #[test]
    fn learns_loop_pattern() {
        // taken,taken,taken,not-taken repeating (trip count 4): needs history.
        let mut t = Tage::new();
        let outcomes: Vec<bool> = (0..4000).map(|i| i % 4 != 3).collect();
        let warm = run(&mut t, 0x5000, &outcomes[..2000]);
        let cold = run(&mut t, 0x5000, &outcomes[2000..]);
        assert!(cold * 2 < warm.max(10) * 3, "warm misses {warm} -> {cold}");
        assert!(
            (cold as f64) / 2000.0 < 0.10,
            "steady-state loop mispredict rate too high: {cold}/2000"
        );
    }

    #[test]
    fn learns_periodic_pattern_that_bimodal_cannot() {
        // Period-6 alternating-ish pattern: bimodal converges to ~50% error,
        // TAGE should get well below 25%.
        let pattern = [true, false, true, true, false, false];
        let outcomes: Vec<bool> = (0..6000).map(|i| pattern[i % 6]).collect();
        let mut t = Tage::new();
        run(&mut t, 0x9000, &outcomes[..3000]);
        let miss = run(&mut t, 0x9000, &outcomes[3000..]);
        assert!(
            (miss as f64) / 3000.0 < 0.25,
            "TAGE missed {miss}/3000 on periodic pattern"
        );
    }

    #[test]
    fn random_branches_mispredict_near_half() {
        let mut t = Tage::new();
        // Deterministic pseudo-random outcomes.
        let mut x = 12345u64;
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 63) & 1 == 1
            })
            .collect();
        let miss = run(&mut t, 0x7000, &outcomes);
        let rate = miss as f64 / outcomes.len() as f64;
        assert!(rate > 0.3 && rate < 0.7, "random branch rate {rate}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut t = Tage::new();
        let m1 = run(&mut t, 0x1000, &vec![true; 1000]);
        let m2 = run(&mut t, 0x2000, &vec![false; 1000]);
        assert!(m1 < 20 && m2 < 20, "{m1} {m2}");
    }

    #[test]
    fn history_advances() {
        let mut t = Tage::new();
        t.predict(0x10);
        t.update(0x10, true);
        t.predict(0x10);
        t.update(0x10, false);
        assert_eq!(t.history() & 0b11, 0b10);
    }

    #[test]
    fn fold_is_bounded() {
        for len in [5u32, 24, 120] {
            let f = Tage::fold(u128::MAX, len, 10);
            assert!(f < 1024);
        }
        assert_eq!(Tage::fold(0, 120, 10), 0);
    }
}
