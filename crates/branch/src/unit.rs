//! The combined branch unit: conditional predictor + indirect target predictor,
//! driven trace-style (outcome known at prediction time).

use concorde_trace::{BranchKind, Instruction};
use serde::{Deserialize, Serialize};

use crate::btb::TargetPredictor;
use crate::simple::SimplePredictor;
use crate::tage::Tage;
use crate::ConditionalPredictor;

/// Which conditional predictor the core uses (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PredictorKind {
    /// Random mispredictor with the given percentage (0..=100).
    Simple {
        /// Misprediction percentage.
        miss_pct: u8,
    },
    /// TAGE predictor.
    #[default]
    Tage,
}

enum CondImpl {
    Simple(SimplePredictor),
    Tage(Box<Tage>),
}

/// Branch unit combining a conditional predictor with an indirect-target table.
pub struct BranchUnit {
    cond: CondImpl,
    targets: TargetPredictor,
    stats: BranchStats,
}

/// Aggregate branch statistics over a simulated trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Total branch instructions observed.
    pub branches: u64,
    /// Conditional branches observed.
    pub conditional: u64,
    /// Indirect branches observed.
    pub indirect: u64,
    /// Total mispredictions (direction or target).
    pub mispredictions: u64,
}

impl BranchStats {
    /// Mispredictions per branch (0 when no branches were seen).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Mispredictions per 1000 instructions, given the region length.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / instructions as f64
        }
    }
}

impl BranchUnit {
    /// Creates a branch unit of the given kind. `seed` only matters for
    /// [`PredictorKind::Simple`].
    pub fn new(kind: PredictorKind, seed: u64) -> Self {
        let cond = match kind {
            PredictorKind::Simple { miss_pct } => {
                CondImpl::Simple(SimplePredictor::new(miss_pct, seed))
            }
            PredictorKind::Tage => CondImpl::Tage(Box::default()),
        };
        BranchUnit {
            cond,
            targets: TargetPredictor::default(),
            stats: BranchStats::default(),
        }
    }

    /// Processes one branch instruction; returns `true` if it was mispredicted
    /// (direction for conditionals, target for indirects; direct unconditional
    /// branches never mispredict).
    ///
    /// Non-branch instructions are ignored and return `false`.
    pub fn observe(&mut self, instr: &Instruction) -> bool {
        let kind = match instr.op {
            concorde_trace::OpClass::Branch(k) => k,
            _ => return false,
        };
        self.stats.branches += 1;
        let mispredicted = match kind {
            BranchKind::DirectUncond => false,
            BranchKind::DirectCond => {
                self.stats.conditional += 1;
                let pred = match &mut self.cond {
                    CondImpl::Simple(s) => {
                        s.set_outcome(instr.taken);
                        s.predict(instr.pc)
                    }
                    CondImpl::Tage(t) => t.predict(instr.pc),
                };
                match &mut self.cond {
                    CondImpl::Simple(s) => s.update(instr.pc, instr.taken),
                    CondImpl::Tage(t) => t.update(instr.pc, instr.taken),
                }
                pred != instr.taken
            }
            BranchKind::Indirect => {
                self.stats.indirect += 1;
                let pred = self.targets.predict(instr.pc);
                self.targets.update(instr.pc, instr.target);
                pred != Some(instr.target)
            }
        };
        if mispredicted {
            self.stats.mispredictions += 1;
        }
        mispredicted
    }

    /// Runs the whole region through the unit, returning per-instruction
    /// mispredict flags (aligned with `instrs`) and summary stats.
    pub fn simulate(
        kind: PredictorKind,
        seed: u64,
        instrs: &[Instruction],
    ) -> (Vec<bool>, BranchStats) {
        let mut unit = BranchUnit::new(kind, seed);
        let flags = instrs.iter().map(|i| unit.observe(i)).collect();
        (flags, unit.stats)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> BranchStats {
        self.stats
    }

    /// Zeroes the statistics (e.g. after predictor warmup) while keeping the
    /// learned predictor state.
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn tage_beats_simple50_on_predictable_code() {
        let spec = by_id("S5").unwrap(); // exchange2: predictable branches
        let t = generate_region(&spec, 0, 0, 30_000);
        let (_, tage) = BranchUnit::simulate(PredictorKind::Tage, 1, &t.instrs);
        let (_, simple) =
            BranchUnit::simulate(PredictorKind::Simple { miss_pct: 50 }, 1, &t.instrs);
        assert!(
            tage.mispredict_rate() < simple.mispredict_rate() / 2.0,
            "tage {} vs simple50 {}",
            tage.mispredict_rate(),
            simple.mispredict_rate()
        );
    }

    #[test]
    fn unpredictable_code_has_higher_tage_rate() {
        let easy = by_id("S5").unwrap();
        let hard = by_id("S4").unwrap(); // leela: unpredictable profile
        let te = generate_region(&easy, 0, 0, 30_000);
        let th = generate_region(&hard, 0, 0, 30_000);
        let (_, e) = BranchUnit::simulate(PredictorKind::Tage, 1, &te.instrs);
        let (_, h) = BranchUnit::simulate(PredictorKind::Tage, 1, &th.instrs);
        assert!(
            h.mispredict_rate() > e.mispredict_rate(),
            "hard {} should exceed easy {}",
            h.mispredict_rate(),
            e.mispredict_rate()
        );
    }

    #[test]
    fn flags_align_with_branches_only() {
        let spec = by_id("O2").unwrap();
        let t = generate_region(&spec, 0, 0, 5_000);
        let (flags, stats) = BranchUnit::simulate(PredictorKind::Tage, 1, &t.instrs);
        assert_eq!(flags.len(), t.instrs.len());
        for (f, i) in flags.iter().zip(&t.instrs) {
            if *f {
                assert!(i.op.is_branch(), "only branches may mispredict");
            }
        }
        assert_eq!(
            flags.iter().filter(|f| **f).count() as u64,
            stats.mispredictions
        );
    }

    #[test]
    fn simple_rate_controls_mispredictions() {
        let spec = by_id("S8").unwrap();
        let t = generate_region(&spec, 0, 0, 30_000);
        let (_, lo) = BranchUnit::simulate(PredictorKind::Simple { miss_pct: 5 }, 9, &t.instrs);
        let (_, hi) = BranchUnit::simulate(PredictorKind::Simple { miss_pct: 60 }, 9, &t.instrs);
        assert!(hi.mispredictions > 3 * lo.mispredictions);
    }

    #[test]
    fn mpki_and_rate_helpers() {
        let s = BranchStats {
            branches: 100,
            conditional: 80,
            indirect: 5,
            mispredictions: 10,
        };
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        assert!((s.mpki(10_000) - 1.0).abs() < 1e-12);
        assert_eq!(BranchStats::default().mispredict_rate(), 0.0);
        assert_eq!(BranchStats::default().mpki(0), 0.0);
    }
}
