//! Cache configuration types and the memory parameters of Table 1.

use serde::{Deserialize, Serialize};

/// Cache hit level for a memory access (paper §3.1 latency mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Hit in the first-level cache.
    L1,
    /// Hit in the unified second-level cache.
    L2,
    /// Hit in the last-level cache (fixed 4 MB).
    Llc,
    /// Main-memory access.
    Ram,
}

/// Access latencies per hit level, in cycles (paper §3.1: "e.g., L1→4,
/// L2→10, LLC→30, RAM→200").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyMap {
    /// L1 hit latency.
    pub l1: u32,
    /// L2 hit latency.
    pub l2: u32,
    /// LLC hit latency.
    pub llc: u32,
    /// Main-memory latency.
    pub ram: u32,
}

impl Default for LatencyMap {
    fn default() -> Self {
        LatencyMap {
            l1: 4,
            l2: 10,
            llc: 30,
            ram: 200,
        }
    }
}

impl LatencyMap {
    /// Latency of an access that hits at `level`.
    #[inline]
    pub fn latency(&self, level: CacheLevel) -> u32 {
        match level {
            CacheLevel::L1 => self.l1,
            CacheLevel::L2 => self.l2,
            CacheLevel::Llc => self.llc,
            CacheLevel::Ram => self.ram,
        }
    }
}

/// Geometry of a single cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (power of two).
    pub assoc: u32,
}

impl CacheConfig {
    /// Creates a config from a size in kilobytes.
    pub fn from_kb(kb: u64, assoc: u32) -> Self {
        CacheConfig {
            size_bytes: kb * 1024,
            assoc,
        }
    }

    /// Number of sets (`size / (line * assoc)`).
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (crate::LINE_BYTES * u64::from(self.assoc))).max(1) as usize
    }
}

/// The four memory parameters of Table 1 that select a cache configuration.
///
/// The paper precomputes Concorde's features per memory configuration: 40
/// D-side configs (5 L1d × 4 L2 × 2 prefetch) and 20 I-side configs
/// (5 L1i × 4 L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemConfig {
    /// L1 instruction cache size in kB (Table 1: 16..256).
    pub l1i_kb: u32,
    /// L1 data cache size in kB (Table 1: 16..256).
    pub l1d_kb: u32,
    /// Unified L2 size in kB (Table 1: 512..4096).
    pub l2_kb: u32,
    /// L1d stride prefetcher degree (Table 1: 0 = OFF, 4 = ON).
    pub prefetch_degree: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        // ARM N1 column of Table 1.
        MemConfig {
            l1i_kb: 64,
            l1d_kb: 64,
            l2_kb: 1024,
            prefetch_degree: 0,
        }
    }
}

/// Table 1 value ranges for the memory parameters.
pub const L1_SIZES_KB: [u32; 5] = [16, 32, 64, 128, 256];
/// Table 1 L2 sizes.
pub const L2_SIZES_KB: [u32; 4] = [512, 1024, 2048, 4096];
/// Table 1 prefetcher degrees.
pub const PREFETCH_DEGREES: [u32; 2] = [0, 4];
/// Fixed LLC size (paper footnote 2: 4 MB).
pub const LLC_KB: u32 = 4096;

impl MemConfig {
    /// All 40 D-side configurations (L1d × L2 × prefetch), with L1i fixed.
    pub fn all_data_configs() -> Vec<MemConfig> {
        let mut v = Vec::with_capacity(40);
        for &l1d in &L1_SIZES_KB {
            for &l2 in &L2_SIZES_KB {
                for &pf in &PREFETCH_DEGREES {
                    v.push(MemConfig {
                        l1i_kb: 64,
                        l1d_kb: l1d,
                        l2_kb: l2,
                        prefetch_degree: pf,
                    });
                }
            }
        }
        v
    }

    /// All 20 I-side configurations (L1i × L2), other fields fixed.
    pub fn all_inst_configs() -> Vec<MemConfig> {
        let mut v = Vec::with_capacity(20);
        for &l1i in &L1_SIZES_KB {
            for &l2 in &L2_SIZES_KB {
                v.push(MemConfig {
                    l1i_kb: l1i,
                    l1d_kb: 64,
                    l2_kb: l2,
                    prefetch_degree: 0,
                });
            }
        }
        v
    }

    /// Key identifying the D-side behaviour of this config.
    pub fn data_key(&self) -> (u32, u32, u32) {
        (self.l1d_kb, self.l2_kb, self.prefetch_degree)
    }

    /// Key identifying the I-side behaviour of this config.
    pub fn inst_key(&self) -> (u32, u32) {
        (self.l1i_kb, self.l2_kb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_map_matches_paper_defaults() {
        let m = LatencyMap::default();
        assert_eq!(m.latency(CacheLevel::L1), 4);
        assert_eq!(m.latency(CacheLevel::L2), 10);
        assert_eq!(m.latency(CacheLevel::Llc), 30);
        assert_eq!(m.latency(CacheLevel::Ram), 200);
    }

    #[test]
    fn set_count() {
        let c = CacheConfig::from_kb(64, 4);
        assert_eq!(c.num_sets(), 64 * 1024 / (64 * 4));
    }

    #[test]
    fn config_enumerations() {
        assert_eq!(MemConfig::all_data_configs().len(), 40);
        assert_eq!(MemConfig::all_inst_configs().len(), 20);
        let keys: std::collections::HashSet<_> = MemConfig::all_data_configs()
            .iter()
            .map(|c| c.data_key())
            .collect();
        assert_eq!(keys.len(), 40, "data keys must be distinct");
    }

    #[test]
    fn level_ordering_reflects_distance() {
        assert!(CacheLevel::L1 < CacheLevel::L2);
        assert!(CacheLevel::L2 < CacheLevel::Llc);
        assert!(CacheLevel::Llc < CacheLevel::Ram);
    }
}
