//! The functional cache hierarchy: private L1i/L1d, unified L2, fixed 4 MB LLC.
//!
//! All caches are write-back / write-allocate (paper footnote 2). The hierarchy
//! classifies each access with the [`CacheLevel`] it hits at and performs the
//! fills and (functional) write-backs a real hierarchy would; the level is all
//! downstream consumers need, since timing maps levels to fixed latencies.

use crate::config::{CacheConfig, CacheLevel, MemConfig, LLC_KB};
use crate::prefetch::StridePrefetcher;
use crate::set::Cache;

/// Functional three-level hierarchy with an L1d stride prefetcher.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    prefetcher: StridePrefetcher,
    stats: HierarchyStats,
}

/// Access counters per level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Data accesses that hit in L1d.
    pub d_l1: u64,
    /// Data accesses that hit in L2.
    pub d_l2: u64,
    /// Data accesses that hit in LLC.
    pub d_llc: u64,
    /// Data accesses that went to memory.
    pub d_ram: u64,
    /// Instruction accesses per level.
    pub i_l1: u64,
    /// Instruction accesses that hit in L2.
    pub i_l2: u64,
    /// Instruction accesses that hit in LLC.
    pub i_llc: u64,
    /// Instruction accesses that went to memory.
    pub i_ram: u64,
    /// Prefetch fills issued into L1d.
    pub prefetches: u64,
}

impl Hierarchy {
    /// Builds a hierarchy for `cfg` (L1s 4-way, L2 8-way, LLC 16-way).
    pub fn new(cfg: MemConfig) -> Self {
        Hierarchy {
            l1i: Cache::new(CacheConfig::from_kb(u64::from(cfg.l1i_kb), 4)),
            l1d: Cache::new(CacheConfig::from_kb(u64::from(cfg.l1d_kb), 4)),
            l2: Cache::new(CacheConfig::from_kb(u64::from(cfg.l2_kb), 8)),
            llc: Cache::new(CacheConfig::from_kb(u64::from(LLC_KB), 16)),
            prefetcher: StridePrefetcher::new(8, cfg.prefetch_degree),
            stats: HierarchyStats::default(),
        }
    }

    fn fill_data_path(&mut self, line: u64) {
        // Fill inward; dirty evictions write back (functionally: install below).
        if let Some((evicted, true)) = self.l1d.fill(line, false) {
            if !self.l2.access(evicted, true) {
                self.l2.fill(evicted, true);
            }
        }
        if !self.l2.probe(line) {
            if let Some((evicted, true)) = self.l2.fill(line, false) {
                if !self.llc.access(evicted, true) {
                    self.llc.fill(evicted, true);
                }
            }
        }
        if !self.llc.probe(line) {
            self.llc.fill(line, false);
        }
    }

    /// Classifies a data access to `addr`; `write` marks the L1d line dirty.
    /// `pc` feeds the stride prefetcher (loads only — pass `None` for stores).
    pub fn access_data(&mut self, addr: u64, write: bool, pc: Option<u64>) -> CacheLevel {
        let line = addr / crate::LINE_BYTES;
        let level = if self.l1d.access(line, write) {
            self.stats.d_l1 += 1;
            CacheLevel::L1
        } else if self.l2.access(line, false) {
            self.stats.d_l2 += 1;
            self.fill_l1d(line, write);
            CacheLevel::L2
        } else if self.llc.access(line, false) {
            self.stats.d_llc += 1;
            self.l2_fill(line);
            self.fill_l1d(line, write);
            CacheLevel::Llc
        } else {
            self.stats.d_ram += 1;
            self.llc.fill(line, false);
            self.l2_fill(line);
            self.fill_l1d(line, write);
            CacheLevel::Ram
        };

        if let Some(pc) = pc {
            let targets = self.prefetcher.observe(pc, addr);
            for t in targets {
                if !self.l1d.probe(t) {
                    self.stats.prefetches += 1;
                    self.fill_data_path(t);
                }
            }
        }
        level
    }

    fn fill_l1d(&mut self, line: u64, write: bool) {
        if let Some((evicted, true)) = self.l1d.fill(line, write) {
            if !self.l2.access(evicted, true) {
                self.l2.fill(evicted, true);
            }
        }
    }

    fn l2_fill(&mut self, line: u64) {
        if let Some((evicted, true)) = self.l2.fill(line, false) {
            if !self.llc.access(evicted, true) {
                self.llc.fill(evicted, true);
            }
        }
    }

    /// Classifies an instruction fetch of the line containing `pc`.
    pub fn access_inst(&mut self, pc: u64) -> CacheLevel {
        let line = pc / crate::LINE_BYTES;
        if self.l1i.access(line, false) {
            self.stats.i_l1 += 1;
            return CacheLevel::L1;
        }
        let level = if self.l2.access(line, false) {
            self.stats.i_l2 += 1;
            CacheLevel::L2
        } else if self.llc.access(line, false) {
            self.stats.i_llc += 1;
            self.l2_fill(line);
            CacheLevel::Llc
        } else {
            self.stats.i_ram += 1;
            self.llc.fill(line, false);
            self.l2_fill(line);
            CacheLevel::Ram
        };
        self.l1i.fill(line, false);
        level
    }

    /// Accumulated per-level counters.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Zeroes the counters (e.g. after a functional warmup phase) without
    /// touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig {
            l1i_kb: 16,
            l1d_kb: 16,
            l2_kb: 512,
            prefetch_degree: 0,
        }
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = Hierarchy::new(cfg());
        assert_eq!(h.access_data(0x10_0000, false, None), CacheLevel::Ram);
        assert_eq!(h.access_data(0x10_0000, false, None), CacheLevel::L1);
        assert_eq!(
            h.access_data(0x10_0010, false, None),
            CacheLevel::L1,
            "same line"
        );
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = Hierarchy::new(cfg());
        // 16 KiB L1d, 4-way, 64 sets. Touch 5 lines mapping to set 0.
        let set_stride = 64u64 * 64; // one full pass of sets
        for i in 0..5u64 {
            h.access_data(i * set_stride, false, None);
        }
        // First line fell out of L1 but sits in L2.
        assert_eq!(h.access_data(0, false, None), CacheLevel::L2);
    }

    #[test]
    fn bigger_l1_hits_more() {
        let small = MemConfig {
            l1d_kb: 16,
            ..cfg()
        };
        let big = MemConfig {
            l1d_kb: 256,
            ..cfg()
        };
        let addrs: Vec<u64> = (0..2000u64).map(|i| (i * 64) % (128 * 1024)).collect();
        let run = |c: MemConfig| {
            let mut h = Hierarchy::new(c);
            for _ in 0..3 {
                for &a in &addrs {
                    h.access_data(a, false, None);
                }
            }
            h.stats().d_l1
        };
        assert!(run(big) > run(small));
    }

    #[test]
    fn inst_and_data_share_l2() {
        let mut h = Hierarchy::new(cfg());
        assert_eq!(h.access_inst(0x40_0000), CacheLevel::Ram);
        assert_eq!(h.access_inst(0x40_0000), CacheLevel::L1);
        // Data access to the same line: L1d misses, L2 hits (unified L2).
        assert_eq!(h.access_data(0x40_0000, false, None), CacheLevel::L2);
    }

    #[test]
    fn prefetcher_converts_stream_misses_into_hits() {
        let on = MemConfig {
            prefetch_degree: 4,
            ..cfg()
        };
        let off = cfg();
        let run = |c: MemConfig| {
            let mut h = Hierarchy::new(c);
            let mut ram = 0;
            for i in 0..4000u64 {
                if h.access_data(0x20_0000 + i * 64, false, Some(0x400)) == CacheLevel::Ram {
                    ram += 1;
                }
            }
            (ram, h.stats().prefetches)
        };
        let (ram_off, pf_off) = run(off);
        let (ram_on, pf_on) = run(on);
        assert_eq!(pf_off, 0);
        assert!(pf_on > 1000, "prefetcher should fire on a pure stream");
        assert!(
            ram_on < ram_off / 2,
            "demand RAM accesses {ram_on} vs {ram_off}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Hierarchy::new(cfg());
        for i in 0..100u64 {
            h.access_data(i * 64, false, None);
            h.access_inst(0x40_0000 + i * 4);
        }
        let s = h.stats();
        assert_eq!(s.d_l1 + s.d_l2 + s.d_llc + s.d_ram, 100);
        assert_eq!(s.i_l1 + s.i_l2 + s.i_llc + s.i_ram, 100);
    }
}
