//! In-order functional cache simulation of a trace region (paper §3.1).
//!
//! Trace analysis runs this once per memory configuration to label every load
//! and store with the level it hits at (→ execution-latency estimate) and every
//! instruction with its I-cache level (→ fetch-latency estimate). This is the
//! "simple in-order cache simulation" the paper describes; timing-dependent
//! effects are deliberately ignored here and recovered by Algorithm 1 and the
//! ML model downstream.

use concorde_trace::Instruction;

use crate::config::{CacheLevel, MemConfig};
use crate::hierarchy::{Hierarchy, HierarchyStats};

/// Result of an in-order cache simulation over a region.
#[derive(Debug, Clone)]
pub struct InOrderResult {
    /// Per-instruction data hit level (`None` for non-memory instructions).
    pub data_levels: Vec<Option<CacheLevel>>,
    /// Per-instruction I-cache hit level for the line holding the instruction.
    pub inst_levels: Vec<CacheLevel>,
    /// Aggregate hierarchy counters.
    pub stats: HierarchyStats,
}

impl InOrderResult {
    /// Fraction of loads serviced by main memory.
    pub fn load_ram_fraction(&self, instrs: &[Instruction]) -> f64 {
        let mut loads = 0u64;
        let mut ram = 0u64;
        for (lvl, i) in self.data_levels.iter().zip(instrs) {
            if i.op.is_load() {
                loads += 1;
                if *lvl == Some(CacheLevel::Ram) {
                    ram += 1;
                }
            }
        }
        if loads == 0 {
            0.0
        } else {
            ram as f64 / loads as f64
        }
    }
}

/// Runs the in-order simulation of `instrs` under memory configuration `cfg`.
pub fn simulate_inorder(instrs: &[Instruction], cfg: MemConfig) -> InOrderResult {
    let mut h = Hierarchy::new(cfg);
    let mut data_levels = Vec::with_capacity(instrs.len());
    let mut inst_levels = Vec::with_capacity(instrs.len());
    for i in instrs {
        inst_levels.push(h.access_inst(i.pc));
        let d = if i.op.is_load() {
            Some(h.access_data(i.mem_addr, false, Some(i.pc)))
        } else if i.op.is_store() {
            Some(h.access_data(i.mem_addr, true, None))
        } else {
            None
        };
        data_levels.push(d);
    }
    InOrderResult {
        data_levels,
        inst_levels,
        stats: h.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn shapes_match_trace() {
        let spec = by_id("O1").unwrap();
        let t = generate_region(&spec, 0, 0, 4000);
        let r = simulate_inorder(&t.instrs, MemConfig::default());
        assert_eq!(r.data_levels.len(), t.len());
        assert_eq!(r.inst_levels.len(), t.len());
        for (lvl, i) in r.data_levels.iter().zip(&t.instrs) {
            assert_eq!(lvl.is_some(), i.op.is_mem());
        }
    }

    #[test]
    fn resident_workload_mostly_hits_l1() {
        let spec = by_id("O1").unwrap(); // Dhrystone: 32 KiB working set
        let t = generate_region(&spec, 0, 0, 20_000);
        let r = simulate_inorder(&t.instrs, MemConfig::default());
        let s = r.stats;
        let total = s.d_l1 + s.d_l2 + s.d_llc + s.d_ram;
        assert!(
            s.d_l1 as f64 / total as f64 > 0.8,
            "L1 hit rate too low: {s:?}"
        );
    }

    #[test]
    fn chasing_workload_misses_much_more_than_resident() {
        let chase = by_id("S1").unwrap();
        let resident = by_id("O1").unwrap();
        let n = 20_000;
        let rc = simulate_inorder(
            &generate_region(&chase, 0, 0, n).instrs,
            MemConfig::default(),
        );
        let rr = simulate_inorder(
            &generate_region(&resident, 0, 0, n).instrs,
            MemConfig::default(),
        );
        let ram_frac = |s: HierarchyStats| {
            s.d_ram as f64 / (s.d_l1 + s.d_l2 + s.d_llc + s.d_ram).max(1) as f64
        };
        assert!(
            ram_frac(rc.stats) > 5.0 * ram_frac(rr.stats).max(1e-9),
            "chase {:?} vs resident {:?}",
            rc.stats,
            rr.stats
        );
    }

    #[test]
    fn bigger_l1d_reduces_misses_monotonically() {
        let spec = by_id("S6").unwrap(); // 2 MB working set: L1-size sensitive
        let t = generate_region(&spec, 0, 0, 30_000);
        let mut prev_hits = 0;
        for kb in [16u32, 64, 256] {
            let cfg = MemConfig {
                l1d_kb: kb,
                ..MemConfig::default()
            };
            let r = simulate_inorder(&t.instrs, cfg);
            assert!(r.stats.d_l1 >= prev_hits, "L1 {kb}kB: hits decreased");
            prev_hits = r.stats.d_l1;
        }
    }

    #[test]
    fn large_code_stresses_icache() {
        let big = by_id("S10").unwrap(); // gcc: large footprint
        let small = by_id("O1").unwrap();
        let n = 20_000;
        let rb = simulate_inorder(&generate_region(&big, 0, 0, n).instrs, MemConfig::default());
        let rs = simulate_inorder(
            &generate_region(&small, 0, 0, n).instrs,
            MemConfig::default(),
        );
        let imiss = |s: HierarchyStats| s.i_l2 + s.i_llc + s.i_ram;
        assert!(
            imiss(rb.stats) > 5 * imiss(rs.stats).max(1),
            "big {:?} vs small {:?}",
            rb.stats,
            rs.stats
        );
    }
}
