//! # concorde-cache
//!
//! Cache-hierarchy substrate for the Concorde reproduction: set-associative
//! write-back caches with tree-PLRU replacement (matching the paper's
//! gem5-`TreePLRURP`-like policy), a PC-indexed stride prefetcher, the
//! three-level [`Hierarchy`] (L1i/L1d + unified L2 + fixed 4 MB LLC), and the
//! [in-order functional simulation](inorder::simulate_inorder) trace analysis
//! uses to estimate load and fetch latencies (paper §3.1).
//!
//! ```
//! use concorde_cache::{simulate_inorder, MemConfig};
//! use concorde_trace::{by_id, generate_region};
//!
//! let spec = by_id("S1").unwrap();
//! let region = generate_region(&spec, 0, 0, 5_000);
//! let result = simulate_inorder(&region.instrs, MemConfig::default());
//! assert_eq!(result.data_levels.len(), region.len());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod hierarchy;
pub mod inorder;
pub mod prefetch;
pub mod set;

pub use config::{
    CacheConfig, CacheLevel, LatencyMap, MemConfig, L1_SIZES_KB, L2_SIZES_KB, LLC_KB,
    PREFETCH_DEGREES,
};
pub use hierarchy::{Hierarchy, HierarchyStats};
pub use inorder::{simulate_inorder, InOrderResult};
pub use prefetch::StridePrefetcher;
pub use set::Cache;

/// Cache line size in bytes (shared with `concorde-trace`).
pub const LINE_BYTES: u64 = concorde_trace::LINE_BYTES;
