//! PC-indexed stride prefetcher for the L1 data cache (Table 1: degree 0/4).

use crate::LINE_BYTES;

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Classic reference-prediction-table stride prefetcher.
///
/// On each load, the entry for the load's PC compares the new stride against
/// the recorded one; after two confirmations it emits `degree` prefetch
/// addresses ahead of the access stream.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: Vec<StrideEntry>,
    degree: u32,
}

impl StridePrefetcher {
    /// Creates a prefetcher with `2^bits` table entries and the given degree.
    /// Degree 0 disables prefetching entirely.
    pub fn new(bits: usize, degree: u32) -> Self {
        StridePrefetcher {
            table: vec![StrideEntry::default(); 1 << bits],
            degree,
        }
    }

    /// Prefetch degree (0 = off).
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Observes a load at `pc` touching `addr`; returns the line indices to
    /// prefetch (empty when off or unconfirmed).
    pub fn observe(&mut self, pc: u64, addr: u64) -> Vec<u64> {
        if self.degree == 0 {
            return Vec::new();
        }
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let e = &mut self.table[idx];
        let mut out = Vec::new();
        if e.pc == pc {
            let stride = addr as i64 - e.last_addr as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.confidence = e.confidence.saturating_sub(1);
                if e.confidence == 0 {
                    e.stride = stride;
                }
            }
            e.last_addr = addr;
            if e.confidence >= 2 && e.stride != 0 {
                for k in 1..=i64::from(self.degree) {
                    let target = addr as i64 + e.stride * k;
                    if target >= 0 {
                        out.push(target as u64 / LINE_BYTES);
                    }
                }
            }
        } else {
            *e = StrideEntry {
                pc,
                last_addr: addr,
                stride: 0,
                confidence: 0,
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_emits_nothing() {
        let mut p = StridePrefetcher::new(6, 0);
        for i in 0..10u64 {
            assert!(p.observe(0x100, i * 64).is_empty());
        }
    }

    #[test]
    fn constant_stride_confirms_and_prefetches_degree_lines() {
        let mut p = StridePrefetcher::new(6, 4);
        let mut emitted = Vec::new();
        for i in 0..8u64 {
            emitted = p.observe(0x100, 0x1000 + i * 128);
        }
        assert_eq!(emitted.len(), 4);
        // Last access at 0x1000 + 7*128; next prefetches 128B apart.
        let base = 0x1000u64 + 7 * 128;
        for (k, line) in emitted.iter().enumerate() {
            assert_eq!(*line, (base + 128 * (k as u64 + 1)) / 64);
        }
    }

    #[test]
    fn random_strides_never_confirm() {
        let mut p = StridePrefetcher::new(6, 4);
        let addrs = [0x0u64, 0x4040, 0x80, 0x9000, 0x140, 0x2340];
        let mut total = 0;
        for &a in &addrs {
            total += p.observe(0x200, a).len();
        }
        assert_eq!(total, 0);
    }

    #[test]
    fn pc_collision_resets_entry() {
        let mut p = StridePrefetcher::new(2, 2); // tiny table to force aliasing
        for i in 0..6u64 {
            p.observe(0x100, 0x1000 + i * 64);
        }
        // Different pc, same slot: resets; no prefetch on first touches.
        let out = p.observe(0x100 + (4 << 2), 0x9000);
        assert!(out.is_empty());
    }
}
