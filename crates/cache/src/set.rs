//! A single set-associative cache with tree-PLRU replacement.
//!
//! The replacement policy mirrors gem5's `TreePLRURP` (paper footnote 2):
//! each set keeps a binary tree of direction bits over its ways; an access
//! flips the bits on its root-to-leaf path to point *away* from the touched
//! way, and the victim is found by following the bits from the root.

use crate::config::CacheConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    tag: u64,
    dirty: bool,
}

/// One cache set: `assoc` ways plus `assoc - 1` PLRU tree bits.
#[derive(Debug, Clone)]
struct CacheSet {
    ways: Vec<Way>,
    /// Tree bits packed LSB-first in heap order (node 0 = root).
    tree: u32,
}

impl CacheSet {
    fn new(assoc: usize) -> Self {
        CacheSet {
            ways: vec![Way::default(); assoc],
            tree: 0,
        }
    }

    /// Marks `way` most-recently used by setting path bits away from it.
    fn touch(&mut self, way: usize) {
        let assoc = self.ways.len();
        let mut node = 0usize; // heap index
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                // Went left: point the bit right (1 = right is LRU side).
                self.tree |= 1 << node;
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.tree &= !(1 << node);
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    /// Victim way per the PLRU tree (prefers invalid ways first).
    fn victim(&self) -> usize {
        if let Some(i) = self.ways.iter().position(|w| !w.valid) {
            return i;
        }
        let assoc = self.ways.len();
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.tree & (1 << node) != 0 {
                // Bit points right: LRU is on the right subtree.
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    fn lookup(&mut self, tag: u64, write: bool) -> bool {
        if let Some(i) = self.ways.iter().position(|w| w.valid && w.tag == tag) {
            if write {
                self.ways[i].dirty = true;
            }
            self.touch(i);
            true
        } else {
            false
        }
    }

    /// Installs `tag`; returns the evicted `(tag, dirty)` if a valid line fell out.
    fn fill(&mut self, tag: u64, dirty: bool) -> Option<(u64, bool)> {
        let v = self.victim();
        let old = self.ways[v];
        self.ways[v] = Way {
            valid: true,
            tag,
            dirty,
        };
        self.touch(v);
        old.valid.then_some((old.tag, old.dirty))
    }
}

/// A set-associative, write-back cache over 64-byte lines.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<CacheSet>,
    set_mask: u64,
}

impl Cache {
    /// Builds a cache from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two.
    pub fn new(config: CacheConfig) -> Self {
        let n = config.num_sets();
        assert!(n.is_power_of_two(), "set count {n} must be a power of two");
        Cache {
            sets: (0..n)
                .map(|_| CacheSet::new(config.assoc as usize))
                .collect(),
            set_mask: n as u64 - 1,
        }
    }

    #[inline]
    fn split(&self, line: u64) -> (usize, u64) {
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Looks up `line` (a 64-byte-line index); returns `true` on hit and
    /// updates recency / dirty state.
    pub fn access(&mut self, line: u64, write: bool) -> bool {
        let (set, tag) = self.split(line);
        self.sets[set].lookup(tag, write)
    }

    /// Checks for presence without updating replacement state.
    pub fn probe(&self, line: u64) -> bool {
        let (set, tag) = self.split(line);
        self.sets[set].ways.iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`; returns the evicted line index and dirty flag, if any.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let (set, tag) = self.split(line);
        let bits = self.set_mask.count_ones();
        self.sets[set]
            .fill(tag, dirty)
            .map(|(etag, ed)| ((etag << bits) | set as u64, ed))
    }

    /// Number of sets (diagnostics).
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 4 sets x 4 ways x 64B = 1 KiB
        Cache::new(CacheConfig {
            size_bytes: 1024,
            assoc: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(5, false));
        c.fill(5, false);
        assert!(c.access(5, false));
        assert!(c.probe(5));
        assert!(!c.probe(6));
    }

    #[test]
    fn eviction_returns_old_line() {
        let mut c = tiny();
        // Fill one set (lines congruent mod 4) beyond capacity.
        let lines: Vec<u64> = (0..5).map(|i| i * 4).collect();
        let mut evicted = None;
        for &l in &lines {
            if let Some(e) = c.fill(l, false) {
                evicted = Some(e);
            }
        }
        let (eline, dirty) = evicted.expect("fifth fill must evict");
        assert!(!dirty);
        assert!(lines.contains(&eline));
        assert!(!c.probe(eline), "evicted line no longer present");
    }

    #[test]
    fn plru_protects_recently_used() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.fill(i * 4, false);
        }
        // Touch line 0 repeatedly: it must survive the next eviction.
        c.access(0, false);
        let (evicted, _) = c.fill(16, false).unwrap();
        assert_ne!(evicted, 0, "MRU line must not be the PLRU victim");
        assert!(c.probe(0));
    }

    #[test]
    fn dirty_propagates_through_eviction() {
        let mut c = tiny();
        c.fill(4, false);
        c.access(4, true); // make dirty
        for i in 1..5u64 {
            c.fill(4 + i * 4, false);
        }
        // line 4 must have been evicted dirty at some point; refill and check state
        assert!(!c.probe(4));
    }

    #[test]
    fn tags_disambiguate_same_set() {
        let mut c = tiny();
        c.fill(0, false);
        assert!(!c.access(4, false), "same set, different tag");
        assert!(c.access(0, false));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 3 * 64 * 2,
            assoc: 2,
        });
    }
}
