//! Quantized, possibly memory-mapped storage arenas for [`FeatureStore`].
//!
//! The §5.2.3 cost breakdown says the precomputed feature footprint — not the
//! MLP — dominates serving memory, so the store's flat arenas are pluggable:
//!
//! - [`ArenaEncoding::F32`] keeps every value bitwise as computed (encoded
//!   distributions in `f32`, raw window series in `f64`) — the lossless
//!   default, byte-identical to the pre-quantization format.
//! - [`ArenaEncoding::F16`] stores encoded values as IEEE 754 half floats and
//!   raw series as `f32` — a 2× footprint cut with ~2⁻¹¹ relative error.
//! - [`ArenaEncoding::Int8`] stores each *block* (one encoded distribution or
//!   one raw window series) as affine-quantized bytes with a per-block
//!   `(scale, offset)` pair — a ~4× cut with ≤ half-step-per-block error.
//!
//! Arenas read through [`EncArena::write_entry`] / [`RawArena::series`],
//! dequantizing on assembly with **no heap allocation** on the encoded path.
//! Payloads live in a [`Buf`]: either owned 8-byte-aligned memory or a view
//! into a shared [`MappedStore`] region, which is how `StoreArtifact::map`
//! loads artifacts zero-copy — the arenas point straight into the mapping,
//! and dropping the last store evicted from the serving cache unmaps it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// How a store's arenas are encoded in memory and on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArenaEncoding {
    /// Lossless: `f32` encoded values, `f64` raw series (the default).
    F32,
    /// IEEE 754 half-precision encoded values, `f32` raw series.
    F16,
    /// Per-block affine `u8` quantization for both encoded and raw arenas.
    Int8,
}

impl ArenaEncoding {
    /// All encodings, in increasing compression order.
    pub const ALL: [ArenaEncoding; 3] =
        [ArenaEncoding::F32, ArenaEncoding::F16, ArenaEncoding::Int8];

    /// Stable on-disk tag.
    pub fn tag(self) -> u64 {
        match self {
            ArenaEncoding::F32 => 0,
            ArenaEncoding::F16 => 1,
            ArenaEncoding::Int8 => 2,
        }
    }

    /// Inverse of [`ArenaEncoding::tag`].
    pub fn from_tag(tag: u64) -> Option<ArenaEncoding> {
        match tag {
            0 => Some(ArenaEncoding::F32),
            1 => Some(ArenaEncoding::F16),
            2 => Some(ArenaEncoding::Int8),
            _ => None,
        }
    }

    /// CLI / report name (`"f32"`, `"f16"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            ArenaEncoding::F32 => "f32",
            ArenaEncoding::F16 => "f16",
            ArenaEncoding::Int8 => "int8",
        }
    }

    /// Parses a CLI / config name.
    pub fn parse(s: &str) -> Option<ArenaEncoding> {
        match s {
            "f32" => Some(ArenaEncoding::F32),
            "f16" => Some(ArenaEncoding::F16),
            "int8" => Some(ArenaEncoding::Int8),
            _ => None,
        }
    }

    /// Bytes per element in an *encoded* (`f32`-reference) arena.
    fn enc_elem_bytes(self) -> usize {
        match self {
            ArenaEncoding::F32 => 4,
            ArenaEncoding::F16 => 2,
            ArenaEncoding::Int8 => 1,
        }
    }

    /// Bytes per element in a *raw* (`f64`-reference) arena.
    fn raw_elem_bytes(self) -> usize {
        match self {
            ArenaEncoding::F32 => 8,
            ArenaEncoding::F16 => 4,
            ArenaEncoding::Int8 => 1,
        }
    }

    /// Bytes of per-entry dequantization parameters (`[scale, offset]` as
    /// `f32` for [`ArenaEncoding::Int8`]; none otherwise).
    fn params_entry_bytes(self) -> usize {
        match self {
            ArenaEncoding::Int8 => 8,
            _ => 0,
        }
    }
}

impl std::fmt::Display for ArenaEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// IEEE 754 binary16 conversion (no external `half` dependency).
// ---------------------------------------------------------------------------

/// Converts `x` to half-precision bits, round-to-nearest-even. Values beyond
/// the f16 range **saturate to ±65504** instead of overflowing to infinity —
/// a quantized feature must stay finite for the MLP.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // NaN stays NaN (quiet, payload truncated); infinity saturates.
        if man != 0 {
            return sign | 0x7e00;
        }
        return sign | 0x7bff;
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7bff; // saturate to max finite
    }
    if unbiased < -14 {
        // Subnormal half (or zero): value = (man|implicit) × 2^(unbiased-23).
        if unbiased < -25 {
            return sign; // underflows to zero even after rounding
        }
        let full = man | 0x0080_0000;
        let shift = (-14 - unbiased + 13) as u32; // 14..=24
        let q = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let rounded = if rem > half || (rem == half && (q & 1) == 1) {
            q + 1
        } else {
            q
        };
        return sign | rounded as u16; // may carry into the smallest normal
    }
    let mut q = (((unbiased + 15) as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    if rem > 0x1000 || (rem == 0x1000 && (q & 1) == 1) {
        q += 1; // mantissa carry propagates into the exponent correctly
    }
    if (q & 0x7fff) >= 0x7c00 {
        return sign | 0x7bff; // rounded up past the largest finite half
    }
    sign | q as u16
}

/// Converts half-precision bits back to `f32` (exact: every finite half is
/// representable).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = u32::from(h & 0x03ff);
    let bits = match exp {
        0 => {
            if man == 0 {
                sign
            } else {
                // Subnormal: normalize into an f32 exponent.
                let mut m = man;
                let mut e = -14i32;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | (((e + 127) as u32) << 23) | ((m & 0x03ff) << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (man << 13), // inf / NaN
        _ => sign | ((u32::from(exp) + 127 - 15) << 23) | (man << 13),
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------------
// Backing memory: owned aligned bytes or a shared mapped region.
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod mmap_sys {
    //! Minimal `mmap(2)`/`mincore(2)` FFI against the libc the Rust runtime
    //! already links — no external crate. Read-only private mappings.
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// `_SC_PAGESIZE` (Linux value; Darwin uses 29).
    #[cfg(not(target_os = "macos"))]
    pub const SC_PAGESIZE: i32 = 30;
    #[cfg(target_os = "macos")]
    pub const SC_PAGESIZE: i32 = 29;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        pub fn mincore(addr: *mut core::ffi::c_void, len: usize, vec: *mut u8) -> i32;
        pub fn sysconf(name: i32) -> i64;
    }

    /// The system page size (4096 if `sysconf` declines to answer).
    pub fn page_size() -> usize {
        // SAFETY: sysconf is async-signal-safe and takes no pointers.
        let p = unsafe { sysconf(SC_PAGESIZE) };
        if p > 0 {
            p as usize
        } else {
            4096
        }
    }
}

static LIVE_MMAPS: AtomicUsize = AtomicUsize::new(0);

enum Backing {
    /// 8-byte-aligned owned memory (`Vec<u64>` words reinterpreted as bytes).
    Owned(#[allow(dead_code)] Vec<u64>),
    /// A live `mmap(2)` of an artifact file.
    #[cfg(unix)]
    Mmap,
}

/// A shared, immutable byte region backing one loaded store: either an
/// `mmap`'d artifact file (zero-copy, page-fault-driven residency) or an
/// owned aligned buffer (the portability / test fallback). Arena [`Buf`]
/// views hold an `Arc` to the region, so the mapping lives exactly as long
/// as some store (or cache entry) still references it and is released by
/// `munmap` when the last reference drops — eviction unmaps.
pub struct MappedStore {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the region is immutable after construction (PROT_READ mapping or a
// never-mutated owned buffer), so shared references across threads are safe.
unsafe impl Send for MappedStore {}
unsafe impl Sync for MappedStore {}

impl MappedStore {
    /// Copies `bytes` (once) into an owned 8-byte-aligned region.
    pub fn from_bytes(bytes: &[u8]) -> Arc<MappedStore> {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // Vec<u64> storage is 8-aligned; fill it byte-wise.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        let ptr = words.as_ptr().cast::<u8>();
        Arc::new(MappedStore {
            ptr,
            len: bytes.len(),
            backing: Backing::Owned(words),
        })
    }

    /// Maps `path` read-only. On unix this is a true `mmap` (no arena bytes
    /// are copied through the heap); elsewhere it falls back to reading the
    /// file into an owned aligned region.
    pub fn open(path: &std::path::Path) -> std::io::Result<Arc<MappedStore>> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len == 0 {
                return Ok(Self::from_bytes(&[]));
            }
            let ptr = unsafe {
                mmap_sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    mmap_sys::PROT_READ,
                    mmap_sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(std::io::Error::last_os_error());
            }
            LIVE_MMAPS.fetch_add(1, Ordering::SeqCst);
            Ok(Arc::new(MappedStore {
                ptr: ptr.cast::<u8>().cast_const(),
                len,
                backing: Backing::Mmap,
            }))
        }
        #[cfg(not(unix))]
        {
            Ok(Self::from_bytes(&std::fs::read(path)?))
        }
    }

    /// The whole region.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe either the live mapping or the owned
        // buffer, both valid for the region's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Whether this region is a live `mmap` (false for the owned fallback).
    pub fn is_mmap(&self) -> bool {
        match self.backing {
            Backing::Owned(_) => false,
            #[cfg(unix)]
            Backing::Mmap => true,
        }
    }

    /// Number of live `mmap`-backed regions in the process — lets tests (and
    /// operators) assert that evicting mapped stores actually releases their
    /// mappings.
    pub fn live_mmap_count() -> usize {
        LIVE_MMAPS.load(Ordering::SeqCst)
    }

    /// Estimated bytes of this region actually resident in memory.
    ///
    /// Owned regions are fully resident by construction. For live mappings
    /// this asks `mincore(2)` which pages are in core and charges whole
    /// pages, so a freshly mapped artifact whose arenas have never been
    /// touched (or whose file pages were dropped from the page cache) costs
    /// far less than its virtual payload. Falls back to the full length if
    /// the probe fails — over-charging is the safe direction for a cache
    /// admission estimate.
    pub fn resident_bytes(&self) -> usize {
        match self.backing {
            Backing::Owned(_) => self.len,
            #[cfg(unix)]
            Backing::Mmap => {
                if self.len == 0 {
                    return 0;
                }
                let page = mmap_sys::page_size();
                let mut vec = vec![0u8; self.len.div_ceil(page)];
                // SAFETY: ptr/len describe the live page-aligned mapping and
                // vec holds one byte per page of it.
                let rc = unsafe {
                    mmap_sys::mincore(self.ptr.cast_mut().cast(), self.len, vec.as_mut_ptr())
                };
                if rc != 0 {
                    return self.len;
                }
                let resident = vec.iter().filter(|&&b| b & 1 != 0).count();
                (resident * page).min(self.len)
            }
        }
    }
}

impl Drop for MappedStore {
    fn drop(&mut self) {
        #[cfg(unix)]
        if matches!(self.backing, Backing::Mmap) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once, here.
            unsafe {
                mmap_sys::munmap(self.ptr.cast_mut().cast(), self.len);
            }
            LIVE_MMAPS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for MappedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedStore")
            .field("len", &self.len)
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// Payload storage for one arena: owned aligned bytes or a view into a
/// shared [`MappedStore`].
#[derive(Clone)]
pub(crate) enum Buf {
    Owned(Arc<MappedStore>),
    View {
        region: Arc<MappedStore>,
        off: usize,
        len: usize,
    },
}

impl Buf {
    /// Copies `bytes` once into an owned aligned region.
    pub(crate) fn from_slice(bytes: &[u8]) -> Buf {
        Buf::Owned(MappedStore::from_bytes(bytes))
    }

    pub(crate) fn view(region: &Arc<MappedStore>, off: usize, len: usize) -> Buf {
        Buf::View {
            region: Arc::clone(region),
            off,
            len,
        }
    }

    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            Buf::Owned(region) => region.bytes(),
            Buf::View { region, off, len } => &region.bytes()[*off..off + len],
        }
    }

    /// Whether the payload lives in a live `mmap`.
    pub(crate) fn is_mapped(&self) -> bool {
        match self {
            Buf::Owned(region) => region.is_mmap(),
            Buf::View { region, .. } => region.is_mmap(),
        }
    }

    /// The backing region (the whole artifact for mapped views).
    pub(crate) fn region(&self) -> &Arc<MappedStore> {
        match self {
            Buf::Owned(region) => region,
            Buf::View { region, .. } => region,
        }
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buf[{} bytes]", self.bytes().len())
    }
}

#[inline]
fn f32_at(bytes: &[u8], i: usize) -> f32 {
    f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("4-byte chunk"))
}

#[inline]
fn f64_at(bytes: &[u8], i: usize) -> f64 {
    f64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8-byte chunk"))
}

/// Per-entry affine parameters for [`ArenaEncoding::Int8`].
#[inline]
fn int8_params(params: &[u8], entry: usize) -> (f32, f32) {
    (f32_at(params, entry * 2), f32_at(params, entry * 2 + 1))
}

/// Quantizes one block to affine `u8`: `x ≈ offset + scale × q`.
fn quantize_block_u8(block: &[f64], data: &mut Vec<u8>, params: &mut Vec<u8>) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in block {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        (lo, hi) = (0.0, 0.0);
    }
    let scale = ((hi - lo) / 255.0) as f32;
    let offset = lo as f32;
    params.extend_from_slice(&scale.to_le_bytes());
    params.extend_from_slice(&offset.to_le_bytes());
    for &x in block {
        let q = if scale > 0.0 {
            (((x - lo) / f64::from(scale)).round()).clamp(0.0, 255.0) as u8
        } else {
            0
        };
        data.push(q);
    }
}

// ---------------------------------------------------------------------------
// Encoded arenas (f32 reference semantics).
// ---------------------------------------------------------------------------

/// One encoded-feature arena: `entries` blocks of `stride` `f32`-valued
/// elements, stored under an [`ArenaEncoding`]. Blocks are the quantization
/// granularity: each Int8 block carries its own `(scale, offset)`.
#[derive(Debug, Clone)]
pub struct EncArena {
    enc: ArenaEncoding,
    stride: usize,
    entries: usize,
    data: Buf,
    params: Buf,
}

impl EncArena {
    /// Builds an arena from reference `f32` values (`values.len()` must be a
    /// multiple of `stride`). [`ArenaEncoding::F32`] preserves every bit.
    pub fn from_f32(values: &[f32], stride: usize, enc: ArenaEncoding) -> EncArena {
        assert!(stride > 0, "arena stride must be positive");
        assert!(
            values.len().is_multiple_of(stride),
            "arena length {} is not a multiple of its stride {stride}",
            values.len()
        );
        let entries = values.len() / stride;
        let mut data = Vec::with_capacity(values.len() * enc.enc_elem_bytes());
        let mut params = Vec::with_capacity(entries * enc.params_entry_bytes());
        match enc {
            ArenaEncoding::F32 => {
                for &x in values {
                    data.extend_from_slice(&x.to_le_bytes());
                }
            }
            ArenaEncoding::F16 => {
                for &x in values {
                    data.extend_from_slice(&f32_to_f16_bits(x).to_le_bytes());
                }
            }
            ArenaEncoding::Int8 => {
                let mut block = vec![0f64; stride];
                for chunk in values.chunks_exact(stride) {
                    for (b, &x) in block.iter_mut().zip(chunk) {
                        *b = f64::from(x);
                    }
                    quantize_block_u8(&block, &mut data, &mut params);
                }
            }
        }
        EncArena {
            enc,
            stride,
            entries,
            data: Buf::from_slice(&data),
            params: Buf::from_slice(&params),
        }
    }

    pub(crate) fn from_views(
        enc: ArenaEncoding,
        stride: usize,
        entries: usize,
        data: Buf,
        params: Buf,
    ) -> std::io::Result<EncArena> {
        let want_data = entries
            .checked_mul(stride)
            .and_then(|n| n.checked_mul(enc.enc_elem_bytes()));
        let want_params = entries.checked_mul(enc.params_entry_bytes());
        if stride == 0
            || want_data != Some(data.bytes().len())
            || want_params != Some(params.bytes().len())
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "arena payload length is inconsistent with its header",
            ));
        }
        Ok(EncArena {
            enc,
            stride,
            entries,
            data,
            params,
        })
    }

    /// Elements per block.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of blocks.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The arena's encoding.
    pub fn encoding(&self) -> ArenaEncoding {
        self.enc
    }

    /// Dequantizes block `idx` into `out` (`out.len() == stride`) with no
    /// heap allocation — the feature-assembly hot path.
    #[inline]
    pub fn write_entry(&self, idx: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.stride, "entry buffer must match the stride");
        assert!(idx < self.entries, "arena entry out of range");
        let data = self.data.bytes();
        match self.enc {
            ArenaEncoding::F32 => {
                let bytes = &data[idx * self.stride * 4..(idx + 1) * self.stride * 4];
                #[cfg(target_endian = "little")]
                if (bytes.as_ptr() as usize).is_multiple_of(4) {
                    // SAFETY: length is stride × 4, the pointer is 4-aligned
                    // (payloads are 8-aligned in both the owned region and
                    // the padded artifact layout; the entry offset is a
                    // multiple of 4), every bit pattern is a valid f32, and
                    // the store is little-endian like the target — so the
                    // default-encoding hot path stays one memcpy per block.
                    let s = unsafe {
                        std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), self.stride)
                    };
                    out.copy_from_slice(s);
                    return;
                }
                for (j, o) in out.iter_mut().enumerate() {
                    *o = f32_at(bytes, j);
                }
            }
            ArenaEncoding::F16 => {
                let base = idx * self.stride * 2;
                for (j, o) in out.iter_mut().enumerate() {
                    let at = base + j * 2;
                    *o = f16_bits_to_f32(u16::from_le_bytes(
                        data[at..at + 2].try_into().expect("2-byte chunk"),
                    ));
                }
            }
            ArenaEncoding::Int8 => {
                let (scale, offset) = int8_params(self.params.bytes(), idx);
                let base = idx * self.stride;
                for (j, o) in out.iter_mut().enumerate() {
                    *o = offset + scale * f32::from(data[base + j]);
                }
            }
        }
    }

    /// Appends block `idx` to a [`QuantFeatureBuf`] in **encoded** form —
    /// the fused dequantize-assembly path. Int8 blocks land as their raw
    /// payload bytes plus the block's `(scale, offset)` affine, deferring
    /// dequantization to the consumer's first-layer GEMV; `f32`/`f16`
    /// blocks land as (exact) `f32` values. Zero heap allocations once the
    /// buffer's pools are warm.
    pub fn push_entry_quant(&self, idx: usize, buf: &mut concorde_ml::QuantFeatureBuf) {
        assert!(idx < self.entries, "arena entry out of range");
        match self.enc {
            ArenaEncoding::F32 | ArenaEncoding::F16 => {
                buf.push_f32_with(self.stride, |out| self.write_entry(idx, out));
            }
            ArenaEncoding::Int8 => {
                let (scale, offset) = int8_params(self.params.bytes(), idx);
                let base = idx * self.stride;
                buf.push_u8_block(&self.data.bytes()[base..base + self.stride], scale, offset);
            }
        }
    }

    /// Dequantizes the whole arena (reference values for re-encoding and
    /// error measurement).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        let mut out = vec![0f32; self.entries * self.stride];
        for idx in 0..self.entries {
            self.write_entry(idx, &mut out[idx * self.stride..(idx + 1) * self.stride]);
        }
        out
    }

    /// Quantized in-memory footprint: payload plus dequantization params.
    pub fn payload_bytes(&self) -> usize {
        self.data.bytes().len() + self.params.bytes().len()
    }

    /// What the same arena would occupy losslessly (`f32`).
    pub fn f32_bytes(&self) -> usize {
        self.entries * self.stride * 4
    }

    pub(crate) fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    pub(crate) fn raw_parts(&self) -> (&Buf, &Buf) {
        (&self.data, &self.params)
    }
}

// ---------------------------------------------------------------------------
// Raw window-series arenas (f64 reference semantics).
// ---------------------------------------------------------------------------

/// One raw-series arena: `entries` per-window series of `stride` `f64`
/// values. [`ArenaEncoding::F32`] keeps them as bit-exact `f64`; `F16`
/// stores `f32`; `Int8` stores per-series affine bytes.
#[derive(Debug, Clone)]
pub struct RawArena {
    enc: ArenaEncoding,
    stride: usize,
    entries: usize,
    data: Buf,
    params: Buf,
}

impl RawArena {
    /// Builds an arena from reference `f64` series.
    pub fn from_f64(values: &[f64], stride: usize, enc: ArenaEncoding) -> RawArena {
        assert!(stride > 0, "arena stride must be positive");
        assert!(
            values.len().is_multiple_of(stride),
            "arena length {} is not a multiple of its stride {stride}",
            values.len()
        );
        let entries = values.len() / stride;
        let mut data = Vec::with_capacity(values.len() * enc.raw_elem_bytes());
        let mut params = Vec::with_capacity(entries * enc.params_entry_bytes());
        match enc {
            ArenaEncoding::F32 => {
                for &x in values {
                    data.extend_from_slice(&x.to_le_bytes());
                }
            }
            ArenaEncoding::F16 => {
                for &x in values {
                    data.extend_from_slice(&(x as f32).to_le_bytes());
                }
            }
            ArenaEncoding::Int8 => {
                for chunk in values.chunks_exact(stride) {
                    quantize_block_u8(chunk, &mut data, &mut params);
                }
            }
        }
        RawArena {
            enc,
            stride,
            entries,
            data: Buf::from_slice(&data),
            params: Buf::from_slice(&params),
        }
    }

    pub(crate) fn from_views(
        enc: ArenaEncoding,
        stride: usize,
        entries: usize,
        data: Buf,
        params: Buf,
    ) -> std::io::Result<RawArena> {
        let want_data = entries
            .checked_mul(stride)
            .and_then(|n| n.checked_mul(enc.raw_elem_bytes()));
        let want_params = entries.checked_mul(enc.params_entry_bytes());
        if stride == 0
            || want_data != Some(data.bytes().len())
            || want_params != Some(params.bytes().len())
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "raw arena payload length is inconsistent with its header",
            ));
        }
        Ok(RawArena {
            enc,
            stride,
            entries,
            data,
            params,
        })
    }

    /// Elements per series.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of series.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Series `idx` as `f64` values. Lossless (`F32`) arenas on little-endian
    /// targets borrow straight from the payload (zero-copy even when mapped);
    /// quantized arenas decode into an owned buffer.
    pub fn series(&self, idx: usize) -> std::borrow::Cow<'_, [f64]> {
        assert!(idx < self.entries, "raw series out of range");
        let data = self.data.bytes();
        match self.enc {
            ArenaEncoding::F32 => {
                let bytes = &data[idx * self.stride * 8..(idx + 1) * self.stride * 8];
                #[cfg(target_endian = "little")]
                {
                    let aligned = (bytes.as_ptr() as usize).is_multiple_of(8);
                    debug_assert!(aligned, "arena payload aligned");
                    if aligned {
                        // SAFETY: length is a multiple of 8, the pointer is
                        // 8-aligned (arena payloads are 8-aligned in both the
                        // owned region and the padded artifact layout), every
                        // bit pattern is a valid f64, and the store is
                        // little-endian like the target.
                        let s = unsafe {
                            std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), self.stride)
                        };
                        return std::borrow::Cow::Borrowed(s);
                    }
                }
                std::borrow::Cow::Owned((0..self.stride).map(|j| f64_at(bytes, j)).collect())
            }
            ArenaEncoding::F16 => {
                let base = idx * self.stride;
                std::borrow::Cow::Owned(
                    (0..self.stride)
                        .map(|j| f64::from(f32_at(data, base + j)))
                        .collect(),
                )
            }
            ArenaEncoding::Int8 => {
                let (scale, offset) = int8_params(self.params.bytes(), idx);
                let base = idx * self.stride;
                std::borrow::Cow::Owned(
                    (0..self.stride)
                        .map(|j| f64::from(offset) + f64::from(scale) * f64::from(data[base + j]))
                        .collect(),
                )
            }
        }
    }

    /// Dequantizes the whole arena (reference values for re-encoding).
    pub fn to_f64_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.entries * self.stride);
        for idx in 0..self.entries {
            out.extend_from_slice(&self.series(idx));
        }
        out
    }

    /// Quantized in-memory footprint: payload plus dequantization params.
    pub fn payload_bytes(&self) -> usize {
        self.data.bytes().len() + self.params.bytes().len()
    }

    /// What the same arena would occupy losslessly (`f64`).
    pub fn f64_bytes(&self) -> usize {
        self.entries * self.stride * 8
    }

    pub(crate) fn raw_parts(&self) -> (&Buf, &Buf) {
        (&self.data, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_exact_for_every_half() {
        // Every finite half value must survive f16 → f32 → f16 bit-exactly.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let man = h & 0x3ff;
            if exp == 0x1f {
                continue; // inf/NaN saturate by design
            }
            let x = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(x);
            assert_eq!(back, h, "half {h:#06x} ({x}) did not roundtrip");
            let _ = man;
        }
    }

    #[test]
    fn f16_saturates_instead_of_overflowing() {
        for x in [1e9f32, 65520.0, f32::INFINITY] {
            let h = f32_to_f16_bits(x);
            assert_eq!(h, 0x7bff, "{x} must saturate to max finite");
            assert!((f16_bits_to_f32(h) - 65504.0).abs() < 1.0);
        }
        assert_eq!(f32_to_f16_bits(-1e9), 0xfbff);
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn f16_relative_error_is_bounded() {
        let mut x = 1.5e-3f32;
        while x < 6e4 {
            let dq = f16_bits_to_f32(f32_to_f16_bits(x));
            assert!(
                (dq - x).abs() <= x * 4.9e-4,
                "{x} → {dq}: rel err {}",
                (dq - x).abs() / x
            );
            x *= 1.37;
        }
    }

    #[test]
    fn f32_arena_is_bitwise_lossless() {
        let vals: Vec<f32> = (0..24).map(|i| (i as f32).sin() * 1e3).collect();
        let a = EncArena::from_f32(&vals, 8, ArenaEncoding::F32);
        assert_eq!(a.entries(), 3);
        let back = a.to_f32_vec();
        assert_eq!(
            vals.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            back.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.payload_bytes(), a.f32_bytes());
    }

    #[test]
    fn int8_error_is_within_half_a_step_per_block() {
        let vals: Vec<f32> = (0..64).map(|i| 100.0 + (i as f32) * 3.7).collect();
        let a = EncArena::from_f32(&vals, 16, ArenaEncoding::Int8);
        let back = a.to_f32_vec();
        for chunk in vals.chunks(16).zip(back.chunks(16)) {
            let (orig, deq) = chunk;
            let lo = orig.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = orig.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let step = (hi - lo) / 255.0;
            for (o, d) in orig.iter().zip(deq) {
                assert!((o - d).abs() <= step * 0.501 + 1e-4, "{o} vs {d}");
            }
        }
        // Much smaller than f32 even at this tiny 16-element stride (the
        // fixed 8 params bytes per block amortize further at real strides).
        assert!(a.payload_bytes() * 2 < a.f32_bytes());
        assert_eq!(a.payload_bytes(), 64 + 4 * 8);
    }

    #[test]
    fn constant_blocks_quantize_exactly() {
        let vals = vec![7.25f32; 32];
        for enc in [ArenaEncoding::Int8, ArenaEncoding::F16] {
            let a = EncArena::from_f32(&vals, 8, enc);
            assert!(a.to_f32_vec().iter().all(|&x| x == 7.25), "{enc}");
        }
    }

    #[test]
    fn raw_arena_series_roundtrip() {
        let vals: Vec<f64> = (0..40).map(|i| f64::from(i) * 0.61 + 2.0).collect();
        let lossless = RawArena::from_f64(&vals, 10, ArenaEncoding::F32);
        assert_eq!(&*lossless.series(1), &vals[10..20]);
        let q = RawArena::from_f64(&vals, 10, ArenaEncoding::Int8);
        let back = q.to_f64_vec();
        for (o, d) in vals.iter().zip(&back) {
            assert!((o - d).abs() < 0.05, "{o} vs {d}");
        }
        assert!(q.payload_bytes() * 3 < q.f64_bytes());
    }

    #[test]
    fn owned_region_is_aligned_and_not_mmap() {
        let region = MappedStore::from_bytes(&(0u8..64).collect::<Vec<u8>>());
        assert_eq!(region.bytes().len(), 64);
        assert_eq!(region.bytes().as_ptr() as usize % 8, 0);
        assert!(!region.is_mmap());
    }

    #[cfg(unix)]
    #[test]
    fn mmap_open_reads_the_file_and_unmaps_on_drop() {
        let path =
            std::env::temp_dir().join(format!("concorde_mmap_unit_{}.bin", std::process::id()));
        let payload: Vec<u8> = (0..4096u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let before = MappedStore::live_mmap_count();
        let region = MappedStore::open(&path).unwrap();
        assert!(region.is_mmap());
        assert_eq!(region.bytes(), &payload[..]);
        assert_eq!(MappedStore::live_mmap_count(), before + 1);
        drop(region);
        assert_eq!(MappedStore::live_mmap_count(), before);
        std::fs::remove_file(&path).ok();
    }
}
