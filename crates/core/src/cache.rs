//! Sharded, byte-budgeted LRU cache of precomputed [`FeatureStore`]s for
//! serving.
//!
//! `FeatureStore::precompute` is the expensive analytic stage (trace
//! generation + per-resource models); a prediction against a cached store is
//! microseconds. The serving engine keys stores by *(workload id, region
//! coordinates, sweep-config hash)* so repeated queries against the same
//! region — the design-space-exploration access pattern the paper targets —
//! skip the analytic stage entirely.
//!
//! The cache is split into N independently locked shards (selected by the
//! [`FeatureKey`] hash), so lookups against hot regions never contend with
//! insertions landing for cold regions. Each shard admits by a **byte
//! budget** ([`FeatureStore::approx_bytes`]) rather than a store count —
//! stores vary by orders of magnitude between per-arch and quantized sweeps,
//! so a count budget either wastes memory or overcommits it — and maintains
//! recency with an intrusive doubly-linked LRU list over a slab: get, insert,
//! and evict are all O(1).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::features::FeatureStore;
use crate::keystr::KeyStr;
use crate::schema::SCHEMA_VERSION;
use crate::sweep::SweepConfig;

/// Identity of one precomputed feature store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    /// Workload id (e.g. `"S5"`).
    pub workload: KeyStr,
    /// Trace index within the workload.
    pub trace: u32,
    /// Region start offset (instructions).
    pub start: u64,
    /// Region length (instructions).
    pub region_len: u32,
    /// [`sweep_content_hash`] of the sweep the store was built for.
    pub sweep_hash: u64,
}

/// Aggregate counters across every shard of a [`ShardedStoreCache`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found a store.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Stores evicted to stay within the byte budget.
    pub evictions: u64,
    /// Resident stores.
    pub stores: usize,
    /// Resident bytes ([`FeatureStore::approx_bytes`] sum).
    pub bytes: usize,
}

/// Point-in-time occupancy and counters of one cache shard — the
/// `{"cmd": "stats"}` per-shard report operators size `--cache-bytes` with.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Resident stores.
    pub stores: usize,
    /// Resident bytes.
    pub bytes: usize,
    /// Lookups that found a store in this shard.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Stores this shard evicted.
    pub evictions: u64,
}

/// Sentinel index terminating the intrusive LRU list.
const NIL: usize = usize::MAX;

struct Node {
    key: FeatureKey,
    store: Arc<FeatureStore>,
    bytes: usize,
    prev: usize,
    next: usize,
}

/// One independently locked shard: hash map for identity, slab + intrusive
/// doubly-linked list for recency. Every operation is O(1); eviction pops
/// the list tail — no scan.
struct Shard {
    map: HashMap<FeatureKey, usize>,
    slab: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn node(&self, i: usize) -> &Node {
        self.slab[i].as_ref().expect("linked node is populated")
    }

    fn node_mut(&mut self, i: usize) -> &mut Node {
        self.slab[i].as_mut().expect("linked node is populated")
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = {
            let n = self.node(i);
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            x => self.node_mut(x).prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        let old_head = self.head;
        {
            let n = self.node_mut(i);
            n.prev = NIL;
            n.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.node_mut(h).prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slab[i] = Some(node);
                i
            }
            None => {
                self.slab.push(Some(node));
                self.slab.len() - 1
            }
        }
    }

    /// Removes and returns the least-recently-used entry.
    fn pop_lru(&mut self) -> Option<FeatureKey> {
        let i = self.tail;
        if i == NIL {
            return None;
        }
        self.unlink(i);
        let node = self.slab[i].take().expect("tail node is populated");
        self.free.push(i);
        self.map.remove(&node.key);
        self.bytes -= node.bytes;
        Some(node.key)
    }

    fn get(&mut self, key: &FeatureKey) -> Option<Arc<FeatureStore>> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.touch(i);
                self.hits += 1;
                Some(Arc::clone(&self.node(i).store))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `store`, then evicts LRU entries until the shard is back
    /// under `budget` — but always keeps at least one store, so a region
    /// larger than the whole budget is still cacheable.
    fn insert(
        &mut self,
        key: FeatureKey,
        store: Arc<FeatureStore>,
        budget: usize,
    ) -> Vec<FeatureKey> {
        // Mapped stores are charged at their resident-page estimate, owned
        // stores at their full footprint (see `FeatureStore::admission_bytes`).
        let bytes = store.admission_bytes();
        match self.map.get(&key).copied() {
            Some(i) => {
                self.bytes = self.bytes - self.node(i).bytes + bytes;
                let n = self.node_mut(i);
                n.store = store;
                n.bytes = bytes;
                self.touch(i);
            }
            None => {
                let i = self.alloc(Node {
                    key: key.clone(),
                    store,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                self.push_front(i);
                self.map.insert(key, i);
                self.bytes += bytes;
            }
        }
        let mut evicted = Vec::new();
        while self.bytes > budget && self.map.len() > 1 {
            let victim = self.pop_lru().expect("len > 1 implies a tail");
            self.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }
}

/// Sharded, byte-budgeted LRU cache of [`FeatureStore`]s, shared via [`Arc`]
/// so readers can keep using an evicted store.
///
/// All methods take `&self`: each shard carries its own lock, so concurrent
/// lookups against different shards never contend, and a hit on one shard is
/// never blocked by an insertion landing on another.
pub struct ShardedStoreCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    budget: usize,
}

impl ShardedStoreCache {
    /// Creates a cache of `shards` independently locked shards (min 1)
    /// admitting `byte_budget` total bytes of stores (split evenly across
    /// shards; each shard always retains at least one store).
    pub fn new(shards: usize, byte_budget: usize) -> Self {
        let n = shards.max(1);
        let budget = byte_budget.max(1);
        ShardedStoreCache {
            shards: (0..n).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: (budget / n).max(1),
            budget,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total byte budget across all shards.
    pub fn byte_budget(&self) -> usize {
        self.budget
    }

    /// Byte budget of each shard.
    pub fn shard_budget(&self) -> usize {
        self.shard_budget
    }

    /// Index of the shard `key` lives on.
    pub fn shard_of(&self, key: &FeatureKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn shard(&self, key: &FeatureKey) -> std::sync::MutexGuard<'_, Shard> {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Number of cached stores.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total resident bytes across shards.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    /// Looks up `key`, marking it most-recently-used within its shard.
    pub fn get(&self, key: &FeatureKey) -> Option<Arc<FeatureStore>> {
        self.shard(key).get(key)
    }

    /// Inserts a store, evicting its shard's least-recently-used entries
    /// until the shard is back under its byte budget. Returns the evicted
    /// keys in eviction (LRU-first) order.
    pub fn insert(&self, key: FeatureKey, store: Arc<FeatureStore>) -> Vec<FeatureKey> {
        let budget = self.shard_budget;
        self.shard(&key).insert(key, store, budget)
    }

    /// Drops all entries and counters.
    pub fn clear(&self) {
        for s in &self.shards {
            *s.lock().unwrap_or_else(|e| e.into_inner()) = Shard::new();
        }
    }

    /// Aggregate counters across every shard.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats::default();
        for s in &self.shards {
            let s = s.lock().unwrap_or_else(|e| e.into_inner());
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.stores += s.map.len();
            out.bytes += s.bytes;
        }
        out
    }

    /// Per-shard occupancy and counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let s = s.lock().unwrap_or_else(|e| e.into_inner());
                ShardStats {
                    shard: i,
                    stores: s.map.len(),
                    bytes: s.bytes,
                    hits: s.hits,
                    misses: s.misses,
                    evictions: s.evictions,
                }
            })
            .collect()
    }

    /// Slab length of one shard (test-only): bounds amortized-O(1) eviction —
    /// a scan-free LRU reuses freed slots, so the slab never grows past the
    /// high-water resident count.
    #[cfg(test)]
    fn slab_len(&self, shard: usize) -> usize {
        self.shards[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .slab
            .len()
    }
}

/// A persisted feature store plus the identity it was precomputed for — the
/// on-disk artifact `concorde precompute` writes and `concorde serve
/// --preload` boots from, so a server starts warm instead of re-running the
/// analytic stage per region.
///
/// File layout v4 (little-endian): `"CCFA"`, artifact-format version,
/// [`SCHEMA_VERSION`], the [`FeatureKey`] fields, zero padding to the next
/// 8-byte boundary, the store in [`FeatureStore::to_bytes`] layout-v3 form,
/// zero padding to the next 8-byte boundary, and finally an 8-byte FNV-1a
/// checksum of every preceding byte. The padding guarantees the store blob
/// (and therefore every arena payload inside it) is 8-byte aligned in the
/// file, which is what lets [`StoreArtifact::map`] mmap the file and point
/// the arenas straight into the mapping without copying a byte. The checksum
/// is verified once at load time ([`StoreArtifact::from_bytes`] /
/// [`StoreArtifact::map`]) — never on the per-request path — so a bit-flipped
/// file is rejected with a typed error instead of producing a wrong-shape
/// arena or silently wrong answers. Round-trips bit-exactly.
#[derive(Debug, Clone)]
pub struct StoreArtifact {
    /// Region + sweep identity of the store.
    pub key: FeatureKey,
    /// Feature-schema version the store was built under.
    pub schema_version: u32,
    /// The precomputed store.
    pub store: FeatureStore,
}

/// Magic bytes opening a [`StoreArtifact`] file.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"CCFA";
/// Artifact container format version (v4: v3's arena encodings + aligned,
/// mmap-able store layout, plus an FNV-1a integrity checksum footer).
pub const ARTIFACT_VERSION: u32 = 4;

/// FNV-1a over a byte slice — the artifact integrity checksum. Same constants
/// as [`sweep_content_hash`]; this one runs over raw file bytes.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Verifies the v4 checksum footer: the trailing 8 bytes must equal the
/// FNV-1a hash of everything before them.
fn verify_artifact_checksum(bytes: &[u8]) -> std::io::Result<()> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
    if bytes.len() < 8 {
        return Err(bad(
            "artifact checksum mismatch: file truncated before the checksum footer".to_string(),
        ));
    }
    let body = &bytes[..bytes.len() - 8];
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte footer"));
    let computed = fnv1a_bytes(body);
    if stored != computed {
        return Err(bad(format!(
            "artifact checksum mismatch (stored {stored:#018x}, computed {computed:#018x}): \
             the file is corrupt or was truncated — re-run `concorde precompute`"
        )));
    }
    Ok(())
}

/// Re-serializes a store and checks it parses back cleanly — the opt-in
/// `CONCORDE_VERIFY_STORES=1` integrity re-check run at cache-insert time.
/// Touches every arena byte, so it also surfaces corruption of an mmap'd
/// store whose backing file changed after load.
///
/// # Errors
///
/// `InvalidData` if the round-trip fails to parse.
pub fn verify_store(store: &FeatureStore) -> std::io::Result<()> {
    let bytes = store.to_bytes();
    FeatureStore::from_bytes(&bytes).map(|_| ())
}

/// Whether `CONCORDE_VERIFY_STORES=1` is set (checked once per process).
pub fn verify_stores_enabled() -> bool {
    use std::sync::OnceLock;
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("CONCORDE_VERIFY_STORES").as_deref() == Ok("1"))
}

/// Parses the artifact header, returning the key, schema version, and the
/// 8-aligned offset where the store blob begins.
fn parse_artifact_header(bytes: &[u8]) -> std::io::Result<(FeatureKey, u32, usize)> {
    use crate::features::ByteReader;
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut r = ByteReader::new(bytes);
    if r.bytes(4)? != ARTIFACT_MAGIC {
        return Err(bad("not a Concorde store artifact (bad magic)"));
    }
    let version = r.u32()?;
    if version != ARTIFACT_VERSION {
        return Err(bad(&format!(
            "unsupported artifact version {version} (this build reads {ARTIFACT_VERSION}); \
             re-run `concorde precompute`"
        )));
    }
    let schema_version = r.u32()?;
    if schema_version != SCHEMA_VERSION {
        return Err(bad(&format!(
            "artifact was built under feature-schema version {schema_version}; \
             this build serves version {SCHEMA_VERSION} — re-run `concorde precompute`"
        )));
    }
    let wl_len = r.u32()? as usize;
    let workload = std::str::from_utf8(r.bytes(wl_len)?)
        .map(KeyStr::new)
        .map_err(|_| bad("artifact workload id is not UTF-8"))?;
    let trace = r.u32()?;
    let start = r.u64()?;
    let region_len = r.u32()?;
    let sweep_hash = r.u64()?;
    r.align8()?;
    Ok((
        FeatureKey {
            workload,
            trace,
            start,
            region_len,
            sweep_hash,
        },
        schema_version,
        r.pos(),
    ))
}

impl StoreArtifact {
    /// Wraps a freshly precomputed store under the current schema version.
    pub fn new(key: FeatureKey, store: FeatureStore) -> Self {
        StoreArtifact {
            key,
            schema_version: SCHEMA_VERSION,
            store,
        }
    }

    /// Serializes the artifact (header + padding + store) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let store_bytes = self.store.to_bytes();
        let mut buf = Vec::with_capacity(64 + self.key.workload.len() + store_bytes.len());
        buf.extend_from_slice(&ARTIFACT_MAGIC);
        buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.schema_version.to_le_bytes());
        buf.extend_from_slice(&(self.key.workload.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.key.workload.as_bytes());
        buf.extend_from_slice(&self.key.trace.to_le_bytes());
        buf.extend_from_slice(&self.key.start.to_le_bytes());
        buf.extend_from_slice(&self.key.region_len.to_le_bytes());
        buf.extend_from_slice(&self.key.sweep_hash.to_le_bytes());
        // 8-align the store blob so every arena payload inside it lands on
        // the boundary `FeatureStore::parse` (and an mmap view) expects.
        crate::features::pad8(&mut buf);
        buf.extend_from_slice(&store_bytes);
        // v4 footer: pad to 8, then FNV-1a over every preceding byte. The
        // store parser reads by length prefixes and tolerates trailing
        // bytes, so the footer is invisible to it.
        crate::features::pad8(&mut buf);
        let sum = fnv1a_bytes(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Deserializes an artifact written by [`StoreArtifact::to_bytes`],
    /// copying the store payload into owned memory.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, an unsupported container or schema
    /// version, or a corrupt store payload.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<StoreArtifact> {
        let (key, schema_version, store_off) = parse_artifact_header(bytes)?;
        verify_artifact_checksum(bytes)?;
        let store = FeatureStore::from_bytes(&bytes[store_off..])?;
        Ok(StoreArtifact {
            key,
            schema_version,
            store,
        })
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads an artifact from `path` into owned memory (one copy of the
    /// file). Prefer [`StoreArtifact::map`] for large artifacts.
    ///
    /// # Errors
    ///
    /// Any I/O error, plus the [`StoreArtifact::from_bytes`] validations.
    pub fn load(path: &Path) -> std::io::Result<StoreArtifact> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Memory-maps an artifact file and backs the store's arenas by views
    /// into the mapping — **no arena bytes are copied through the heap**, so
    /// preloading a fleet of artifacts costs page faults, not reads. The
    /// mapping is shared by the returned store and every clone of it; when
    /// the last reference drops (e.g. the serving cache evicts the store and
    /// in-flight readers finish), the region is `munmap`ed.
    ///
    /// On non-unix targets this transparently falls back to an owned read.
    ///
    /// # Errors
    ///
    /// Any I/O / mmap error, plus the [`StoreArtifact::from_bytes`]
    /// validations.
    pub fn map(path: &Path) -> std::io::Result<StoreArtifact> {
        let region = crate::arena::MappedStore::open(path)?;
        let (key, schema_version, store_off) = parse_artifact_header(region.bytes())?;
        verify_artifact_checksum(region.bytes())?;
        let store = FeatureStore::parse(&region, store_off)?;
        Ok(StoreArtifact {
            key,
            schema_version,
            store,
        })
    }
}

/// FNV-1a over the sweep's grids and memory configurations; used to key
/// cached stores by the sweep they were precomputed for.
pub fn sweep_content_hash(sweep: &SweepConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for grid in [
        &sweep.rob,
        &sweep.lq,
        &sweep.sq,
        &sweep.alu,
        &sweep.fp,
        &sweep.ls,
        &sweep.fills,
        &sweep.buffers,
    ] {
        eat(grid.len() as u64);
        for &v in grid.iter() {
            eat(u64::from(v));
        }
    }
    eat(sweep.pipes.len() as u64);
    for &(a, b) in &sweep.pipes {
        eat(u64::from(a));
        eat(u64::from(b));
    }
    eat(sweep.d_cfgs.len() as u64);
    for cfg in &sweep.d_cfgs {
        let (a, b, c) = cfg.data_key();
        eat(u64::from(a));
        eat(u64::from(b));
        eat(u64::from(c));
        let (d, e) = cfg.inst_key();
        eat(u64::from(d));
        eat(u64::from(e));
    }
    eat(sweep.i_cfgs.len() as u64);
    for cfg in &sweep.i_cfgs {
        let (d, e) = cfg.inst_key();
        eat(u64::from(d));
        eat(u64::from(e));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ReproProfile;
    use concorde_cyclesim::MicroArch;
    use concorde_trace::{by_id, generate_region};

    fn key(id: &str, start: u64) -> FeatureKey {
        FeatureKey {
            workload: KeyStr::new(id),
            trace: 0,
            start,
            region_len: 2048,
            sweep_hash: 7,
        }
    }

    fn tiny_store() -> Arc<FeatureStore> {
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let full = generate_region(&by_id("S5").unwrap(), 0, 0, 2048).instrs;
        let (w, r) = full.split_at(1024);
        Arc::new(FeatureStore::precompute(
            w,
            r,
            &SweepConfig::for_arch(&arch),
            &profile,
        ))
    }

    /// A one-shard cache whose budget fits exactly `n` copies of `store`.
    fn cache_of(n: usize, store: &Arc<FeatureStore>) -> ShardedStoreCache {
        ShardedStoreCache::new(1, n * store.approx_bytes() + store.approx_bytes() / 2)
    }

    #[test]
    fn hit_miss_accounting_and_reuse() {
        let store = tiny_store();
        let cache = cache_of(4, &store);
        assert!(cache.get(&key("S5", 0)).is_none());
        cache.insert(key("S5", 0), Arc::clone(&store));
        let again = cache.get(&key("S5", 0)).expect("must hit");
        assert!(Arc::ptr_eq(&again, &store));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.bytes, store.approx_bytes());
        assert_eq!(cache.bytes(), store.approx_bytes());
    }

    #[test]
    fn byte_budget_evicts_the_coldest() {
        let store = tiny_store();
        let cache = cache_of(2, &store);
        assert!(cache.insert(key("S5", 0), Arc::clone(&store)).is_empty());
        assert!(cache.insert(key("S5", 1), Arc::clone(&store)).is_empty());
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get(&key("S5", 0)).is_some());
        let evicted = cache.insert(key("S5", 2), Arc::clone(&store));
        assert_eq!(evicted, vec![key("S5", 1)]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("S5", 0)).is_some());
        assert!(cache.get(&key("S5", 1)).is_none());
        assert!(cache.get(&key("S5", 2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn eviction_follows_exact_lru_order() {
        // Regression for the old O(len) `iter().min_by_key` eviction scan:
        // the intrusive list must reproduce exact tick order, including after
        // interleaved touches, with no scan helper left to fall back on.
        let store = tiny_store();
        let cache = cache_of(3, &store);
        for start in 0..3 {
            cache.insert(key("S5", start), Arc::clone(&store));
        }
        // Recency now (MRU→LRU): 2, 1, 0. Touch 0 → 0, 2, 1.
        assert!(cache.get(&key("S5", 0)).is_some());
        let evicted = cache.insert(key("S5", 3), Arc::clone(&store));
        assert_eq!(evicted, vec![key("S5", 1)]);
        let evicted = cache.insert(key("S5", 4), Arc::clone(&store));
        assert_eq!(evicted, vec![key("S5", 2)]);
        // Re-inserting a resident key must refresh, not duplicate or evict.
        assert!(cache.insert(key("S5", 0), Arc::clone(&store)).is_empty());
        assert_eq!(cache.len(), 3);
        let evicted = cache.insert(key("S5", 5), Arc::clone(&store));
        assert_eq!(evicted, vec![key("S5", 3)]);
    }

    #[test]
    fn eviction_reuses_slots_without_slab_growth() {
        // Amortized-O(1) eviction: freed slots are recycled, so churning many
        // keys through a 2-store budget keeps the slab at the high-water
        // resident count instead of growing per insert (as a scan-based or
        // tombstoning implementation would).
        let store = tiny_store();
        let cache = cache_of(2, &store);
        for start in 0..100 {
            cache.insert(key("S5", start), Arc::clone(&store));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 98);
        assert!(
            cache.slab_len(0) <= 3,
            "slab grew to {} slots for 2 resident stores",
            cache.slab_len(0)
        );
    }

    #[test]
    fn oversized_store_is_still_cached_alone() {
        // A store larger than the entire shard budget must still be
        // admitted (and evict everything else), not bounce forever.
        let store = tiny_store();
        let cache = ShardedStoreCache::new(1, 16);
        cache.insert(key("S5", 0), Arc::clone(&store));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key("S5", 0)).is_some());
        let evicted = cache.insert(key("S5", 1), Arc::clone(&store));
        assert_eq!(evicted, vec![key("S5", 0)]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_partition_keys_consistently() {
        let store = tiny_store();
        let cache = ShardedStoreCache::new(4, 64 * store.approx_bytes());
        assert_eq!(cache.shard_count(), 4);
        for start in 0..32 {
            let k = key("S5", start);
            assert_eq!(cache.shard_of(&k), cache.shard_of(&k.clone()));
            cache.insert(k, Arc::clone(&store));
        }
        assert_eq!(cache.len(), 32);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.iter().map(|s| s.stores).sum::<usize>(), 32);
        assert_eq!(
            per_shard.iter().map(|s| s.bytes).sum::<usize>(),
            cache.bytes()
        );
        // Every key must be found on its own shard.
        for start in 0..32 {
            assert!(cache.get(&key("S5", start)).is_some());
        }
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn sweep_hash_distinguishes_configs() {
        let a = SweepConfig::for_arch(&MicroArch::arm_n1());
        let b = SweepConfig::for_arch(&MicroArch::big_core());
        assert_eq!(sweep_content_hash(&a), sweep_content_hash(&a));
        assert_ne!(sweep_content_hash(&a), sweep_content_hash(&b));
    }

    fn tiny_artifact_bytes() -> Vec<u8> {
        let store = tiny_store();
        StoreArtifact::new(key("S5", 0), (*store).clone()).to_bytes()
    }

    #[test]
    fn artifact_v4_roundtrips_and_is_checksummed() {
        let bytes = tiny_artifact_bytes();
        // 8-aligned end-to-end: footer included.
        assert_eq!(bytes.len() % 8, 0);
        let loaded = StoreArtifact::from_bytes(&bytes).expect("clean load");
        assert_eq!(loaded.key, key("S5", 0));
        assert_eq!(loaded.store.to_bytes(), tiny_store().to_bytes());
    }

    #[test]
    fn artifact_payload_corruption_is_a_typed_checksum_error() {
        let mut bytes = tiny_artifact_bytes();
        // Flip a bit deep in the store payload — past every header field.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = StoreArtifact::from_bytes(&bytes).expect_err("must reject");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("checksum mismatch"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn artifact_truncation_is_rejected() {
        let bytes = tiny_artifact_bytes();
        for keep in [0, 3, 16, bytes.len() - 1] {
            let err = StoreArtifact::from_bytes(&bytes[..keep]).expect_err("must reject");
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "keep={keep}");
        }
    }

    #[test]
    fn old_artifact_version_gets_the_version_error_not_a_checksum_one() {
        let mut bytes = tiny_artifact_bytes();
        // Rewrite the version field to v3: the reader must say "unsupported
        // version", not confuse the user with a checksum complaint.
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        let err = StoreArtifact::from_bytes(&bytes).expect_err("must reject");
        assert!(
            err.to_string().contains("unsupported artifact version 3"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn verify_store_roundtrip_is_clean() {
        let store = tiny_store();
        verify_store(&store).expect("a freshly built store must verify");
    }
}
