//! LRU cache of precomputed [`FeatureStore`]s for serving.
//!
//! `FeatureStore::precompute` is the expensive analytic stage (trace
//! generation + per-resource models); a prediction against a cached store is
//! microseconds. The serving engine keys stores by *(workload id, region
//! coordinates, sweep-config hash)* so repeated queries against the same
//! region — the design-space-exploration access pattern the paper targets —
//! skip the analytic stage entirely.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use crate::features::FeatureStore;
use crate::schema::SCHEMA_VERSION;
use crate::sweep::SweepConfig;

/// Identity of one precomputed feature store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeatureKey {
    /// Workload id (e.g. `"S5"`).
    pub workload: String,
    /// Trace index within the workload.
    pub trace: u32,
    /// Region start offset (instructions).
    pub start: u64,
    /// Region length (instructions).
    pub region_len: u32,
    /// [`sweep_content_hash`] of the sweep the store was built for.
    pub sweep_hash: u64,
}

struct Entry {
    store: Arc<FeatureStore>,
    last_used: u64,
}

/// Bounded LRU cache of [`FeatureStore`]s, shared via [`Arc`] so readers can
/// keep using an evicted store.
pub struct FeatureStoreCache {
    capacity: usize,
    map: HashMap<FeatureKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl FeatureStoreCache {
    /// Creates a cache holding at most `capacity` stores (min 1).
    pub fn new(capacity: usize) -> Self {
        FeatureStoreCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached stores.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total lookups that found a store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups that had to build a store.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, marking it most-recently-used.
    pub fn get(&mut self, key: &FeatureKey) -> Option<Arc<FeatureStore>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&e.store))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a store, evicting the least-recently-used entry on overflow.
    pub fn insert(&mut self, key: FeatureKey, store: Arc<FeatureStore>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(len) eviction scan; capacities are small (tens to hundreds)
            // and insertion only happens after a multi-millisecond precompute.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            Entry {
                store,
                last_used: self.tick,
            },
        );
    }

    /// Returns the cached store for `key`, or builds one with `build` and
    /// caches it. The boolean is `true` on a hit.
    pub fn get_or_insert_with<F: FnOnce() -> FeatureStore>(
        &mut self,
        key: &FeatureKey,
        build: F,
    ) -> (Arc<FeatureStore>, bool) {
        if let Some(store) = self.get(key) {
            return (store, true);
        }
        let store = Arc::new(build());
        self.insert(key.clone(), Arc::clone(&store));
        (store, false)
    }

    /// Drops all entries and counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
        self.tick = 0;
    }
}

/// A persisted feature store plus the identity it was precomputed for — the
/// on-disk artifact `concorde precompute` writes and `concorde serve
/// --preload` boots from, so a server starts warm instead of re-running the
/// analytic stage per region.
///
/// File layout (little-endian): `"CCFA"`, artifact-format version,
/// [`SCHEMA_VERSION`], the [`FeatureKey`] fields, then the store in
/// [`FeatureStore::to_bytes`] form. Round-trips bit-exactly.
#[derive(Debug, Clone)]
pub struct StoreArtifact {
    /// Region + sweep identity of the store.
    pub key: FeatureKey,
    /// Feature-schema version the store was built under.
    pub schema_version: u32,
    /// The precomputed store.
    pub store: FeatureStore,
}

/// Magic bytes opening a [`StoreArtifact`] file.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"CCFA";
/// Artifact container format version.
pub const ARTIFACT_VERSION: u32 = 1;

impl StoreArtifact {
    /// Wraps a freshly precomputed store under the current schema version.
    pub fn new(key: FeatureKey, store: FeatureStore) -> Self {
        StoreArtifact {
            key,
            schema_version: SCHEMA_VERSION,
            store,
        }
    }

    /// Serializes the artifact (header + store) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let store_bytes = self.store.to_bytes();
        let mut buf = Vec::with_capacity(64 + self.key.workload.len() + store_bytes.len());
        buf.extend_from_slice(&ARTIFACT_MAGIC);
        buf.extend_from_slice(&ARTIFACT_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.schema_version.to_le_bytes());
        buf.extend_from_slice(&(self.key.workload.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.key.workload.as_bytes());
        buf.extend_from_slice(&self.key.trace.to_le_bytes());
        buf.extend_from_slice(&self.key.start.to_le_bytes());
        buf.extend_from_slice(&self.key.region_len.to_le_bytes());
        buf.extend_from_slice(&self.key.sweep_hash.to_le_bytes());
        buf.extend_from_slice(&store_bytes);
        buf
    }

    /// Deserializes an artifact written by [`StoreArtifact::to_bytes`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, an unsupported container or schema
    /// version, or a corrupt store payload.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<StoreArtifact> {
        use crate::features::ByteReader;
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut r = ByteReader::new(bytes);
        if r.bytes(4)? != ARTIFACT_MAGIC {
            return Err(bad("not a Concorde store artifact (bad magic)"));
        }
        let version = r.u32()?;
        if version != ARTIFACT_VERSION {
            return Err(bad(&format!(
                "unsupported artifact version {version} (this build reads {ARTIFACT_VERSION})"
            )));
        }
        let schema_version = r.u32()?;
        if schema_version != SCHEMA_VERSION {
            return Err(bad(&format!(
                "artifact was built under feature-schema version {schema_version}; \
                 this build serves version {SCHEMA_VERSION} — re-run `concorde precompute`"
            )));
        }
        let wl_len = r.u32()? as usize;
        let workload = String::from_utf8(r.bytes(wl_len)?.to_vec())
            .map_err(|_| bad("artifact workload id is not UTF-8"))?;
        let trace = r.u32()?;
        let start = r.u64()?;
        let region_len = r.u32()?;
        let sweep_hash = r.u64()?;
        let remaining = r.remaining();
        let store = FeatureStore::from_bytes(r.bytes(remaining)?)?;
        Ok(StoreArtifact {
            key: FeatureKey {
                workload,
                trace,
                start,
                region_len,
                sweep_hash,
            },
            schema_version,
            store,
        })
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error, plus the [`StoreArtifact::from_bytes`] validations.
    pub fn load(path: &Path) -> std::io::Result<StoreArtifact> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// FNV-1a over the sweep's grids and memory configurations; used to key
/// cached stores by the sweep they were precomputed for.
pub fn sweep_content_hash(sweep: &SweepConfig) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for grid in [
        &sweep.rob,
        &sweep.lq,
        &sweep.sq,
        &sweep.alu,
        &sweep.fp,
        &sweep.ls,
        &sweep.fills,
        &sweep.buffers,
    ] {
        eat(grid.len() as u64);
        for &v in grid.iter() {
            eat(u64::from(v));
        }
    }
    eat(sweep.pipes.len() as u64);
    for &(a, b) in &sweep.pipes {
        eat(u64::from(a));
        eat(u64::from(b));
    }
    eat(sweep.d_cfgs.len() as u64);
    for cfg in &sweep.d_cfgs {
        let (a, b, c) = cfg.data_key();
        eat(u64::from(a));
        eat(u64::from(b));
        eat(u64::from(c));
        let (d, e) = cfg.inst_key();
        eat(u64::from(d));
        eat(u64::from(e));
    }
    eat(sweep.i_cfgs.len() as u64);
    for cfg in &sweep.i_cfgs {
        let (d, e) = cfg.inst_key();
        eat(u64::from(d));
        eat(u64::from(e));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ReproProfile;
    use concorde_cyclesim::MicroArch;
    use concorde_trace::{by_id, generate_region};

    fn key(id: &str, start: u64) -> FeatureKey {
        FeatureKey {
            workload: id.to_string(),
            trace: 0,
            start,
            region_len: 2048,
            sweep_hash: 7,
        }
    }

    fn tiny_store() -> FeatureStore {
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let full = generate_region(&by_id("S5").unwrap(), 0, 0, 2048).instrs;
        let (w, r) = full.split_at(1024);
        FeatureStore::precompute(w, r, &SweepConfig::for_arch(&arch), &profile)
    }

    #[test]
    fn hit_miss_accounting_and_reuse() {
        let mut cache = FeatureStoreCache::new(4);
        let store = Arc::new(tiny_store());
        assert!(cache.get(&key("S5", 0)).is_none());
        cache.insert(key("S5", 0), Arc::clone(&store));
        let (again, hit) = cache.get_or_insert_with(&key("S5", 0), || unreachable!("must hit"));
        assert!(hit);
        assert!(Arc::ptr_eq(&again, &store));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut cache = FeatureStoreCache::new(2);
        let store = Arc::new(tiny_store());
        cache.insert(key("S5", 0), Arc::clone(&store));
        cache.insert(key("S5", 1), Arc::clone(&store));
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get(&key("S5", 0)).is_some());
        cache.insert(key("S5", 2), Arc::clone(&store));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key("S5", 0)).is_some());
        assert!(cache.get(&key("S5", 1)).is_none());
        assert!(cache.get(&key("S5", 2)).is_some());
    }

    #[test]
    fn sweep_hash_distinguishes_configs() {
        let a = SweepConfig::for_arch(&MicroArch::arm_n1());
        let b = SweepConfig::for_arch(&MicroArch::big_core());
        assert_eq!(sweep_content_hash(&a), sweep_content_hash(&a));
        assert_ne!(sweep_content_hash(&a), sweep_content_hash(&b));
    }
}
