//! Labeled-dataset generation (paper §4).
//!
//! Every data point pairs an independently sampled `(program region,
//! microarchitecture)` with the ground-truth CPI from the cycle-level
//! simulator, plus the full-variant Concorde features from a single-arch
//! [`FeatureStore`] precompute (the paper's §5.2.4 discipline: training
//! samples run the analytical models for one microarchitecture only).
//! Generation is deterministic in the seed and parallelized across threads.

use std::sync::atomic::{AtomicUsize, Ordering};

use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};
use concorde_trace::{generate_region, sample_region, RegionRef, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::features::{FeatureStore, FeatureVariant};
use crate::schema::FeatureSchema;
use crate::sweep::{ReproProfile, SweepConfig};
use concorde_analytic::distribution::Encoding;

/// One labeled data point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Index of the workload in the suite.
    pub workload: u16,
    /// Sampled region reference.
    pub region: RegionRef,
    /// Sampled (or fixed) microarchitecture.
    pub arch: MicroArch,
    /// Full-variant feature vector (project with [`project_features`] for
    /// ablation variants).
    pub features: Vec<f32>,
    /// Ground-truth CPI from the cycle-level simulator.
    pub cpi: f64,
    /// Ground-truth mean ROB occupancy % (§5.2.6 alternate metric).
    pub rob_occupancy: f64,
    /// Ground-truth mean rename-queue occupancy % (§5.2.6).
    pub rename_occupancy: f64,
    /// Branch mispredictions in the region (Table 4 bucketing).
    pub branch_mispredictions: u64,
    /// Ratio of actual to trace-analysis-estimated load execution time
    /// (Figure 11's discrepancy axis).
    pub exec_ratio: f64,
}

/// How microarchitectures are chosen per sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArchSampling {
    /// Independent uniform sample from Table 1 per data point (paper §4).
    Random,
    /// A fixed design for every sample (the ARM N1 / TAO studies).
    Fixed(MicroArch),
}

/// Dataset-generation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Scaling profile.
    pub profile: ReproProfile,
    /// Number of samples.
    pub n: usize,
    /// Seed (use different seeds for train and test splits).
    pub seed: u64,
    /// Architecture sampling mode.
    pub arch: ArchSampling,
    /// Optional workload restriction (indices into the suite) — used by the
    /// OOD leave-one-out study (Figure 14).
    pub workloads: Option<Vec<u16>>,
    /// Worker threads (0 = all available).
    pub threads: usize,
}

impl DatasetConfig {
    /// Random-architecture dataset over the full suite.
    pub fn random(profile: ReproProfile, n: usize, seed: u64) -> Self {
        DatasetConfig {
            profile,
            n,
            seed,
            arch: ArchSampling::Random,
            workloads: None,
            threads: 0,
        }
    }
}

/// Generates one sample (deterministic in `(cfg.seed, index)`).
fn generate_sample(cfg: &DatasetConfig, suite: &[WorkloadSpec], index: usize) -> Sample {
    let profile = &cfg.profile;
    let mut rng = ChaCha12Rng::seed_from_u64(
        cfg.seed ^ (0x9E3779B97F4A7C15u64.wrapping_mul(index as u64 + 1)),
    );
    let pool: Vec<u16> = match &cfg.workloads {
        Some(w) => w.clone(),
        None => (0..suite.len() as u16).collect(),
    };
    let workload = pool[rng.gen_range(0..pool.len())];
    let spec = &suite[workload as usize];
    let region = sample_region(spec, workload, profile.region_len as u32, &mut rng);
    let warm_start = region.start.saturating_sub(profile.warmup_len as u64);
    let warm_len = (region.start - warm_start) as usize;
    let full = generate_region(
        spec,
        region.trace_idx,
        warm_start,
        warm_len + profile.region_len,
    );
    let (warm, reg) = full.instrs.split_at(warm_len);

    let arch = match cfg.arch {
        ArchSampling::Random => MicroArch::sample(&mut rng),
        ArchSampling::Fixed(a) => a,
    };

    let sim = simulate_warmed(
        warm,
        reg,
        &arch,
        SimOptions {
            record_commit_cycles: false,
            seed: rng.gen(),
        },
    );
    // One precompute thread: generation already parallelizes across samples.
    let store =
        FeatureStore::precompute_threaded(warm, reg, &SweepConfig::for_arch(&arch), profile, 1);
    let features = store.features(&arch, FeatureVariant::Full);
    let est = store.load_exec_estimate(arch.mem).max(1);

    Sample {
        workload,
        region,
        arch,
        features,
        cpi: sim.cpi(),
        rob_occupancy: sim.avg_rob_occupancy_pct,
        rename_occupancy: sim.avg_rename_q_occupancy_pct,
        branch_mispredictions: sim.branch.mispredictions,
        exec_ratio: sim.load_exec_cycles as f64 / est as f64,
    }
}

/// Generates `cfg.n` samples in parallel.
pub fn generate_dataset(cfg: &DatasetConfig) -> Vec<Sample> {
    let suite = concorde_trace::suite();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        cfg.threads
    };
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<Sample>> = Vec::new();
    out.resize_with(cfg.n, || None);
    let slots: Vec<parking_lot::Mutex<Option<Sample>>> =
        (0..cfg.n).map(|_| parking_lot::Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads.min(cfg.n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.n {
                    break;
                }
                let sample = generate_sample(cfg, &suite, i);
                *slots[i].lock() = Some(sample);
            });
        }
    });
    for (o, slot) in out.iter_mut().zip(slots) {
        *o = slot.into_inner();
    }
    out.into_iter()
        .map(|s| s.expect("all samples generated"))
        .collect()
}

/// Reusable projection from full-variant vectors onto an ablation variant:
/// the schema lookups happen once here, so per-sample projection is a few
/// `memcpy`s (build one per training/evaluation run, not per sample).
#[derive(Debug, Clone)]
pub struct FeatureProjection {
    /// Source ranges to copy, adjacent schema blocks coalesced.
    ranges: Vec<std::ops::Range<usize>>,
    src_dim: usize,
    dim: usize,
}

impl FeatureProjection {
    /// Builds the projection for `variant` out of the full-variant schema.
    pub fn new(encoding: Encoding, variant: FeatureVariant) -> Self {
        let source = FeatureSchema::new(encoding, FeatureVariant::Full);
        let target = FeatureSchema::new(encoding, variant);
        let mut ranges: Vec<std::ops::Range<usize>> = Vec::new();
        for block in target.blocks() {
            let src = source
                .block(&block.name)
                .expect("every target block exists in the full schema")
                .range();
            debug_assert_eq!(src.len(), block.len);
            match ranges.last_mut() {
                Some(prev) if prev.end == src.start => prev.end = src.end,
                _ => ranges.push(src),
            }
        }
        FeatureProjection {
            ranges,
            src_dim: source.dim(),
            dim: target.dim(),
        }
    }

    /// Projected (target-variant) dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Projects one full-variant vector.
    pub fn project(&self, full: &[f32]) -> Vec<f32> {
        debug_assert_eq!(full.len(), self.src_dim);
        let mut out = Vec::with_capacity(self.dim);
        for r in &self.ranges {
            out.extend_from_slice(&full[r.clone()]);
        }
        debug_assert_eq!(out.len(), self.dim);
        out
    }
}

/// Projects a stored full-variant feature vector onto an ablation variant
/// (Figure 12) without re-running the analytical models.
///
/// Schema-driven: the target variant's blocks are copied out of the
/// full-variant vector by name, so the projection stays correct whatever the
/// layout becomes. Batch callers should build a [`FeatureProjection`] once
/// instead.
pub fn project_features(full: &[f32], encoding: Encoding, variant: FeatureVariant) -> Vec<f32> {
    if variant == FeatureVariant::Full {
        return full.to_vec();
    }
    FeatureProjection::new(encoding, variant).project(full)
}

/// Per-workload average train/test region overlap (Figure 4): for each test
/// sample, the maximum instruction overlap with any training region of the
/// same trace, as a fraction of region length; averaged per workload.
pub fn overlap_report(train: &[Sample], test: &[Sample]) -> Vec<(u16, f64)> {
    use std::collections::HashMap;
    let mut by_trace: HashMap<(u16, u32), Vec<RegionRef>> = HashMap::new();
    for s in train {
        by_trace
            .entry((s.workload, s.region.trace_idx))
            .or_default()
            .push(s.region);
    }
    let mut acc: HashMap<u16, (f64, usize)> = HashMap::new();
    for s in test {
        let best = by_trace
            .get(&(s.workload, s.region.trace_idx))
            .map(|regions| {
                regions
                    .iter()
                    .map(|r| s.region.overlap(r))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        let frac = best as f64 / f64::from(s.region.len).max(1.0);
        let e = acc.entry(s.workload).or_insert((0.0, 0));
        e.0 += frac;
        e.1 += 1;
    }
    let mut out: Vec<(u16, f64)> = acc
        .into_iter()
        .map(|(w, (sum, n))| (w, sum / n as f64))
        .collect();
    out.sort_by_key(|(w, _)| *w);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureLayout;

    fn tiny_cfg(n: usize, seed: u64) -> DatasetConfig {
        DatasetConfig {
            profile: ReproProfile::quick(),
            n,
            seed,
            arch: ArchSampling::Random,
            workloads: Some(vec![3, 15, 20]), // P4, O1, S2 — fast generators
            threads: 0,
        }
    }

    #[test]
    fn generation_is_deterministic_and_labeled() {
        let cfg = tiny_cfg(6, 7);
        let a = generate_dataset(&cfg);
        let b = generate_dataset(&cfg);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.region, y.region);
            assert_eq!(x.arch, y.arch);
            assert_eq!(x.cpi, y.cpi);
            assert_eq!(x.features, y.features);
        }
        for s in &a {
            assert!(s.cpi > 0.05 && s.cpi < 500.0, "cpi {}", s.cpi);
            assert!(s.exec_ratio > 0.0);
            let dim = FeatureLayout {
                encoding: cfg.profile.encoding,
                variant: FeatureVariant::Full,
            }
            .dim();
            assert_eq!(s.features.len(), dim);
        }
    }

    #[test]
    fn fixed_arch_sampling_uses_given_design() {
        let mut cfg = tiny_cfg(3, 9);
        cfg.arch = ArchSampling::Fixed(MicroArch::arm_n1());
        for s in generate_dataset(&cfg) {
            assert_eq!(s.arch, MicroArch::arm_n1());
        }
    }

    #[test]
    fn workload_filter_respected() {
        let cfg = tiny_cfg(8, 11);
        for s in generate_dataset(&cfg) {
            assert!([3u16, 15, 20].contains(&s.workload));
        }
    }

    #[test]
    fn projection_dims_match_layouts() {
        let cfg = tiny_cfg(1, 13);
        let s = &generate_dataset(&cfg)[0];
        for v in [
            FeatureVariant::Base,
            FeatureVariant::BaseBranch,
            FeatureVariant::Full,
        ] {
            let p = project_features(&s.features, cfg.profile.encoding, v);
            let dim = FeatureLayout {
                encoding: cfg.profile.encoding,
                variant: v,
            }
            .dim();
            assert_eq!(p.len(), dim, "{v:?}");
        }
        // Params must survive projection (the tail 23 dims).
        let base = project_features(&s.features, cfg.profile.encoding, FeatureVariant::Base);
        assert_eq!(
            &base[base.len() - 23..],
            &s.features[s.features.len() - 23..]
        );
    }

    #[test]
    fn overlap_report_detects_shared_regions() {
        let cfg = tiny_cfg(10, 17);
        let data = generate_dataset(&cfg);
        // Self-overlap: every test sample matches itself in the train set.
        let report = overlap_report(&data, &data);
        for (_, frac) in &report {
            assert!(
                (*frac - 1.0).abs() < 1e-9,
                "self overlap must be 1, got {frac}"
            );
        }
        // Disjoint seeds should mostly not overlap fully.
        let other = generate_dataset(&tiny_cfg(10, 999));
        let cross = overlap_report(&data, &other);
        for (_, frac) in cross {
            assert!(frac <= 1.0);
        }
    }
}
