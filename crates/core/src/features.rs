//! Performance-distribution features: precomputation, storage, and assembly.
//!
//! This is Concorde's central data structure. A [`FeatureStore`] holds, for
//! one program region, the encoded per-resource throughput distributions for
//! every parameter value in a [`SweepConfig`] (paper §3.2.1), the auxiliary
//! pipeline-stall and latency-distribution features (§3.2.2), and enough raw
//! series for the no-ML minimum-bound baseline and Figure 1.
//!
//! Storage is a set of flat arenas — one contiguous `f32` buffer for encoded
//! distributions and one `f64` buffer for raw window series per table —
//! indexed by *grid position*: every sweep value is known up front, so a
//! lookup is a nearest-grid-index search over a tiny array plus a computed
//! offset, never a hash. [`FeatureStore::features_into`] assembles the ML
//! input vector into a caller-owned buffer with zero heap allocations, which
//! is what makes design-space sweeps and Shapley attribution cheap (§5.2.3).
//! [`FeatureStore::precompute`] parallelizes internally across memory
//! configurations and sweep points, and stores round-trip through a compact
//! binary artifact format ([`FeatureStore::to_bytes`]) so servers can boot
//! from prebuilt stores. The vector layout itself is owned by
//! [`FeatureSchema`](crate::schema::FeatureSchema).

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use concorde_analytic::prelude::*;
use concorde_branch::PredictorKind;
use concorde_cache::MemConfig;
use concorde_cyclesim::MicroArch;
use concorde_trace::{BranchKind, Instruction};
use serde::{Deserialize, Serialize};

use crate::arena::{ArenaEncoding, Buf, EncArena, MappedStore, RawArena};
use crate::parallel::parallel_map;
use crate::schema::FeatureSchema;
use crate::sweep::{ReproProfile, SweepConfig};

/// Which feature groups feed the ML model (the Figure 12 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureVariant {
    /// Per-resource throughput distributions + misprediction rate + parameters.
    Base,
    /// `Base` plus the pipeline-stall features (§3.2.2).
    BaseBranch,
    /// `BaseBranch` plus the latency distributions (§3.2.2) — full Concorde.
    Full,
}

/// The 11 per-resource primary distributions, in feature order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Resource {
    Rob,
    LoadQueue,
    StoreQueue,
    AluWidth,
    FpWidth,
    LsWidth,
    PipesLower,
    PipesUpper,
    IcacheFills,
    FetchBuffers,
    MemLatency,
}

impl Resource {
    /// All primary resources in feature order.
    pub const ALL: [Resource; 11] = [
        Resource::Rob,
        Resource::LoadQueue,
        Resource::StoreQueue,
        Resource::AluWidth,
        Resource::FpWidth,
        Resource::LsWidth,
        Resource::PipesLower,
        Resource::PipesUpper,
        Resource::IcacheFills,
        Resource::FetchBuffers,
        Resource::MemLatency,
    ];

    /// Stable schema block name for this resource.
    pub const fn name(self) -> &'static str {
        match self {
            Resource::Rob => "rob",
            Resource::LoadQueue => "load_queue",
            Resource::StoreQueue => "store_queue",
            Resource::AluWidth => "alu_width",
            Resource::FpWidth => "fp_width",
            Resource::LsWidth => "ls_width",
            Resource::PipesLower => "pipes_lower",
            Resource::PipesUpper => "pipes_upper",
            Resource::IcacheFills => "icache_fills",
            Resource::FetchBuffers => "fetch_buffers",
            Resource::MemLatency => "mem_latency",
        }
    }
}

/// Feature-vector layout for a variant and encoding width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureLayout {
    /// Distribution encoding.
    pub encoding: Encoding,
    /// Feature groups included.
    pub variant: FeatureVariant,
}

impl FeatureLayout {
    /// Total input dimension (paper Table 3 computes 3873 for the paper
    /// encoding and the `Full` variant). Delegates to the schema — the single
    /// source of truth for the layout.
    pub fn dim(&self) -> usize {
        FeatureSchema::dim_for(self.encoding, self.variant)
    }

    /// The full block-level schema for this layout.
    pub fn schema(&self) -> FeatureSchema {
        FeatureSchema::new(self.encoding, self.variant)
    }
}

type DKey = (u32, u32, u32);
type IKey = (u32, u32);

/// Precomputed performance distributions for one region, stored as flat
/// grid-indexed arenas (see the module docs) under a pluggable
/// [`ArenaEncoding`] — lossless `f32` (the precompute output), or `f16`/`int8`
/// quantized via [`FeatureStore::reencoded`]. Arenas may be owned or backed
/// by a shared [`MappedStore`] region (zero-copy artifact loading).
#[derive(Debug, Clone)]
pub struct FeatureStore {
    k: usize,
    encoding: Encoding,
    arena_encoding: ArenaEncoding,
    n_instr: usize,
    /// Length of every raw per-window series (identical across tables: all
    /// series are windowed over the same region with the same `k`).
    n_windows: usize,
    // Sweep grids. `rob_grid` is sorted (sweep ∪ ROB_SWEEP); the others keep
    // their sweep order, which fixes nearest-lookup tie-breaking.
    rob_grid: Vec<u32>,
    lq_grid: Vec<u32>,
    sq_grid: Vec<u32>,
    alu_grid: Vec<u32>,
    fp_grid: Vec<u32>,
    ls_grid: Vec<u32>,
    pipes_grid: Vec<(u32, u32)>,
    fills_grid: Vec<u32>,
    buffers_grid: Vec<u32>,
    d_keys: Vec<DKey>,
    i_keys: Vec<IKey>,
    // Arenas. `*_enc` strides by `encoding.dim()`, `*_raw` by `n_windows`.
    // Two-axis tables index as `outer * inner_grid_len + inner`.
    rob_enc: EncArena,
    rob_raw: RawArena,
    lq_enc: EncArena,
    lq_raw: RawArena,
    sq_enc: EncArena,
    sq_raw: RawArena,
    mem_enc: EncArena,
    mem_raw: RawArena,
    alu_enc: EncArena,
    alu_raw: RawArena,
    fp_enc: EncArena,
    fp_raw: RawArena,
    ls_enc: EncArena,
    ls_raw: RawArena,
    pipes_lo_enc: EncArena,
    pipes_lo_raw: RawArena,
    pipes_hi_enc: EncArena,
    pipes_hi_raw: RawArena,
    fills_enc: EncArena,
    fills_raw: RawArena,
    buffers_enc: EncArena,
    buffers_raw: RawArena,
    rob_curve: EncArena,  // entries n_d, stride ROB_SWEEP.len()
    exec_lat: EncArena,   // entries n_d, stride e
    issue_lat: EncArena,  // entries n_d × ROB_SWEEP.len(), stride e
    commit_lat: EncArena, // entries n_d × ROB_SWEEP.len(), stride e
    load_exec_est: Vec<u64>,
    isb_dist: EncArena,          // 1 entry, stride e
    branch_dists: [EncArena; 3], // 1 entry each, stride e
    branch_info_branches: u64,
    branch_info_cond: u64,
    branch_info_tage: u64,
    branch_info_indirect: u64,
}

/// Index of the grid value nearest `v` under the ratio distance (fixed
/// point), robust for size-like parameters. Ties resolve to the first
/// minimal grid entry — the same element the value-keyed `min_by_key`
/// selection always picked.
fn nearest_idx(grid: &[u32], v: u32) -> usize {
    grid.iter()
        .enumerate()
        .min_by_key(|&(_, &g)| {
            let (a, b) = (g.max(1) as u64, v.max(1) as u64);
            let (hi, lo) = if a > b { (a, b) } else { (b, a) };
            (hi * 1024 / lo, hi)
        })
        .expect("grid must be non-empty")
        .0
}

fn nearest_pair_idx(grid: &[(u32, u32)], v: (u32, u32)) -> usize {
    grid.iter()
        .enumerate()
        .min_by_key(|&(_, &(a, b))| {
            let d1 = (i64::from(a) - i64::from(v.0)).abs();
            let d2 = (i64::from(b) - i64::from(v.1)).abs();
            (d1 + d2, a, b)
        })
        .expect("pipes grid must be non-empty")
        .0
}

fn nearest_dkey_idx(keys: &[DKey], v: DKey) -> usize {
    keys.iter()
        .enumerate()
        .min_by_key(|&(_, &(a, b, c))| {
            (
                (i64::from(a) - i64::from(v.0)).abs(),
                (i64::from(b) - i64::from(v.1)).abs(),
                (i64::from(c) - i64::from(v.2)).abs(),
            )
        })
        .expect("d_cfgs must be non-empty")
        .0
}

fn nearest_ikey_idx(keys: &[IKey], v: IKey) -> usize {
    keys.iter()
        .enumerate()
        .min_by_key(|&(_, &(a, b))| {
            (
                (i64::from(a) - i64::from(v.0)).abs(),
                (i64::from(b) - i64::from(v.1)).abs(),
            )
        })
        .expect("i_cfgs must be non-empty")
        .0
}

/// Staged result of one analytic run: encoded + raw series.
struct Thr {
    enc: Vec<f32>,
    raw: Vec<f64>,
}

/// Output of one precompute task (see the task list in `precompute_threaded`).
enum TaskOut {
    Thr(Thr),
    Mem {
        thr: Thr,
        est: u64,
    },
    Pipes {
        lo: Thr,
        hi: Thr,
    },
    Rob {
        thr: Thr,
        curve: Option<f32>,
        issue: Option<Vec<f32>>,
        commit: Option<Vec<f32>>,
        exec: Option<Vec<f32>>,
    },
}

impl TaskOut {
    fn thr(self) -> Thr {
        match self {
            TaskOut::Thr(t) => t,
            _ => unreachable!("task section mismatch"),
        }
    }
}

/// One planned assembly row: the original batch position plus the lookup
/// indices [`FeatureStore::plan_assembly`] resolved for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssemblySlot {
    /// Row index in the caller's architecture slice / output buffer.
    pub row: u32,
    /// Data-side memory-configuration index (`d_idx`).
    pub di: u32,
    /// Instruction-side memory-configuration index (`i_idx`).
    pub ii: u32,
    /// Nearest ROB-grid index — the dominant arena-address component and the
    /// plan's primary intra-`di` sort key.
    pub rob_idx: u32,
}

/// Reusable buffer holding a batched-assembly plan (see
/// [`FeatureStore::plan_assembly`]). Warm reuse allocates nothing.
#[derive(Debug, Default)]
pub struct AssemblyScratch {
    slots: Vec<AssemblySlot>,
}

impl AssemblyScratch {
    /// The planned rows in assembly (arena-coherent) order.
    pub fn slots(&self) -> &[AssemblySlot] {
        &self.slots
    }
}

impl FeatureStore {
    /// Precomputes the store for `instrs` (after `warmup`) over `sweep`,
    /// using all available cores.
    ///
    /// Cost scales with `|d_cfgs| × (|rob ∪ ROB_SWEEP| + |lq| + |sq|)` ROB-model
    /// runs plus cheap width/pipe/frontend analyses (paper §5.2.3's cost
    /// breakdown: the ROB invocations dominate).
    pub fn precompute(
        warmup: &[Instruction],
        instrs: &[Instruction],
        sweep: &SweepConfig,
        profile: &ReproProfile,
    ) -> FeatureStore {
        Self::precompute_threaded(warmup, instrs, sweep, profile, 0)
    }

    /// [`FeatureStore::precompute`] with an explicit thread count (`0` = all
    /// available). Callers that already parallelize across regions (dataset
    /// generation, experiment harnesses) pass `1`; the serving path passes
    /// `0` so a single cold region uses every core. The result is bitwise
    /// identical for any thread count.
    pub fn precompute_threaded(
        warmup: &[Instruction],
        instrs: &[Instruction],
        sweep: &SweepConfig,
        profile: &ReproProfile,
        threads: usize,
    ) -> FeatureStore {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let k = profile.window_k;
        let enc = profile.encoding;
        let e = enc.dim();
        let info = analyze_static(instrs);
        let n = info.len();
        let binfo = analyze_branches(warmup, instrs);

        // Arch-independent: ISB and branch-kind window-count distributions.
        let isb_dist = enc.encode_u32(&window_counts(n, k, |i| info.is_isb[i]));
        let branch_dists = [
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::DirectUncond)
            })),
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::DirectCond)
            })),
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::Indirect)
            })),
        ];

        // Deduplicate memory configurations up front (first occurrence wins,
        // preserving sweep order — the lookup tie-break order).
        let mut d_keys: Vec<DKey> = Vec::new();
        let mut d_cfgs: Vec<MemConfig> = Vec::new();
        let mut seen_d: HashSet<DKey> = HashSet::new();
        for cfg in &sweep.d_cfgs {
            if seen_d.insert(cfg.data_key()) {
                d_keys.push(cfg.data_key());
                d_cfgs.push(*cfg);
            }
        }
        let mut i_keys: Vec<IKey> = Vec::new();
        let mut i_cfgs: Vec<MemConfig> = Vec::new();
        let mut seen_i: HashSet<IKey> = HashSet::new();
        for cfg in &sweep.i_cfgs {
            if seen_i.insert(cfg.inst_key()) {
                i_keys.push(cfg.inst_key());
                i_cfgs.push(*cfg);
            }
        }

        let rob_grid: Vec<u32> = {
            let mut g: Vec<u32> = sweep.rob.iter().copied().chain(ROB_SWEEP).collect();
            g.sort_unstable();
            g.dedup();
            g
        };
        let rob_last = *ROB_SWEEP.last().expect("ROB_SWEEP is non-empty");

        // Stage 1: the per-memory-configuration trace analyses every model
        // run below depends on.
        let datas = parallel_map(d_cfgs.len(), threads, |di| {
            analyze_data(warmup, instrs, d_cfgs[di])
        });
        let insts = parallel_map(i_cfgs.len(), threads, |ii| {
            analyze_inst(warmup, instrs, i_cfgs[ii])
        });

        // Stage 2: one flat task list over every (configuration, sweep
        // point), so even a single-d_cfg store (a serve cache miss) spreads
        // its dominant ROB-model runs across cores.
        #[derive(Clone, Copy)]
        enum Task {
            Mem(usize),
            Rob(usize, usize),
            Lq(usize, usize),
            Sq(usize, usize),
            Width(usize, usize),
            Pipes(usize),
            Fill(usize, usize),
            Buffer(usize, usize),
        }
        let (n_d, n_i) = (d_cfgs.len(), i_cfgs.len());
        let (n_rob, n_lq, n_sq) = (rob_grid.len(), sweep.lq.len(), sweep.sq.len());
        let width_grids: [&[u32]; 3] = [&sweep.alu, &sweep.fp, &sweep.ls];
        let width_classes = [IssueClass::Alu, IssueClass::Fp, IssueClass::LoadStore];
        let mut tasks: Vec<Task> = Vec::new();
        let mem0 = tasks.len();
        tasks.extend((0..n_d).map(Task::Mem));
        let rob0 = tasks.len();
        tasks.extend((0..n_d).flat_map(|d| (0..n_rob).map(move |r| Task::Rob(d, r))));
        let lq0 = tasks.len();
        tasks.extend((0..n_d).flat_map(|d| (0..n_lq).map(move |q| Task::Lq(d, q))));
        let sq0 = tasks.len();
        tasks.extend((0..n_d).flat_map(|d| (0..n_sq).map(move |q| Task::Sq(d, q))));
        let width0 = tasks.len();
        tasks.extend(
            (0..3usize).flat_map(|c| (0..width_grids[c].len()).map(move |w| Task::Width(c, w))),
        );
        let pipes0 = tasks.len();
        tasks.extend((0..sweep.pipes.len()).map(Task::Pipes));
        let fill0 = tasks.len();
        tasks.extend((0..n_i).flat_map(|i| (0..sweep.fills.len()).map(move |v| Task::Fill(i, v))));
        let buf0 = tasks.len();
        tasks.extend(
            (0..n_i).flat_map(|i| (0..sweep.buffers.len()).map(move |v| Task::Buffer(i, v))),
        );

        let run = |t: usize| -> TaskOut {
            match tasks[t] {
                Task::Mem(d) => {
                    // 11th primary feature: per-window mean estimated load
                    // latency — Table 3's resource count is 11 but the paper
                    // does not name all of them; this memory-latency
                    // distribution carries the same information the
                    // L1d/L2/prefetch parameters act on (DESIGN.md).
                    let data = &datas[d];
                    let mut raw = Vec::new();
                    let mut start = 0;
                    while start < n {
                        let end = (start + k).min(n);
                        if end - start < k && !raw.is_empty() {
                            break;
                        }
                        let (mut sum, mut cnt) = (0u64, 0u64);
                        for i in start..end {
                            if info.ops[i].is_load() {
                                sum += u64::from(data.exec_latency[i]);
                                cnt += 1;
                            }
                        }
                        raw.push(if cnt == 0 {
                            0.0
                        } else {
                            sum as f64 / cnt as f64
                        });
                        start = end;
                    }
                    let est = (0..n)
                        .filter(|&i| info.ops[i].is_load())
                        .map(|i| u64::from(data.exec_latency[i]))
                        .sum();
                    TaskOut::Mem {
                        thr: Thr {
                            enc: enc.encode(&raw),
                            raw,
                        },
                        est,
                    }
                }
                Task::Rob(d, ri) => {
                    let rv = rob_grid[ri];
                    let r = rob_model(&info, &datas[d], rv);
                    let raw = throughput_from_marks(&r.commit_cycles, k);
                    let in_sweep = ROB_SWEEP.contains(&rv);
                    TaskOut::Rob {
                        thr: Thr {
                            enc: enc.encode(&raw),
                            raw,
                        },
                        curve: in_sweep.then(|| r.overall_throughput() as f32),
                        issue: in_sweep.then(|| enc.encode_u32(&r.issue_latency)),
                        commit: in_sweep.then(|| enc.encode_u32(&r.commit_latency)),
                        exec: (rv == rob_last).then(|| enc.encode_u32(&r.exec_latency)),
                    }
                }
                Task::Lq(d, qi) => {
                    let marks = queue_model(&info, &datas[d], sweep.lq[qi], QueueKind::Load);
                    let raw = throughput_from_marks(&marks, k);
                    TaskOut::Thr(Thr {
                        enc: enc.encode(&raw),
                        raw,
                    })
                }
                Task::Sq(d, qi) => {
                    let marks = queue_model(&info, &datas[d], sweep.sq[qi], QueueKind::Store);
                    let raw = throughput_from_marks(&marks, k);
                    TaskOut::Thr(Thr {
                        enc: enc.encode(&raw),
                        raw,
                    })
                }
                Task::Width(c, wi) => {
                    let raw = issue_width_bound(&info, width_classes[c], width_grids[c][wi], k);
                    TaskOut::Thr(Thr {
                        enc: enc.encode(&raw),
                        raw,
                    })
                }
                Task::Pipes(p) => {
                    let (lsp, lp) = sweep.pipes[p];
                    let b = pipe_bounds(&info, lsp, lp, k);
                    TaskOut::Pipes {
                        lo: Thr {
                            enc: enc.encode(&b.lower),
                            raw: b.lower,
                        },
                        hi: Thr {
                            enc: enc.encode(&b.upper),
                            raw: b.upper,
                        },
                    }
                }
                Task::Fill(i, vi) => {
                    let marks = icache_fills_model(&info, &insts[i], sweep.fills[vi]);
                    let raw = throughput_from_marks(&marks, k);
                    TaskOut::Thr(Thr {
                        enc: enc.encode(&raw),
                        raw,
                    })
                }
                Task::Buffer(i, vi) => {
                    let marks = fetch_buffers_model(&info, &insts[i], sweep.buffers[vi]);
                    let raw = throughput_from_marks(&marks, k);
                    TaskOut::Thr(Thr {
                        enc: enc.encode(&raw),
                        raw,
                    })
                }
            }
        };
        let mut outs: Vec<Option<TaskOut>> = parallel_map(tasks.len(), threads, run)
            .into_iter()
            .map(Some)
            .collect();
        let mut take = |idx: usize| outs[idx].take().expect("each task consumed once");

        // Deterministic serial fill of the arenas, in grid order, into plain
        // vectors; the lossless `f32` arenas are built at the end (quantized
        // stores come from `reencoded`, never straight from a precompute).
        let s_len = ROB_SWEEP.len();
        let mut n_windows = 0usize;
        let mut rob_enc_v = Vec::with_capacity(n_d * n_rob * e);
        let mut rob_raw_v = Vec::new();
        let mut lq_enc_v = Vec::with_capacity(n_d * n_lq * e);
        let mut lq_raw_v = Vec::new();
        let mut sq_enc_v = Vec::with_capacity(n_d * n_sq * e);
        let mut sq_raw_v = Vec::new();
        let mut mem_enc_v = Vec::with_capacity(n_d * e);
        let mut mem_raw_v = Vec::new();
        let mut alu_enc_v = Vec::new();
        let mut alu_raw_v = Vec::new();
        let mut fp_enc_v = Vec::new();
        let mut fp_raw_v = Vec::new();
        let mut ls_enc_v = Vec::new();
        let mut ls_raw_v = Vec::new();
        let mut pipes_lo_enc_v = Vec::new();
        let mut pipes_lo_raw_v = Vec::new();
        let mut pipes_hi_enc_v = Vec::new();
        let mut pipes_hi_raw_v = Vec::new();
        let mut fills_enc_v = Vec::new();
        let mut fills_raw_v = Vec::new();
        let mut buffers_enc_v = Vec::new();
        let mut buffers_raw_v = Vec::new();
        let mut rob_curve_v = vec![0.0f32; n_d * s_len];
        let mut exec_lat_v = vec![0.0f32; n_d * e];
        let mut issue_lat_v = vec![0.0f32; n_d * s_len * e];
        let mut commit_lat_v = vec![0.0f32; n_d * s_len * e];
        let mut load_exec_est = Vec::with_capacity(n_d);

        let push = |enc_arena: &mut Vec<f32>, raw_arena: &mut Vec<f64>, t: Thr| {
            enc_arena.extend_from_slice(&t.enc);
            raw_arena.extend_from_slice(&t.raw);
            t.raw.len()
        };
        for d in 0..n_d {
            match take(mem0 + d) {
                TaskOut::Mem { thr, est } => {
                    n_windows = push(&mut mem_enc_v, &mut mem_raw_v, thr);
                    load_exec_est.push(est);
                }
                _ => unreachable!("task section mismatch"),
            }
        }
        for d in 0..n_d {
            for (ri, &rv) in rob_grid.iter().enumerate() {
                match take(rob0 + d * n_rob + ri) {
                    TaskOut::Rob {
                        thr,
                        curve,
                        issue,
                        commit,
                        exec,
                    } => {
                        push(&mut rob_enc_v, &mut rob_raw_v, thr);
                        if let Some(j) = ROB_SWEEP.iter().position(|&s| s == rv) {
                            rob_curve_v[d * s_len + j] = curve.expect("curve for sweep point");
                            let at = (d * s_len + j) * e;
                            issue_lat_v[at..at + e]
                                .copy_from_slice(&issue.expect("issue for sweep point"));
                            commit_lat_v[at..at + e]
                                .copy_from_slice(&commit.expect("commit for sweep point"));
                        }
                        if let Some(x) = exec {
                            exec_lat_v[d * e..(d + 1) * e].copy_from_slice(&x);
                        }
                    }
                    _ => unreachable!("task section mismatch"),
                }
            }
            for qi in 0..n_lq {
                let t = take(lq0 + d * n_lq + qi).thr();
                push(&mut lq_enc_v, &mut lq_raw_v, t);
            }
            for qi in 0..n_sq {
                let t = take(sq0 + d * n_sq + qi).thr();
                push(&mut sq_enc_v, &mut sq_raw_v, t);
            }
        }
        let mut w_at = width0;
        for (c, grid) in width_grids.iter().enumerate() {
            for _ in 0..grid.len() {
                let t = take(w_at).thr();
                w_at += 1;
                match c {
                    0 => push(&mut alu_enc_v, &mut alu_raw_v, t),
                    1 => push(&mut fp_enc_v, &mut fp_raw_v, t),
                    _ => push(&mut ls_enc_v, &mut ls_raw_v, t),
                };
            }
        }
        for p in 0..sweep.pipes.len() {
            match take(pipes0 + p) {
                TaskOut::Pipes { lo, hi } => {
                    push(&mut pipes_lo_enc_v, &mut pipes_lo_raw_v, lo);
                    push(&mut pipes_hi_enc_v, &mut pipes_hi_raw_v, hi);
                }
                _ => unreachable!("task section mismatch"),
            }
        }
        for i in 0..n_i {
            for vi in 0..sweep.fills.len() {
                let t = take(fill0 + i * sweep.fills.len() + vi).thr();
                push(&mut fills_enc_v, &mut fills_raw_v, t);
            }
        }
        for i in 0..n_i {
            for vi in 0..sweep.buffers.len() {
                let t = take(buf0 + i * sweep.buffers.len() + vi).thr();
                push(&mut buffers_enc_v, &mut buffers_raw_v, t);
            }
        }

        let ae = ArenaEncoding::F32;
        let ea = |v: &[f32]| EncArena::from_f32(v, e, ae);
        let ra = |v: &[f64]| RawArena::from_f64(v, n_windows.max(1), ae);
        let store = FeatureStore {
            k,
            encoding: enc,
            arena_encoding: ae,
            n_instr: n,
            n_windows,
            rob_grid,
            lq_grid: sweep.lq.clone(),
            sq_grid: sweep.sq.clone(),
            alu_grid: sweep.alu.clone(),
            fp_grid: sweep.fp.clone(),
            ls_grid: sweep.ls.clone(),
            pipes_grid: sweep.pipes.clone(),
            fills_grid: sweep.fills.clone(),
            buffers_grid: sweep.buffers.clone(),
            d_keys,
            i_keys,
            rob_enc: ea(&rob_enc_v),
            rob_raw: ra(&rob_raw_v),
            lq_enc: ea(&lq_enc_v),
            lq_raw: ra(&lq_raw_v),
            sq_enc: ea(&sq_enc_v),
            sq_raw: ra(&sq_raw_v),
            mem_enc: ea(&mem_enc_v),
            mem_raw: ra(&mem_raw_v),
            alu_enc: ea(&alu_enc_v),
            alu_raw: ra(&alu_raw_v),
            fp_enc: ea(&fp_enc_v),
            fp_raw: ra(&fp_raw_v),
            ls_enc: ea(&ls_enc_v),
            ls_raw: ra(&ls_raw_v),
            pipes_lo_enc: ea(&pipes_lo_enc_v),
            pipes_lo_raw: ra(&pipes_lo_raw_v),
            pipes_hi_enc: ea(&pipes_hi_enc_v),
            pipes_hi_raw: ra(&pipes_hi_raw_v),
            fills_enc: ea(&fills_enc_v),
            fills_raw: ra(&fills_raw_v),
            buffers_enc: ea(&buffers_enc_v),
            buffers_raw: ra(&buffers_raw_v),
            rob_curve: EncArena::from_f32(&rob_curve_v, s_len, ae),
            exec_lat: ea(&exec_lat_v),
            issue_lat: ea(&issue_lat_v),
            commit_lat: ea(&commit_lat_v),
            load_exec_est,
            isb_dist: ea(&isb_dist),
            branch_dists: [
                ea(&branch_dists[0]),
                ea(&branch_dists[1]),
                ea(&branch_dists[2]),
            ],
            branch_info_branches: binfo.branches,
            branch_info_cond: binfo.conditional,
            branch_info_tage: binfo.tage_cond_misses,
            branch_info_indirect: binfo.indirect_misses,
        };
        debug_assert!(store.arena_lengths_consistent());
        store
    }

    /// Internal consistency of arena shapes vs grid sizes (used by loads
    /// and debug assertions).
    fn arena_lengths_consistent(&self) -> bool {
        let e = self.encoding.dim();
        let w = self.n_windows;
        let (n_d, n_i, s) = (self.d_keys.len(), self.i_keys.len(), ROB_SWEEP.len());
        let enc_ok = |a: &EncArena, entries: usize| a.stride() == e && a.entries() == entries;
        let raw_ok = |a: &RawArena, entries: usize| {
            a.stride() == w.max(1) && (a.entries() == entries || (w == 0 && a.entries() == 0))
        };
        enc_ok(&self.rob_enc, n_d * self.rob_grid.len())
            && raw_ok(&self.rob_raw, n_d * self.rob_grid.len())
            && enc_ok(&self.lq_enc, n_d * self.lq_grid.len())
            && raw_ok(&self.lq_raw, n_d * self.lq_grid.len())
            && enc_ok(&self.sq_enc, n_d * self.sq_grid.len())
            && raw_ok(&self.sq_raw, n_d * self.sq_grid.len())
            && enc_ok(&self.mem_enc, n_d)
            && raw_ok(&self.mem_raw, n_d)
            && enc_ok(&self.alu_enc, self.alu_grid.len())
            && raw_ok(&self.alu_raw, self.alu_grid.len())
            && enc_ok(&self.fp_enc, self.fp_grid.len())
            && raw_ok(&self.fp_raw, self.fp_grid.len())
            && enc_ok(&self.ls_enc, self.ls_grid.len())
            && raw_ok(&self.ls_raw, self.ls_grid.len())
            && enc_ok(&self.pipes_lo_enc, self.pipes_grid.len())
            && raw_ok(&self.pipes_lo_raw, self.pipes_grid.len())
            && enc_ok(&self.pipes_hi_enc, self.pipes_grid.len())
            && raw_ok(&self.pipes_hi_raw, self.pipes_grid.len())
            && enc_ok(&self.fills_enc, n_i * self.fills_grid.len())
            && raw_ok(&self.fills_raw, n_i * self.fills_grid.len())
            && enc_ok(&self.buffers_enc, n_i * self.buffers_grid.len())
            && raw_ok(&self.buffers_raw, n_i * self.buffers_grid.len())
            && self.rob_curve.stride() == s
            && self.rob_curve.entries() == n_d
            && enc_ok(&self.exec_lat, n_d)
            && enc_ok(&self.issue_lat, n_d * s)
            && enc_ok(&self.commit_lat, n_d * s)
            && self.load_exec_est.len() == n_d
            && enc_ok(&self.isb_dist, 1)
            && self.branch_dists.iter().all(|b| enc_ok(b, 1))
    }

    /// Distribution encoding the store was built with.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// How the store's arenas are encoded in memory (`f32`/`f16`/`int8`).
    pub fn arena_encoding(&self) -> ArenaEncoding {
        self.arena_encoding
    }

    /// Whether the store's arenas are backed by a live `mmap` region.
    pub fn is_mapped(&self) -> bool {
        self.rob_enc.is_mapped()
    }

    /// Re-encodes every arena under `enc` (e.g. to quantize a freshly
    /// precomputed lossless store before caching or writing an artifact).
    /// `F32 → F32` is bit-exact; quantized→quantized re-encodes the
    /// *dequantized* values, so always re-encode from the `F32` original
    /// when one is available.
    pub fn reencoded(&self, enc: ArenaEncoding) -> FeatureStore {
        let ea = |a: &EncArena| EncArena::from_f32(&a.to_f32_vec(), a.stride(), enc);
        let ra = |a: &RawArena| RawArena::from_f64(&a.to_f64_vec(), a.stride(), enc);
        FeatureStore {
            arena_encoding: enc,
            rob_enc: ea(&self.rob_enc),
            rob_raw: ra(&self.rob_raw),
            lq_enc: ea(&self.lq_enc),
            lq_raw: ra(&self.lq_raw),
            sq_enc: ea(&self.sq_enc),
            sq_raw: ra(&self.sq_raw),
            mem_enc: ea(&self.mem_enc),
            mem_raw: ra(&self.mem_raw),
            alu_enc: ea(&self.alu_enc),
            alu_raw: ra(&self.alu_raw),
            fp_enc: ea(&self.fp_enc),
            fp_raw: ra(&self.fp_raw),
            ls_enc: ea(&self.ls_enc),
            ls_raw: ra(&self.ls_raw),
            pipes_lo_enc: ea(&self.pipes_lo_enc),
            pipes_lo_raw: ra(&self.pipes_lo_raw),
            pipes_hi_enc: ea(&self.pipes_hi_enc),
            pipes_hi_raw: ra(&self.pipes_hi_raw),
            fills_enc: ea(&self.fills_enc),
            fills_raw: ra(&self.fills_raw),
            buffers_enc: ea(&self.buffers_enc),
            buffers_raw: ra(&self.buffers_raw),
            rob_curve: ea(&self.rob_curve),
            exec_lat: ea(&self.exec_lat),
            issue_lat: ea(&self.issue_lat),
            commit_lat: ea(&self.commit_lat),
            isb_dist: ea(&self.isb_dist),
            branch_dists: [
                ea(&self.branch_dists[0]),
                ea(&self.branch_dists[1]),
                ea(&self.branch_dists[2]),
            ],
            ..self.clone()
        }
    }

    /// Number of instructions in the analyzed region.
    pub fn n_instr(&self) -> usize {
        self.n_instr
    }

    /// Length of every raw per-window series.
    pub fn n_windows(&self) -> usize {
        self.n_windows
    }

    /// The block-level schema of vectors this store assembles for `variant`,
    /// annotated with the store's arena encoding.
    pub fn schema(&self, variant: FeatureVariant) -> FeatureSchema {
        FeatureSchema::new(self.encoding, variant).with_arena_encoding(self.arena_encoding)
    }

    /// Branch misprediction rate (per instruction ×1000, i.e. MPKI-scaled to
    /// 0..~1) for the architecture's predictor — the §3.2.2 scalar feature.
    pub fn mispredict_feature(&self, predictor: PredictorKind) -> f32 {
        let cond_misses = match predictor {
            PredictorKind::Tage => self.branch_info_tage as f64,
            PredictorKind::Simple { miss_pct } => {
                self.branch_info_cond as f64 * f64::from(miss_pct) / 100.0
            }
        };
        let per_instr =
            (cond_misses + self.branch_info_indirect as f64) / self.n_instr.max(1) as f64;
        (per_instr * 10.0) as f32 // scale ~[0, 1]
    }

    fn d_idx(&self, mem: MemConfig) -> usize {
        nearest_dkey_idx(&self.d_keys, mem.data_key())
    }

    fn i_idx(&self, mem: MemConfig) -> usize {
        nearest_ikey_idx(&self.i_keys, mem.inst_key())
    }

    /// Trace-analysis estimate of the total load execution time under `mem`
    /// (the denominator of Figure 11's discrepancy ratio).
    pub fn load_exec_estimate(&self, mem: MemConfig) -> u64 {
        self.load_exec_est[self.d_idx(mem)]
    }

    /// Arena entry index for `res` under `arch`: nearest grid position on
    /// each axis, combined into the flat table offset.
    fn entry_idx(&self, res: Resource, arch: &MicroArch) -> usize {
        self.entry_idx_with(res, arch, self.d_idx(arch.mem), self.i_idx(arch.mem))
    }

    /// [`FeatureStore::entry_idx`] with precomputed memory-configuration
    /// indices, so assembly resolves `d_idx`/`i_idx` once per vector instead
    /// of once per resource.
    fn entry_idx_with(&self, res: Resource, arch: &MicroArch, di: usize, ii: usize) -> usize {
        match res {
            Resource::Rob => di * self.rob_grid.len() + nearest_idx(&self.rob_grid, arch.rob_size),
            Resource::LoadQueue => {
                di * self.lq_grid.len() + nearest_idx(&self.lq_grid, arch.lq_size)
            }
            Resource::StoreQueue => {
                di * self.sq_grid.len() + nearest_idx(&self.sq_grid, arch.sq_size)
            }
            Resource::AluWidth => nearest_idx(&self.alu_grid, arch.alu_width),
            Resource::FpWidth => nearest_idx(&self.fp_grid, arch.fp_width),
            Resource::LsWidth => nearest_idx(&self.ls_grid, arch.ls_width),
            Resource::PipesLower | Resource::PipesUpper => {
                nearest_pair_idx(&self.pipes_grid, (arch.ls_pipes, arch.load_pipes))
            }
            Resource::IcacheFills => {
                ii * self.fills_grid.len() + nearest_idx(&self.fills_grid, arch.max_icache_fills)
            }
            Resource::FetchBuffers => {
                ii * self.buffers_grid.len() + nearest_idx(&self.buffers_grid, arch.fetch_buffers)
            }
            Resource::MemLatency => di,
        }
    }

    fn raw_arena(&self, res: Resource) -> &RawArena {
        match res {
            Resource::Rob => &self.rob_raw,
            Resource::LoadQueue => &self.lq_raw,
            Resource::StoreQueue => &self.sq_raw,
            Resource::AluWidth => &self.alu_raw,
            Resource::FpWidth => &self.fp_raw,
            Resource::LsWidth => &self.ls_raw,
            Resource::PipesLower => &self.pipes_lo_raw,
            Resource::PipesUpper => &self.pipes_hi_raw,
            Resource::IcacheFills => &self.fills_raw,
            Resource::FetchBuffers => &self.buffers_raw,
            Resource::MemLatency => &self.mem_raw,
        }
    }

    fn enc_arena(&self, res: Resource) -> &EncArena {
        match res {
            Resource::Rob => &self.rob_enc,
            Resource::LoadQueue => &self.lq_enc,
            Resource::StoreQueue => &self.sq_enc,
            Resource::AluWidth => &self.alu_enc,
            Resource::FpWidth => &self.fp_enc,
            Resource::LsWidth => &self.ls_enc,
            Resource::PipesLower => &self.pipes_lo_enc,
            Resource::PipesUpper => &self.pipes_hi_enc,
            Resource::IcacheFills => &self.fills_enc,
            Resource::FetchBuffers => &self.buffers_enc,
            Resource::MemLatency => &self.mem_enc,
        }
    }

    /// Raw per-window throughput-bound series for a resource under `arch`
    /// (used by Figure 1 and the min-bound baseline). Lossless stores borrow
    /// straight from the arena; quantized stores dequantize into an owned
    /// buffer.
    pub fn raw_series(&self, res: Resource, arch: &MicroArch) -> Cow<'_, [f64]> {
        let idx = self.entry_idx(res, arch);
        self.raw_arena(res).series(idx)
    }

    /// Assembles the ML input vector for `arch` under `variant`.
    ///
    /// Layout: 11 primary distributions → misprediction rate → (stall
    /// features → latency distributions, per variant) → 23 parameter dims
    /// (see [`FeatureSchema`]).
    pub fn features(&self, arch: &MicroArch, variant: FeatureVariant) -> Vec<f32> {
        let mut out = vec![0.0f32; FeatureSchema::dim_for(self.encoding, variant)];
        self.features_into(arch, variant, &mut out);
        out
    }

    /// Assembles the ML input vector into `out` with zero heap allocations —
    /// the hot path under `predict_batch*` and the serving workers.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the schema dimension for
    /// `(self.encoding(), variant)`.
    pub fn features_into(&self, arch: &MicroArch, variant: FeatureVariant, out: &mut [f32]) {
        // Resolve the memory-configuration indices once: every d/i-keyed
        // lookup below reuses them instead of rescanning the key lists.
        let di = self.d_idx(arch.mem);
        let ii = self.i_idx(arch.mem);
        self.features_into_at(arch, variant, out, di, ii);
    }

    /// [`FeatureStore::features_into`] with the memory-configuration indices
    /// already resolved — the batched-assembly inner loop.
    fn features_into_at(
        &self,
        arch: &MicroArch,
        variant: FeatureVariant,
        out: &mut [f32],
        di: usize,
        ii: usize,
    ) {
        let e = self.encoding.dim();
        let s_len = ROB_SWEEP.len();
        assert_eq!(
            out.len(),
            FeatureSchema::dim_for(self.encoding, variant),
            "output buffer does not match the schema dimension"
        );
        let mut pos = 0usize;
        for res in Resource::ALL {
            let idx = self.entry_idx_with(res, arch, di, ii);
            self.enc_arena(res).write_entry(idx, &mut out[pos..pos + e]);
            pos += e;
        }
        out[pos] = self.mispredict_feature(arch.predictor);
        pos += 1;
        if variant != FeatureVariant::Base {
            self.isb_dist.write_entry(0, &mut out[pos..pos + e]);
            pos += e;
            for d in &self.branch_dists {
                d.write_entry(0, &mut out[pos..pos + e]);
                pos += e;
            }
            self.rob_curve.write_entry(di, &mut out[pos..pos + s_len]);
            pos += s_len;
        }
        if variant == FeatureVariant::Full {
            self.exec_lat.write_entry(di, &mut out[pos..pos + e]);
            pos += e;
            for j in 0..s_len {
                self.issue_lat
                    .write_entry(di * s_len + j, &mut out[pos..pos + e]);
                pos += e;
            }
            for j in 0..s_len {
                self.commit_lat
                    .write_entry(di * s_len + j, &mut out[pos..pos + e]);
                pos += e;
            }
        }
        arch.encode_into(&mut out[pos..]);
        pos += MicroArch::ENCODED_DIM;
        debug_assert_eq!(pos, out.len());
    }

    /// Assembles the ML input vector for `arch` in **encoded** form — the
    /// fused dequantize-assembly path for int8-weight serving.
    ///
    /// Walks exactly the [`FeatureStore::features_into`] layout, but int8
    /// arena blocks are appended as their raw payload bytes plus per-block
    /// `(scale, offset)` affines instead of being dequantized here; the
    /// consumer ([`concorde_ml::QuantizedMlp::predict_segments`]) folds
    /// dequantization and standardization into the first layer's GEMV, so
    /// an int8-store → int8-model request never materializes the f32
    /// feature vector. `f32`/`f16` blocks and scalar features land as plain
    /// `f32` segments (exactly the values `features_into` produces).
    ///
    /// The buffer is cleared first and its pools keep their capacity, so a
    /// warm buffer assembles with zero heap allocations (pinned by
    /// `tests/fused_alloc.rs`). `buf.materialize()` equals
    /// [`FeatureStore::features`] bit for bit.
    pub fn features_quantized_into(
        &self,
        arch: &MicroArch,
        variant: FeatureVariant,
        buf: &mut concorde_ml::QuantFeatureBuf,
    ) {
        let di = self.d_idx(arch.mem);
        let ii = self.i_idx(arch.mem);
        self.features_quantized_into_at(arch, variant, buf, di, ii);
    }

    /// [`FeatureStore::features_quantized_into`] with the
    /// memory-configuration indices already resolved (see
    /// [`FeatureStore::plan_assembly`]).
    pub(crate) fn features_quantized_into_at(
        &self,
        arch: &MicroArch,
        variant: FeatureVariant,
        buf: &mut concorde_ml::QuantFeatureBuf,
        di: usize,
        ii: usize,
    ) {
        buf.clear();
        let s_len = ROB_SWEEP.len();
        for res in Resource::ALL {
            let idx = self.entry_idx_with(res, arch, di, ii);
            self.enc_arena(res).push_entry_quant(idx, buf);
        }
        buf.push_f32(self.mispredict_feature(arch.predictor));
        if variant != FeatureVariant::Base {
            self.isb_dist.push_entry_quant(0, buf);
            for d in &self.branch_dists {
                d.push_entry_quant(0, buf);
            }
            self.rob_curve.push_entry_quant(di, buf);
        }
        if variant == FeatureVariant::Full {
            self.exec_lat.push_entry_quant(di, buf);
            for j in 0..s_len {
                self.issue_lat.push_entry_quant(di * s_len + j, buf);
            }
            for j in 0..s_len {
                self.commit_lat.push_entry_quant(di * s_len + j, buf);
            }
        }
        buf.push_f32_with(MicroArch::ENCODED_DIM, |out| arch.encode_into(out));
        debug_assert_eq!(buf.len(), FeatureSchema::dim_for(self.encoding, variant));
    }

    /// Computes the per-arch lookup indices for a batch sharing this store
    /// and orders the rows so assembly walks the arenas coherently.
    ///
    /// Each architecture's nearest-grid resolution (`d_idx`/`i_idx` scans
    /// plus the ROB grid position that dominates entry addressing) happens
    /// exactly once here, hoisted out of the per-row assembly loop; rows are
    /// then sorted by `(d_idx, rob_idx, i_idx)` so consecutive rows copy
    /// from adjacent arena blocks instead of striding randomly. The plan is
    /// written into `scratch` (cleared first, capacity kept — warm calls
    /// allocate nothing).
    pub fn plan_assembly(&self, archs: &[MicroArch], scratch: &mut AssemblyScratch) {
        scratch.slots.clear();
        scratch.slots.reserve(archs.len());
        for (row, arch) in archs.iter().enumerate() {
            scratch.slots.push(AssemblySlot {
                row: row as u32,
                di: self.d_idx(arch.mem) as u32,
                ii: self.i_idx(arch.mem) as u32,
                rob_idx: nearest_idx(&self.rob_grid, arch.rob_size) as u32,
            });
        }
        scratch
            .slots
            .sort_unstable_by_key(|s| (s.di, s.rob_idx, s.ii));
    }

    /// Batched [`FeatureStore::features_into`]: assembles one row per
    /// architecture into the row-major `out` buffer (`archs.len() × dim`).
    ///
    /// Rows land at their original positions, but are *visited* in the
    /// [`FeatureStore::plan_assembly`] order, with each row's layout math
    /// resolved once up front — output bits are identical to calling
    /// `features_into` per row.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != archs.len() * dim` for the schema dimension.
    pub fn features_into_many(
        &self,
        archs: &[MicroArch],
        variant: FeatureVariant,
        out: &mut [f32],
        scratch: &mut AssemblyScratch,
    ) {
        let dim = FeatureSchema::dim_for(self.encoding, variant);
        assert_eq!(
            out.len(),
            archs.len() * dim,
            "output buffer does not match archs.len() × schema dimension"
        );
        self.plan_assembly(archs, scratch);
        for slot in &scratch.slots {
            let row = slot.row as usize;
            self.features_into_at(
                &archs[row],
                variant,
                &mut out[row * dim..(row + 1) * dim],
                slot.di as usize,
                slot.ii as usize,
            );
        }
    }

    /// The pure-analytical CPI estimate: per window, take the minimum of all
    /// per-resource throughput bounds (and the static widths), then average
    /// window CPIs (the pink "min bound" line of Figure 12).
    ///
    /// The combination is shared with
    /// [`MinBoundEstimator`](crate::minbound::MinBoundEstimator), the
    /// store-free fast path: for an architecture exactly on this store's
    /// grid the two are bitwise identical.
    pub fn min_bound_cpi(&self, arch: &MicroArch) -> f64 {
        let series: [Cow<'_, [f64]>; 9] = [
            self.raw_series(Resource::Rob, arch),
            self.raw_series(Resource::LoadQueue, arch),
            self.raw_series(Resource::StoreQueue, arch),
            self.raw_series(Resource::AluWidth, arch),
            self.raw_series(Resource::FpWidth, arch),
            self.raw_series(Resource::LsWidth, arch),
            self.raw_series(Resource::PipesUpper, arch),
            self.raw_series(Resource::IcacheFills, arch),
            self.raw_series(Resource::FetchBuffers, arch),
        ];
        crate::minbound::combine_min_bound(&series.each_ref().map(|s| s.as_ref()), arch)
    }

    fn enc_arenas(&self) -> [&EncArena; 14] {
        [
            &self.rob_enc,
            &self.lq_enc,
            &self.sq_enc,
            &self.fills_enc,
            &self.buffers_enc,
            &self.alu_enc,
            &self.fp_enc,
            &self.ls_enc,
            &self.pipes_lo_enc,
            &self.pipes_hi_enc,
            &self.mem_enc,
            &self.issue_lat,
            &self.commit_lat,
            &self.exec_lat,
        ]
    }

    fn raw_arenas(&self) -> [&RawArena; 11] {
        [
            &self.rob_raw,
            &self.lq_raw,
            &self.sq_raw,
            &self.fills_raw,
            &self.buffers_raw,
            &self.alu_raw,
            &self.fp_raw,
            &self.ls_raw,
            &self.pipes_lo_raw,
            &self.pipes_hi_raw,
            &self.mem_raw,
        ]
    }

    /// In-memory footprint of the encoded features (bytes) under the store's
    /// arena encoding — the §5.2.3 "precomputed performance features occupy…"
    /// statistic. Quantized stores report their *quantized* payload (plus
    /// dequantization params), so the cache byte budget admits what is
    /// actually resident.
    pub fn encoded_bytes(&self) -> usize {
        self.enc_arenas().iter().map(|a| a.payload_bytes()).sum()
    }

    /// What [`FeatureStore::encoded_bytes`] would be at lossless `f32` — the
    /// denominator of the compression ratio `concorde inspect` reports.
    pub fn encoded_bytes_f32(&self) -> usize {
        self.enc_arenas().iter().map(|a| a.f32_bytes()).sum()
    }

    /// Total approximate in-memory footprint of the store (bytes): every
    /// encoded arena, raw series, grid, latency table, and distribution plus
    /// the struct header — all at their *quantized* sizes. This is the
    /// statistic the serving cache's byte budget (`--cache-bytes`) admits
    /// against, so an `int8` store packs ~4× more regions under the same
    /// budget than its `f32` original.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        size_of::<Self>()
            + self.encoded_bytes()
            + self.raw_bytes()
            + size_of_val(&self.rob_grid[..])
            + size_of_val(&self.lq_grid[..])
            + size_of_val(&self.sq_grid[..])
            + size_of_val(&self.alu_grid[..])
            + size_of_val(&self.fp_grid[..])
            + size_of_val(&self.ls_grid[..])
            + size_of_val(&self.pipes_grid[..])
            + size_of_val(&self.fills_grid[..])
            + size_of_val(&self.buffers_grid[..])
            + size_of_val(&self.d_keys[..])
            + size_of_val(&self.i_keys[..])
            + self.rob_curve.payload_bytes()
            + size_of_val(&self.load_exec_est[..])
            + self.isb_dist.payload_bytes()
            + self
                .branch_dists
                .iter()
                .map(|d| d.payload_bytes())
                .sum::<usize>()
    }

    /// Every arena payload byte that lives in the backing region for a
    /// mapped store (the part of [`FeatureStore::approx_bytes`] that is
    /// virtual, not owned, after an mmap load).
    fn arena_payload_bytes(&self) -> usize {
        self.encoded_bytes()
            + self.raw_bytes()
            + self.rob_curve.payload_bytes()
            + self.isb_dist.payload_bytes()
            + self
                .branch_dists
                .iter()
                .map(|d| d.payload_bytes())
                .sum::<usize>()
    }

    /// Bytes the serving cache should charge for admitting this store.
    ///
    /// Owned stores charge their full approximate footprint
    /// ([`FeatureStore::approx_bytes`]) — every byte is heap-resident. For
    /// `mmap`-backed stores the arena payloads are virtual, paged in on
    /// first touch, so charging the full payload would evict real stores to
    /// make room for bytes that may never exist: instead the mapped region
    /// is charged at its **resident-page estimate**
    /// ([`MappedStore::resident_bytes`], `mincore(2)`), plus the owned
    /// parsing overhead (grids, keys, struct). The estimate is taken at
    /// admission time; it can only over-count relative to a later page-out,
    /// which is the safe direction for a byte budget.
    ///
    /// The resident charge is capped at the arena payload total: the region
    /// also spans the artifact header and serialized grids, whose parsed
    /// copies the owned overhead already counts, so a fully-resident mapping
    /// admits at exactly `approx_bytes` — never above it.
    pub fn admission_bytes(&self) -> usize {
        if !self.is_mapped() {
            return self.approx_bytes();
        }
        let payload = self.arena_payload_bytes();
        let owned = self.approx_bytes().saturating_sub(payload);
        let (data, _) = self.rob_enc.raw_parts();
        owned + data.region().resident_bytes().min(payload)
    }

    /// Total raw-series footprint (bytes) at the store's arena encoding: the
    /// part of the store a serving deployment carries for the min-bound
    /// baseline.
    pub fn raw_bytes(&self) -> usize {
        self.raw_arenas().iter().map(|a| a.payload_bytes()).sum()
    }

    /// What [`FeatureStore::raw_bytes`] would be at lossless `f64`.
    pub fn raw_bytes_f64(&self) -> usize {
        self.raw_arenas().iter().map(|a| a.f64_bytes()).sum()
    }
}

// ---------------------------------------------------------------------------
// Compact binary artifact serialization (layout v3).
// ---------------------------------------------------------------------------

/// Magic bytes opening a serialized [`FeatureStore`] (layout v3: pluggable
/// arena encoding, 8-byte-aligned arena payloads for zero-copy mmap loads).
pub const STORE_MAGIC: [u8; 4] = *b"CFS\x03";

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32s(buf: &mut Vec<u8>, xs: &[u32]) {
    put_u64(buf, xs.len() as u64);
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_u64s(buf: &mut Vec<u8>, xs: &[u64]) {
    put_u64(buf, xs.len() as u64);
    for &x in xs {
        buf.extend_from_slice(&x.to_le_bytes());
    }
}

/// Zero-pads `buf` to the next 8-byte boundary (relative to the store base,
/// which the artifact container places at an 8-aligned file offset; the
/// container writer reuses this to establish that offset).
pub(crate) fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

/// One arena record: `stride | entries | data_len | pad⁸ | data |
/// params_len | pad⁸ | params`. The pads make every payload 8-byte aligned
/// within the store blob, so a mapped load can point arenas straight into
/// the file.
fn put_arena(buf: &mut Vec<u8>, stride: usize, entries: usize, data: &Buf, params: &Buf) {
    put_u64(buf, stride as u64);
    put_u64(buf, entries as u64);
    let data = data.bytes();
    put_u64(buf, data.len() as u64);
    pad8(buf);
    buf.extend_from_slice(data);
    let params = params.bytes();
    put_u64(buf, params.len() as u64);
    pad8(buf);
    buf.extend_from_slice(params);
}

fn put_enc_arena(buf: &mut Vec<u8>, a: &EncArena) {
    let (data, params) = a.raw_parts();
    put_arena(buf, a.stride(), a.entries(), data, params);
}

fn put_raw_arena(buf: &mut Vec<u8>, a: &RawArena) {
    let (data, params) = a.raw_parts();
    put_arena(buf, a.stride(), a.entries(), data, params);
}

/// Bounded little-endian reader over a byte slice.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    at: usize,
}

fn truncated() -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated store artifact")
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, at: 0 }
    }

    pub(crate) fn bytes(&mut self, n: usize) -> std::io::Result<&'a [u8]> {
        let end = self.at.checked_add(n).ok_or_else(truncated)?;
        if end > self.buf.len() {
            return Err(truncated());
        }
        let out = &self.buf[self.at..end];
        self.at = end;
        Ok(out)
    }

    pub(crate) fn u32(&mut self) -> std::io::Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> std::io::Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn len_prefix(&mut self, elem_bytes: usize) -> std::io::Result<usize> {
        let n = self.u64()? as usize;
        // Reject lengths that cannot fit in the remaining input before
        // allocating (a corrupt header must not trigger an OOM).
        if n.checked_mul(elem_bytes).ok_or_else(truncated)? > self.buf.len() - self.at {
            return Err(truncated());
        }
        Ok(n)
    }

    fn u32s(&mut self) -> std::io::Result<Vec<u32>> {
        let n = self.len_prefix(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn u64s(&mut self) -> std::io::Result<Vec<u64>> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Current offset from the start of the slice.
    pub(crate) fn pos(&self) -> usize {
        self.at
    }

    /// Skips to the next 8-byte boundary (the writer's `pad8`).
    pub(crate) fn align8(&mut self) -> std::io::Result<()> {
        let rem = self.at % 8;
        if rem != 0 {
            self.bytes(8 - rem)?;
        }
        Ok(())
    }
}

/// Reads one arena record written by `put_arena`, returning views into
/// `region` (offsets are absolute: `base` + the reader's position).
fn read_arena_views(
    r: &mut ByteReader,
    region: &Arc<MappedStore>,
    base: usize,
) -> std::io::Result<(usize, usize, Buf, Buf)> {
    let stride = r.u64()? as usize;
    let entries = r.u64()? as usize;
    let data_len = r.u64()? as usize;
    r.align8()?;
    let data_off = base + r.pos();
    r.bytes(data_len)?;
    let params_len = r.u64()? as usize;
    r.align8()?;
    let params_off = base + r.pos();
    r.bytes(params_len)?;
    Ok((
        stride,
        entries,
        Buf::view(region, data_off, data_len),
        Buf::view(region, params_off, params_len),
    ))
}

fn read_enc_arena(
    r: &mut ByteReader,
    region: &Arc<MappedStore>,
    base: usize,
    enc: ArenaEncoding,
) -> std::io::Result<EncArena> {
    let (stride, entries, data, params) = read_arena_views(r, region, base)?;
    EncArena::from_views(enc, stride, entries, data, params)
}

fn read_raw_arena(
    r: &mut ByteReader,
    region: &Arc<MappedStore>,
    base: usize,
    enc: ArenaEncoding,
) -> std::io::Result<RawArena> {
    let (stride, entries, data, params) = read_arena_views(r, region, base)?;
    RawArena::from_views(enc, stride, entries, data, params)
}

impl FeatureStore {
    /// Serializes the store to the compact binary artifact layout v3
    /// (little-endian; bit-exact for every value under the store's arena
    /// encoding; arena payloads padded to 8-byte boundaries so a mapped
    /// load can reference them in place).
    ///
    /// The field order here is the wire contract: [`FeatureStore::parse`]
    /// reads the same sequence. Any reorder must change both lists together
    /// — the `artifact_roundtrip_is_bitwise_identical` golden test compares
    /// features of a loaded store against the original, so a writer/reader
    /// mismatch fails loudly there.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.encoded_bytes() + self.raw_bytes() * 2);
        buf.extend_from_slice(&STORE_MAGIC);
        buf.extend_from_slice(&(self.arena_encoding.tag() as u32).to_le_bytes());
        put_u64(&mut buf, self.k as u64);
        put_u64(&mut buf, self.encoding.levels as u64);
        put_u64(&mut buf, self.n_instr as u64);
        put_u64(&mut buf, self.n_windows as u64);
        for v in [
            self.branch_info_branches,
            self.branch_info_cond,
            self.branch_info_tage,
            self.branch_info_indirect,
        ] {
            put_u64(&mut buf, v);
        }
        for g in [
            &self.rob_grid,
            &self.lq_grid,
            &self.sq_grid,
            &self.alu_grid,
            &self.fp_grid,
            &self.ls_grid,
            &self.fills_grid,
            &self.buffers_grid,
        ] {
            put_u32s(&mut buf, g);
        }
        let pipes_flat: Vec<u32> = self.pipes_grid.iter().flat_map(|&(a, b)| [a, b]).collect();
        put_u32s(&mut buf, &pipes_flat);
        let d_flat: Vec<u32> = self
            .d_keys
            .iter()
            .flat_map(|&(a, b, c)| [a, b, c])
            .collect();
        put_u32s(&mut buf, &d_flat);
        let i_flat: Vec<u32> = self.i_keys.iter().flat_map(|&(a, b)| [a, b]).collect();
        put_u32s(&mut buf, &i_flat);
        put_u64s(&mut buf, &self.load_exec_est);
        for a in [
            &self.rob_enc,
            &self.lq_enc,
            &self.sq_enc,
            &self.mem_enc,
            &self.alu_enc,
            &self.fp_enc,
            &self.ls_enc,
            &self.pipes_lo_enc,
            &self.pipes_hi_enc,
            &self.fills_enc,
            &self.buffers_enc,
            &self.rob_curve,
            &self.exec_lat,
            &self.issue_lat,
            &self.commit_lat,
            &self.isb_dist,
            &self.branch_dists[0],
            &self.branch_dists[1],
            &self.branch_dists[2],
        ] {
            put_enc_arena(&mut buf, a);
        }
        for a in [
            &self.rob_raw,
            &self.lq_raw,
            &self.sq_raw,
            &self.mem_raw,
            &self.alu_raw,
            &self.fp_raw,
            &self.ls_raw,
            &self.pipes_lo_raw,
            &self.pipes_hi_raw,
            &self.fills_raw,
            &self.buffers_raw,
        ] {
            put_raw_arena(&mut buf, a);
        }
        buf
    }

    /// Deserializes a store written by [`FeatureStore::to_bytes`], copying
    /// the payload once into an owned aligned region. Use
    /// [`FeatureStore::parse`] with a mapped region for zero-copy loads.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, truncation, or inconsistent arena
    /// lengths.
    pub fn from_bytes(bytes: &[u8]) -> std::io::Result<FeatureStore> {
        Self::parse(&MappedStore::from_bytes(bytes), 0)
    }

    /// Parses a store blob starting at `base` within a shared region,
    /// backing every arena by a view into it — **no arena bytes are copied**.
    /// `base` must be 8-byte aligned (the artifact container pads to
    /// guarantee this), so the writer's payload padding holds absolutely.
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic, unknown arena encoding, truncation,
    /// misalignment, or inconsistent arena shapes.
    pub fn parse(region: &Arc<MappedStore>, base: usize) -> std::io::Result<FeatureStore> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        if !base.is_multiple_of(8) || base > region.bytes().len() {
            return Err(bad("store blob is not 8-byte aligned within its region"));
        }
        let mut r = ByteReader::new(&region.bytes()[base..]);
        if r.bytes(4)? != STORE_MAGIC {
            return Err(bad(
                "not a Concorde feature-store blob (bad magic; layout v3 is `CFS\\x03` — \
                 re-run `concorde precompute` for older artifacts)",
            ));
        }
        let arena_encoding = ArenaEncoding::from_tag(u64::from(r.u32()?))
            .ok_or_else(|| bad("store blob declares an unknown arena encoding"))?;
        let k = r.u64()? as usize;
        let levels = r.u64()? as usize;
        let n_instr = r.u64()? as usize;
        let n_windows = r.u64()? as usize;
        let branch_info_branches = r.u64()?;
        let branch_info_cond = r.u64()?;
        let branch_info_tage = r.u64()?;
        let branch_info_indirect = r.u64()?;
        let rob_grid = r.u32s()?;
        let lq_grid = r.u32s()?;
        let sq_grid = r.u32s()?;
        let alu_grid = r.u32s()?;
        let fp_grid = r.u32s()?;
        let ls_grid = r.u32s()?;
        let fills_grid = r.u32s()?;
        let buffers_grid = r.u32s()?;
        let pipes_flat = r.u32s()?;
        if !pipes_flat.len().is_multiple_of(2) {
            return Err(truncated());
        }
        let pipes_grid = pipes_flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let d_flat = r.u32s()?;
        if !d_flat.len().is_multiple_of(3) {
            return Err(truncated());
        }
        let d_keys = d_flat.chunks_exact(3).map(|c| (c[0], c[1], c[2])).collect();
        let i_flat = r.u32s()?;
        if !i_flat.len().is_multiple_of(2) {
            return Err(truncated());
        }
        let i_keys = i_flat.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let load_exec_est = r.u64s()?;
        let enc_a = |r: &mut ByteReader| read_enc_arena(r, region, base, arena_encoding);
        let rob_enc = enc_a(&mut r)?;
        let lq_enc = enc_a(&mut r)?;
        let sq_enc = enc_a(&mut r)?;
        let mem_enc = enc_a(&mut r)?;
        let alu_enc = enc_a(&mut r)?;
        let fp_enc = enc_a(&mut r)?;
        let ls_enc = enc_a(&mut r)?;
        let pipes_lo_enc = enc_a(&mut r)?;
        let pipes_hi_enc = enc_a(&mut r)?;
        let fills_enc = enc_a(&mut r)?;
        let buffers_enc = enc_a(&mut r)?;
        let rob_curve = enc_a(&mut r)?;
        let exec_lat = enc_a(&mut r)?;
        let issue_lat = enc_a(&mut r)?;
        let commit_lat = enc_a(&mut r)?;
        let isb_dist = enc_a(&mut r)?;
        let branch_dists = [enc_a(&mut r)?, enc_a(&mut r)?, enc_a(&mut r)?];
        let raw_a = |r: &mut ByteReader| read_raw_arena(r, region, base, arena_encoding);
        let rob_raw = raw_a(&mut r)?;
        let lq_raw = raw_a(&mut r)?;
        let sq_raw = raw_a(&mut r)?;
        let mem_raw = raw_a(&mut r)?;
        let alu_raw = raw_a(&mut r)?;
        let fp_raw = raw_a(&mut r)?;
        let ls_raw = raw_a(&mut r)?;
        let pipes_lo_raw = raw_a(&mut r)?;
        let pipes_hi_raw = raw_a(&mut r)?;
        let fills_raw = raw_a(&mut r)?;
        let buffers_raw = raw_a(&mut r)?;
        let store = FeatureStore {
            k,
            encoding: Encoding { levels },
            arena_encoding,
            n_instr,
            n_windows,
            rob_grid,
            lq_grid,
            sq_grid,
            alu_grid,
            fp_grid,
            ls_grid,
            pipes_grid,
            fills_grid,
            buffers_grid,
            d_keys,
            i_keys,
            rob_enc,
            rob_raw,
            lq_enc,
            lq_raw,
            sq_enc,
            sq_raw,
            mem_enc,
            mem_raw,
            alu_enc,
            alu_raw,
            fp_enc,
            fp_raw,
            ls_enc,
            ls_raw,
            pipes_lo_enc,
            pipes_lo_raw,
            pipes_hi_enc,
            pipes_hi_raw,
            fills_enc,
            fills_raw,
            buffers_enc,
            buffers_raw,
            rob_curve,
            exec_lat,
            issue_lat,
            commit_lat,
            load_exec_est,
            isb_dist,
            branch_dists,
            branch_info_branches,
            branch_info_cond,
            branch_info_tage,
            branch_info_indirect,
        };
        if !store.arena_lengths_consistent() {
            return Err(bad(
                "store artifact arena shapes are inconsistent with its grids",
            ));
        }
        // Lookups assume non-empty grids and key lists (a precompute always
        // produces them); reject degenerate artifacts at load time rather
        // than panicking inside `nearest_*` on the first matching request.
        if store.d_keys.is_empty()
            || store.i_keys.is_empty()
            || store.rob_grid.is_empty()
            || store.lq_grid.is_empty()
            || store.sq_grid.is_empty()
            || store.alu_grid.is_empty()
            || store.fp_grid.is_empty()
            || store.ls_grid.is_empty()
            || store.pipes_grid.is_empty()
            || store.fills_grid.is_empty()
            || store.buffers_grid.is_empty()
        {
            return Err(bad(
                "store artifact has an empty sweep grid or memory-key list",
            ));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ReproProfile;
    use concorde_trace::{by_id, generate_region};

    fn quick_store(arch: &MicroArch) -> FeatureStore {
        let profile = ReproProfile::quick();
        let full = generate_region(
            &by_id("S5").unwrap(),
            0,
            0,
            profile.warmup_len + profile.region_len,
        )
        .instrs;
        let (w, r) = full.split_at(profile.warmup_len);
        FeatureStore::precompute(w, r, &SweepConfig::for_arch(arch), &profile)
    }

    #[test]
    fn layout_dims_match_paper_formula() {
        let paper = FeatureLayout {
            encoding: Encoding::paper(),
            variant: FeatureVariant::Full,
        };
        // 11×101 + (4×101 + 1 + 11) + 23×101 + 23 = 3873 (Table 3).
        assert_eq!(paper.dim(), 3873);
        let base = FeatureLayout {
            encoding: Encoding::paper(),
            variant: FeatureVariant::Base,
        };
        assert_eq!(base.dim(), 11 * 101 + 1 + 23);
    }

    #[test]
    fn features_have_declared_dims_for_all_variants() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        for v in [
            FeatureVariant::Base,
            FeatureVariant::BaseBranch,
            FeatureVariant::Full,
        ] {
            let f = store.features(&arch, v);
            assert_eq!(
                f.len(),
                FeatureLayout {
                    encoding: Encoding { levels: 8 },
                    variant: v
                }
                .dim()
            );
            assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn features_into_matches_features_bitwise() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let mut off = arch;
        off.rob_size = 77;
        off.mem.l1d_kb = 48;
        for a in [arch, off] {
            for v in [
                FeatureVariant::Base,
                FeatureVariant::BaseBranch,
                FeatureVariant::Full,
            ] {
                let alloc = store.features(&a, v);
                let mut buf = vec![7.0f32; alloc.len()];
                store.features_into(&a, v, &mut buf);
                assert_eq!(
                    alloc.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    buf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{v:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "schema dimension")]
    fn features_into_rejects_misshapen_buffers() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let mut buf = vec![0.0f32; 3];
        store.features_into(&arch, FeatureVariant::Base, &mut buf);
    }

    #[test]
    fn quantization_finds_nearest_grid_point() {
        assert_eq!(nearest_idx(&[1, 2, 4, 8], 3), 2);
        assert_eq!(nearest_idx(&[1, 2, 4, 8], 5), 2);
        assert_eq!(nearest_idx(&[1, 2, 4, 8], 7), 3);
        assert_eq!(nearest_idx(&[16, 64, 256], 100), 1);
        assert_eq!(nearest_pair_idx(&[(2, 0), (8, 8)], (3, 1)), 0);
    }

    #[test]
    fn min_bound_is_a_plausible_lower_cpi_estimate() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let cpi = store.min_bound_cpi(&arch);
        assert!(cpi > 0.05 && cpi < 100.0, "min-bound CPI {cpi}");
        // A maximally wide machine should have a lower (or equal) bound CPI.
        let big = MicroArch::big_core();
        let store_big = quick_store(&big);
        assert!(store_big.min_bound_cpi(&big) <= cpi * 1.5);
    }

    #[test]
    fn mispredict_feature_orders_predictors() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let perfect = store.mispredict_feature(PredictorKind::Simple { miss_pct: 0 });
        let tage = store.mispredict_feature(PredictorKind::Tage);
        let awful = store.mispredict_feature(PredictorKind::Simple { miss_pct: 100 });
        assert!(perfect <= tage && tage <= awful);
    }

    #[test]
    fn raw_series_nonempty_for_all_resources() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        for r in Resource::ALL {
            assert!(!store.raw_series(r, &arch).is_empty(), "{r:?}");
        }
        assert!(store.encoded_bytes() > 0);
        assert!(store.raw_bytes() > 0);
        // The full footprint strictly dominates its encoded + raw parts
        // (grids, curves, and distributions all contribute).
        assert!(store.approx_bytes() > store.encoded_bytes() + store.raw_bytes());
    }

    #[test]
    fn threaded_precompute_is_bitwise_deterministic() {
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let full = generate_region(&by_id("S5").unwrap(), 0, 0, 6_000).instrs;
        let (w, r) = full.split_at(2_000);
        let sweep = SweepConfig::for_pair(&MicroArch::big_core(), &arch);
        let serial = FeatureStore::precompute_threaded(w, r, &sweep, &profile, 1);
        let par = FeatureStore::precompute_threaded(w, r, &sweep, &profile, 4);
        assert_eq!(serial.to_bytes(), par.to_bytes());
    }

    #[test]
    fn duplicate_sweep_configs_are_deduplicated() {
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let mut sweep = SweepConfig::for_arch(&arch);
        sweep.d_cfgs.push(sweep.d_cfgs[0]);
        sweep.d_cfgs.push(sweep.d_cfgs[0]);
        sweep.i_cfgs.push(sweep.i_cfgs[0]);
        let full = generate_region(&by_id("S5").unwrap(), 0, 0, 4_096).instrs;
        let (w, r) = full.split_at(2_048);
        let store = FeatureStore::precompute(w, r, &sweep, &profile);
        assert_eq!(store.d_keys.len(), 1);
        assert_eq!(store.i_keys.len(), 1);
    }

    #[test]
    fn binary_roundtrip_is_bitwise_identical() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let bytes = store.to_bytes();
        let back = FeatureStore::from_bytes(&bytes).unwrap();
        assert_eq!(bytes, back.to_bytes());
        let a = store.features(&arch, FeatureVariant::Full);
        let b = back.features(&arch, FeatureVariant::Full);
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(store.min_bound_cpi(&arch), back.min_bound_cpi(&arch));
    }

    #[test]
    fn corrupt_artifacts_are_rejected() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let bytes = store.to_bytes();
        assert!(FeatureStore::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(FeatureStore::from_bytes(b"nope").is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(FeatureStore::from_bytes(&bad_magic).is_err());
    }
}
