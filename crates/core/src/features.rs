//! Performance-distribution features: precomputation, storage, and assembly.
//!
//! This is Concorde's central data structure. A [`FeatureStore`] holds, for
//! one program region, the encoded per-resource throughput distributions for
//! every parameter value in a [`SweepConfig`] (paper §3.2.1), the auxiliary
//! pipeline-stall and latency-distribution features (§3.2.2), and enough raw
//! series for the no-ML minimum-bound baseline and Figure 1. Given any
//! microarchitecture whose values fall on (or near — lookups quantize to the
//! nearest grid point) the sweep, [`FeatureStore::features`] assembles the ML
//! model's input vector in microseconds, which is what makes design-space
//! sweeps and Shapley attribution cheap.

use std::collections::HashMap;

use concorde_analytic::prelude::*;
use concorde_branch::PredictorKind;
use concorde_cache::MemConfig;
use concorde_cyclesim::MicroArch;
use concorde_trace::{BranchKind, Instruction};
use serde::{Deserialize, Serialize};

use crate::sweep::{ReproProfile, SweepConfig};

/// Which feature groups feed the ML model (the Figure 12 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureVariant {
    /// Per-resource throughput distributions + misprediction rate + parameters.
    Base,
    /// `Base` plus the pipeline-stall features (§3.2.2).
    BaseBranch,
    /// `BaseBranch` plus the latency distributions (§3.2.2) — full Concorde.
    Full,
}

/// The 11 per-resource primary distributions, in feature order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Resource {
    Rob,
    LoadQueue,
    StoreQueue,
    AluWidth,
    FpWidth,
    LsWidth,
    PipesLower,
    PipesUpper,
    IcacheFills,
    FetchBuffers,
    MemLatency,
}

impl Resource {
    /// All primary resources in feature order.
    pub const ALL: [Resource; 11] = [
        Resource::Rob,
        Resource::LoadQueue,
        Resource::StoreQueue,
        Resource::AluWidth,
        Resource::FpWidth,
        Resource::LsWidth,
        Resource::PipesLower,
        Resource::PipesUpper,
        Resource::IcacheFills,
        Resource::FetchBuffers,
        Resource::MemLatency,
    ];
}

/// Feature-vector layout for a variant and encoding width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureLayout {
    /// Distribution encoding.
    pub encoding: Encoding,
    /// Feature groups included.
    pub variant: FeatureVariant,
}

impl FeatureLayout {
    /// Total input dimension (paper Table 3 computes 3873 for the paper
    /// encoding and the `Full` variant).
    pub fn dim(&self) -> usize {
        let e = self.encoding.dim();
        let base = 11 * e + 1 + MicroArch::ENCODED_DIM;
        match self.variant {
            FeatureVariant::Base => base,
            FeatureVariant::BaseBranch => base + 4 * e + 11,
            FeatureVariant::Full => base + 4 * e + 11 + 23 * e,
        }
    }
}

type DKey = (u32, u32, u32);
type IKey = (u32, u32);

/// A stored throughput distribution: encoded features plus the raw window
/// series (for the min-bound baseline and Figure 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrEntry {
    /// Percentile-encoded distribution.
    pub enc: Vec<f32>,
    /// Raw per-window throughput bounds.
    pub raw: Vec<f64>,
}

/// Precomputed performance distributions for one region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureStore {
    k: usize,
    encoding: Encoding,
    n_instr: usize,
    rob_thr: HashMap<(DKey, u32), ThrEntry>,
    lq_thr: HashMap<(DKey, u32), ThrEntry>,
    sq_thr: HashMap<(DKey, u32), ThrEntry>,
    rob_curve: HashMap<DKey, Vec<f32>>,
    exec_lat: HashMap<DKey, Vec<f32>>,
    issue_lat: HashMap<(DKey, u32), Vec<f32>>,
    commit_lat: HashMap<(DKey, u32), Vec<f32>>,
    mem_lat: HashMap<DKey, ThrEntry>,
    load_exec_est: HashMap<DKey, u64>,
    alu_thr: HashMap<u32, ThrEntry>,
    fp_thr: HashMap<u32, ThrEntry>,
    ls_thr: HashMap<u32, ThrEntry>,
    pipes_lo: HashMap<(u32, u32), ThrEntry>,
    pipes_hi: HashMap<(u32, u32), ThrEntry>,
    fills_thr: HashMap<(IKey, u32), ThrEntry>,
    buffers_thr: HashMap<(IKey, u32), ThrEntry>,
    isb_dist: Vec<f32>,
    branch_dists: [Vec<f32>; 3],
    branch_info_branches: u64,
    branch_info_cond: u64,
    branch_info_tage: u64,
    branch_info_indirect: u64,
    rob_grid: Vec<u32>,
    lq_grid: Vec<u32>,
    sq_grid: Vec<u32>,
    alu_grid: Vec<u32>,
    fp_grid: Vec<u32>,
    ls_grid: Vec<u32>,
    pipes_grid: Vec<(u32, u32)>,
    fills_grid: Vec<u32>,
    buffers_grid: Vec<u32>,
    d_keys: Vec<DKey>,
    i_keys: Vec<IKey>,
}

fn nearest(grid: &[u32], v: u32) -> u32 {
    *grid
        .iter()
        .min_by_key(|&&g| {
            // Ratio distance in fixed point, robust for size-like parameters.
            let (a, b) = (g.max(1) as u64, v.max(1) as u64);
            let (hi, lo) = if a > b { (a, b) } else { (b, a) };
            (hi * 1024 / lo, hi)
        })
        .expect("grid must be non-empty")
}

fn nearest_pair(grid: &[(u32, u32)], v: (u32, u32)) -> (u32, u32) {
    *grid
        .iter()
        .min_by_key(|&&(a, b)| {
            let d1 = (i64::from(a) - i64::from(v.0)).abs();
            let d2 = (i64::from(b) - i64::from(v.1)).abs();
            (d1 + d2, a, b)
        })
        .expect("pipes grid must be non-empty")
}

fn nearest_dkey(keys: &[DKey], v: DKey) -> DKey {
    *keys
        .iter()
        .min_by_key(|&&(a, b, c)| {
            (
                (i64::from(a) - i64::from(v.0)).abs(),
                (i64::from(b) - i64::from(v.1)).abs(),
                (i64::from(c) - i64::from(v.2)).abs(),
            )
        })
        .expect("d_cfgs must be non-empty")
}

fn nearest_ikey(keys: &[IKey], v: IKey) -> IKey {
    *keys
        .iter()
        .min_by_key(|&&(a, b)| {
            (
                (i64::from(a) - i64::from(v.0)).abs(),
                (i64::from(b) - i64::from(v.1)).abs(),
            )
        })
        .expect("i_cfgs must be non-empty")
}

impl FeatureStore {
    /// Precomputes the store for `instrs` (after `warmup`) over `sweep`.
    ///
    /// Cost scales with `|d_cfgs| × (|rob ∪ ROB_SWEEP| + |lq| + |sq|)` ROB-model
    /// runs plus cheap width/pipe/frontend analyses (paper §5.2.3's cost
    /// breakdown: the ROB invocations dominate).
    pub fn precompute(
        warmup: &[Instruction],
        instrs: &[Instruction],
        sweep: &SweepConfig,
        profile: &ReproProfile,
    ) -> FeatureStore {
        let k = profile.window_k;
        let enc = profile.encoding;
        let info = analyze_static(instrs);
        let n = info.len();
        let binfo = analyze_branches(warmup, instrs);

        // Arch-independent: ISB and branch-kind window-count distributions.
        let isb_dist = enc.encode_u32(&window_counts(n, k, |i| info.is_isb[i]));
        let branch_dists = [
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::DirectUncond)
            })),
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::DirectCond)
            })),
            enc.encode_u32(&window_counts(n, k, |i| {
                info.branch_kinds[i] == Some(BranchKind::Indirect)
            })),
        ];

        // Arch-independent: issue widths and pipes.
        let mut alu_thr = HashMap::new();
        let mut fp_thr = HashMap::new();
        let mut ls_thr = HashMap::new();
        for (grid, map, class) in [
            (&sweep.alu, &mut alu_thr, IssueClass::Alu),
            (&sweep.fp, &mut fp_thr, IssueClass::Fp),
            (&sweep.ls, &mut ls_thr, IssueClass::LoadStore),
        ] {
            for &w in grid.iter() {
                let raw = issue_width_bound(&info, class, w, k);
                map.insert(
                    w,
                    ThrEntry {
                        enc: enc.encode(&raw),
                        raw,
                    },
                );
            }
        }
        let mut pipes_lo = HashMap::new();
        let mut pipes_hi = HashMap::new();
        for &(lsp, lp) in &sweep.pipes {
            let b = pipe_bounds(&info, lsp, lp, k);
            pipes_lo.insert(
                (lsp, lp),
                ThrEntry {
                    enc: enc.encode(&b.lower),
                    raw: b.lower,
                },
            );
            pipes_hi.insert(
                (lsp, lp),
                ThrEntry {
                    enc: enc.encode(&b.upper),
                    raw: b.upper,
                },
            );
        }

        // Per D-side configuration: ROB / LQ / SQ models + latency features.
        let mut rob_thr = HashMap::new();
        let mut lq_thr = HashMap::new();
        let mut sq_thr = HashMap::new();
        let mut rob_curve = HashMap::new();
        let mut exec_lat = HashMap::new();
        let mut issue_lat = HashMap::new();
        let mut commit_lat = HashMap::new();
        let mut mem_lat = HashMap::new();
        let mut load_exec_est = HashMap::new();
        let mut d_keys: Vec<DKey> = Vec::new();

        let mut rob_vals: Vec<u32> = sweep.rob.iter().copied().chain(ROB_SWEEP).collect();
        rob_vals.sort_unstable();
        rob_vals.dedup();

        for cfg in &sweep.d_cfgs {
            let key = cfg.data_key();
            if d_keys.contains(&key) {
                continue;
            }
            d_keys.push(key);
            let data = analyze_data(warmup, instrs, *cfg);

            // 11th primary feature: per-window mean estimated load latency —
            // Table 3's resource count is 11 but the paper does not name all
            // of them; this memory-latency distribution carries the same
            // information the L1d/L2/prefetch parameters act on (DESIGN.md).
            let mem_series: Vec<f64> = {
                let mut out = Vec::new();
                let mut start = 0;
                while start < n {
                    let end = (start + k).min(n);
                    if end - start < k && !out.is_empty() {
                        break;
                    }
                    let (mut sum, mut cnt) = (0u64, 0u64);
                    for i in start..end {
                        if info.ops[i].is_load() {
                            sum += u64::from(data.exec_latency[i]);
                            cnt += 1;
                        }
                    }
                    out.push(if cnt == 0 {
                        0.0
                    } else {
                        sum as f64 / cnt as f64
                    });
                    start = end;
                }
                out
            };
            mem_lat.insert(
                key,
                ThrEntry {
                    enc: enc.encode(&mem_series),
                    raw: mem_series,
                },
            );
            load_exec_est.insert(
                key,
                (0..n)
                    .filter(|&i| info.ops[i].is_load())
                    .map(|i| u64::from(data.exec_latency[i]))
                    .sum(),
            );

            let mut curve = Vec::with_capacity(ROB_SWEEP.len());
            for &rv in &rob_vals {
                let r = rob_model(&info, &data, rv);
                if sweep.rob.contains(&rv) || ROB_SWEEP.contains(&rv) {
                    let raw = throughput_from_marks(&r.commit_cycles, k);
                    rob_thr.insert(
                        (key, rv),
                        ThrEntry {
                            enc: enc.encode(&raw),
                            raw,
                        },
                    );
                }
                if ROB_SWEEP.contains(&rv) {
                    curve.push(r.overall_throughput() as f32);
                    issue_lat.insert((key, rv), enc.encode_u32(&r.issue_latency));
                    commit_lat.insert((key, rv), enc.encode_u32(&r.commit_latency));
                    if rv == *ROB_SWEEP.last().unwrap() {
                        exec_lat.insert(key, enc.encode_u32(&r.exec_latency));
                    }
                }
            }
            rob_curve.insert(key, curve);

            for &qv in &sweep.lq {
                let marks = queue_model(&info, &data, qv, QueueKind::Load);
                let raw = throughput_from_marks(&marks, k);
                lq_thr.insert(
                    (key, qv),
                    ThrEntry {
                        enc: enc.encode(&raw),
                        raw,
                    },
                );
            }
            for &qv in &sweep.sq {
                let marks = queue_model(&info, &data, qv, QueueKind::Store);
                let raw = throughput_from_marks(&marks, k);
                sq_thr.insert(
                    (key, qv),
                    ThrEntry {
                        enc: enc.encode(&raw),
                        raw,
                    },
                );
            }
        }

        // Per I-side configuration: fills + fetch buffers.
        let mut fills_thr = HashMap::new();
        let mut buffers_thr = HashMap::new();
        let mut i_keys: Vec<IKey> = Vec::new();
        for cfg in &sweep.i_cfgs {
            let key = cfg.inst_key();
            if i_keys.contains(&key) {
                continue;
            }
            i_keys.push(key);
            let inst = analyze_inst(warmup, instrs, *cfg);
            for &fv in &sweep.fills {
                let marks = icache_fills_model(&info, &inst, fv);
                let raw = throughput_from_marks(&marks, k);
                fills_thr.insert(
                    (key, fv),
                    ThrEntry {
                        enc: enc.encode(&raw),
                        raw,
                    },
                );
            }
            for &bv in &sweep.buffers {
                let marks = fetch_buffers_model(&info, &inst, bv);
                let raw = throughput_from_marks(&marks, k);
                buffers_thr.insert(
                    (key, bv),
                    ThrEntry {
                        enc: enc.encode(&raw),
                        raw,
                    },
                );
            }
        }

        FeatureStore {
            k,
            encoding: enc,
            n_instr: n,
            rob_thr,
            lq_thr,
            sq_thr,
            rob_curve,
            exec_lat,
            issue_lat,
            commit_lat,
            mem_lat,
            load_exec_est,
            alu_thr,
            fp_thr,
            ls_thr,
            pipes_lo,
            pipes_hi,
            fills_thr,
            buffers_thr,
            isb_dist,
            branch_dists,
            branch_info_branches: binfo.branches,
            branch_info_cond: binfo.conditional,
            branch_info_tage: binfo.tage_cond_misses,
            branch_info_indirect: binfo.indirect_misses,
            rob_grid: {
                let mut g = sweep.rob.clone();
                g.extend(ROB_SWEEP);
                g.sort_unstable();
                g.dedup();
                g
            },
            lq_grid: sweep.lq.clone(),
            sq_grid: sweep.sq.clone(),
            alu_grid: sweep.alu.clone(),
            fp_grid: sweep.fp.clone(),
            ls_grid: sweep.ls.clone(),
            pipes_grid: sweep.pipes.clone(),
            fills_grid: sweep.fills.clone(),
            buffers_grid: sweep.buffers.clone(),
            d_keys,
            i_keys,
        }
    }

    /// Branch misprediction rate (per instruction ×1000, i.e. MPKI-scaled to
    /// 0..~1) for the architecture's predictor — the §3.2.2 scalar feature.
    pub fn mispredict_feature(&self, predictor: PredictorKind) -> f32 {
        let cond_misses = match predictor {
            PredictorKind::Tage => self.branch_info_tage as f64,
            PredictorKind::Simple { miss_pct } => {
                self.branch_info_cond as f64 * f64::from(miss_pct) / 100.0
            }
        };
        let per_instr =
            (cond_misses + self.branch_info_indirect as f64) / self.n_instr.max(1) as f64;
        (per_instr * 10.0) as f32 // scale ~[0, 1]
    }

    fn dkey(&self, mem: MemConfig) -> DKey {
        nearest_dkey(&self.d_keys, mem.data_key())
    }

    /// Trace-analysis estimate of the total load execution time under `mem`
    /// (the denominator of Figure 11's discrepancy ratio).
    pub fn load_exec_estimate(&self, mem: MemConfig) -> u64 {
        self.load_exec_est[&self.dkey(mem)]
    }

    fn ikey(&self, mem: MemConfig) -> IKey {
        nearest_ikey(&self.i_keys, mem.inst_key())
    }

    /// Raw per-window throughput-bound series for a resource under `arch`
    /// (used by Figure 1 and the min-bound baseline).
    pub fn raw_series(&self, res: Resource, arch: &MicroArch) -> &[f64] {
        let dk = self.dkey(arch.mem);
        let ik = self.ikey(arch.mem);
        match res {
            Resource::Rob => &self.rob_thr[&(dk, nearest(&self.rob_grid, arch.rob_size))].raw,
            Resource::LoadQueue => &self.lq_thr[&(dk, nearest(&self.lq_grid, arch.lq_size))].raw,
            Resource::StoreQueue => &self.sq_thr[&(dk, nearest(&self.sq_grid, arch.sq_size))].raw,
            Resource::AluWidth => &self.alu_thr[&nearest(&self.alu_grid, arch.alu_width)].raw,
            Resource::FpWidth => &self.fp_thr[&nearest(&self.fp_grid, arch.fp_width)].raw,
            Resource::LsWidth => &self.ls_thr[&nearest(&self.ls_grid, arch.ls_width)].raw,
            Resource::PipesLower => {
                &self.pipes_lo[&nearest_pair(&self.pipes_grid, (arch.ls_pipes, arch.load_pipes))]
                    .raw
            }
            Resource::PipesUpper => {
                &self.pipes_hi[&nearest_pair(&self.pipes_grid, (arch.ls_pipes, arch.load_pipes))]
                    .raw
            }
            Resource::IcacheFills => {
                &self.fills_thr[&(ik, nearest(&self.fills_grid, arch.max_icache_fills))].raw
            }
            Resource::FetchBuffers => {
                &self.buffers_thr[&(ik, nearest(&self.buffers_grid, arch.fetch_buffers))].raw
            }
            Resource::MemLatency => &self.mem_lat[&dk].raw,
        }
    }

    fn enc_of(&self, res: Resource, arch: &MicroArch) -> &[f32] {
        let dk = self.dkey(arch.mem);
        let ik = self.ikey(arch.mem);
        match res {
            Resource::Rob => &self.rob_thr[&(dk, nearest(&self.rob_grid, arch.rob_size))].enc,
            Resource::LoadQueue => &self.lq_thr[&(dk, nearest(&self.lq_grid, arch.lq_size))].enc,
            Resource::StoreQueue => &self.sq_thr[&(dk, nearest(&self.sq_grid, arch.sq_size))].enc,
            Resource::AluWidth => &self.alu_thr[&nearest(&self.alu_grid, arch.alu_width)].enc,
            Resource::FpWidth => &self.fp_thr[&nearest(&self.fp_grid, arch.fp_width)].enc,
            Resource::LsWidth => &self.ls_thr[&nearest(&self.ls_grid, arch.ls_width)].enc,
            Resource::PipesLower => {
                &self.pipes_lo[&nearest_pair(&self.pipes_grid, (arch.ls_pipes, arch.load_pipes))]
                    .enc
            }
            Resource::PipesUpper => {
                &self.pipes_hi[&nearest_pair(&self.pipes_grid, (arch.ls_pipes, arch.load_pipes))]
                    .enc
            }
            Resource::IcacheFills => {
                &self.fills_thr[&(ik, nearest(&self.fills_grid, arch.max_icache_fills))].enc
            }
            Resource::FetchBuffers => {
                &self.buffers_thr[&(ik, nearest(&self.buffers_grid, arch.fetch_buffers))].enc
            }
            Resource::MemLatency => &self.mem_lat[&dk].enc,
        }
    }

    /// Assembles the ML input vector for `arch` under `variant`.
    ///
    /// Layout: 11 primary distributions → misprediction rate → (stall
    /// features → latency distributions, per variant) → 23 parameter dims.
    pub fn features(&self, arch: &MicroArch, variant: FeatureVariant) -> Vec<f32> {
        let layout = FeatureLayout {
            encoding: self.encoding,
            variant,
        };
        let mut out = Vec::with_capacity(layout.dim());
        for res in Resource::ALL {
            out.extend_from_slice(self.enc_of(res, arch));
        }
        out.push(self.mispredict_feature(arch.predictor));
        if variant != FeatureVariant::Base {
            out.extend_from_slice(&self.isb_dist);
            for d in &self.branch_dists {
                out.extend_from_slice(d);
            }
            out.extend_from_slice(&self.rob_curve[&self.dkey(arch.mem)]);
        }
        if variant == FeatureVariant::Full {
            let dk = self.dkey(arch.mem);
            out.extend_from_slice(&self.exec_lat[&dk]);
            for &rv in &ROB_SWEEP {
                out.extend_from_slice(&self.issue_lat[&(dk, rv)]);
            }
            for &rv in &ROB_SWEEP {
                out.extend_from_slice(&self.commit_lat[&(dk, rv)]);
            }
        }
        out.extend(arch.encode());
        debug_assert_eq!(out.len(), layout.dim());
        out
    }

    /// The pure-analytical CPI estimate: per window, take the minimum of all
    /// per-resource throughput bounds (and the static widths), then average
    /// window CPIs (the pink "min bound" line of Figure 12).
    pub fn min_bound_cpi(&self, arch: &MicroArch) -> f64 {
        let series: Vec<&[f64]> = [
            Resource::Rob,
            Resource::LoadQueue,
            Resource::StoreQueue,
            Resource::AluWidth,
            Resource::FpWidth,
            Resource::LsWidth,
            Resource::PipesUpper,
            Resource::IcacheFills,
            Resource::FetchBuffers,
        ]
        .iter()
        .map(|r| self.raw_series(*r, arch))
        .collect();
        let static_bound = f64::from(
            arch.commit_width
                .min(arch.fetch_width)
                .min(arch.decode_width)
                .min(arch.rename_width),
        );
        let windows = series.iter().map(|s| s.len()).min().unwrap_or(0);
        if windows == 0 {
            return 1.0;
        }
        let mut cpi_sum = 0.0;
        for j in 0..windows {
            let mut thr = static_bound;
            for s in &series {
                thr = thr.min(s[j]);
            }
            cpi_sum += 1.0 / thr.max(1e-6);
        }
        cpi_sum / windows as f64
    }

    /// Approximate in-memory footprint of the encoded features (bytes) — the
    /// §5.2.3 "precomputed performance features occupy …" statistic.
    pub fn encoded_bytes(&self) -> usize {
        fn thr<'a, I: Iterator<Item = &'a ThrEntry>>(it: I) -> usize {
            it.map(|e| e.enc.len() * 4).sum()
        }
        fn lat<'a, I: Iterator<Item = &'a Vec<f32>>>(it: I) -> usize {
            it.map(|e| e.len() * 4).sum()
        }
        thr(self.rob_thr.values())
            + thr(self.lq_thr.values())
            + thr(self.sq_thr.values())
            + thr(self.fills_thr.values())
            + thr(self.buffers_thr.values())
            + thr(self.alu_thr.values())
            + thr(self.fp_thr.values())
            + thr(self.ls_thr.values())
            + thr(self.pipes_lo.values())
            + thr(self.pipes_hi.values())
            + thr(self.mem_lat.values())
            + lat(self.issue_lat.values())
            + lat(self.commit_lat.values())
            + lat(self.exec_lat.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::ReproProfile;
    use concorde_trace::{by_id, generate_region};

    fn quick_store(arch: &MicroArch) -> FeatureStore {
        let profile = ReproProfile::quick();
        let full = generate_region(
            &by_id("S5").unwrap(),
            0,
            0,
            profile.warmup_len + profile.region_len,
        )
        .instrs;
        let (w, r) = full.split_at(profile.warmup_len);
        FeatureStore::precompute(w, r, &SweepConfig::for_arch(arch), &profile)
    }

    #[test]
    fn layout_dims_match_paper_formula() {
        let paper = FeatureLayout {
            encoding: Encoding::paper(),
            variant: FeatureVariant::Full,
        };
        // 11×101 + (4×101 + 1 + 11) + 23×101 + 23 = 3873 (Table 3).
        assert_eq!(paper.dim(), 3873);
        let base = FeatureLayout {
            encoding: Encoding::paper(),
            variant: FeatureVariant::Base,
        };
        assert_eq!(base.dim(), 11 * 101 + 1 + 23);
    }

    #[test]
    fn features_have_declared_dims_for_all_variants() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        for v in [
            FeatureVariant::Base,
            FeatureVariant::BaseBranch,
            FeatureVariant::Full,
        ] {
            let f = store.features(&arch, v);
            assert_eq!(
                f.len(),
                FeatureLayout {
                    encoding: Encoding { levels: 8 },
                    variant: v
                }
                .dim()
            );
            assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn quantization_finds_nearest_grid_point() {
        assert_eq!(nearest(&[1, 2, 4, 8], 3), 4);
        assert_eq!(nearest(&[1, 2, 4, 8], 5), 4);
        assert_eq!(nearest(&[1, 2, 4, 8], 7), 8);
        assert_eq!(nearest(&[16, 64, 256], 100), 64);
        assert_eq!(nearest_pair(&[(2, 0), (8, 8)], (3, 1)), (2, 0));
    }

    #[test]
    fn min_bound_is_a_plausible_lower_cpi_estimate() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let cpi = store.min_bound_cpi(&arch);
        assert!(cpi > 0.05 && cpi < 100.0, "min-bound CPI {cpi}");
        // A maximally wide machine should have a lower (or equal) bound CPI.
        let big = MicroArch::big_core();
        let store_big = quick_store(&big);
        assert!(store_big.min_bound_cpi(&big) <= cpi * 1.5);
    }

    #[test]
    fn mispredict_feature_orders_predictors() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        let perfect = store.mispredict_feature(PredictorKind::Simple { miss_pct: 0 });
        let tage = store.mispredict_feature(PredictorKind::Tage);
        let awful = store.mispredict_feature(PredictorKind::Simple { miss_pct: 100 });
        assert!(perfect <= tage && tage <= awful);
    }

    #[test]
    fn raw_series_nonempty_for_all_resources() {
        let arch = MicroArch::arm_n1();
        let store = quick_store(&arch);
        for r in Resource::ALL {
            assert!(!store.raw_series(r, &arch).is_empty(), "{r:?}");
        }
        assert!(store.encoded_bytes() > 0);
    }
}
