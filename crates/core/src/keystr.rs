//! Inline small-string for hot-path identifiers.
//!
//! Workload ids (`"S5"`), preset names (`"n1"`), and the other short strings
//! that ride inside [`FeatureKey`](crate::cache::FeatureKey) and the wire
//! request types are almost always a handful of bytes, yet `String` forces a
//! heap allocation per parse and per key clone. [`KeyStr`] stores up to
//! [`KeyStr::INLINE_CAP`] bytes inline (no heap) and falls back to a
//! `Box<str>` only for longer values, so constructing and cloning typical
//! keys is allocation-free — the property the serving warm path's
//! counting-allocator test pins end to end.
//!
//! `KeyStr` behaves like `&str` everywhere it matters: it derefs to `str`,
//! hashes and compares as its string contents (so `Borrow<str>` map lookups
//! work), and serializes as a plain JSON string.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;

use serde::{Content, Deserialize, Error as DeError, Serialize};

/// A string that stores short values inline and long values on the heap.
///
/// See the [module docs](self) for rationale. The inline capacity is sized so
/// the whole value fits in 24 bytes — the same footprint as `String` — while
/// covering every identifier the workload catalog and arch presets use.
pub struct KeyStr(Repr);

enum Repr {
    /// Up to `INLINE_CAP` bytes stored in place; `len` is the used prefix.
    Inline {
        len: u8,
        buf: [u8; KeyStr::INLINE_CAP],
    },
    /// Longer values spill to the heap.
    Heap(Box<str>),
}

impl KeyStr {
    /// Maximum byte length stored without a heap allocation.
    pub const INLINE_CAP: usize = 22;

    /// Builds a `KeyStr` from a string slice (allocation-free when the slice
    /// fits inline).
    #[inline]
    pub fn new(s: &str) -> Self {
        if s.len() <= Self::INLINE_CAP {
            let mut buf = [0u8; Self::INLINE_CAP];
            buf[..s.len()].copy_from_slice(s.as_bytes());
            KeyStr(Repr::Inline {
                len: s.len() as u8,
                buf,
            })
        } else {
            KeyStr(Repr::Heap(s.into()))
        }
    }

    /// The string contents.
    #[inline]
    pub fn as_str(&self) -> &str {
        match &self.0 {
            Repr::Inline { len, buf } => {
                // `new`/`from` only store prefixes of valid `&str`s, and a
                // prefix boundary at `len` is a char boundary by construction.
                unsafe { std::str::from_utf8_unchecked(&buf[..*len as usize]) }
            }
            Repr::Heap(s) => s,
        }
    }

    /// Byte length.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_str().len()
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for KeyStr {
    #[inline]
    fn clone(&self) -> Self {
        match &self.0 {
            Repr::Inline { len, buf } => KeyStr(Repr::Inline {
                len: *len,
                buf: *buf,
            }),
            Repr::Heap(s) => KeyStr(Repr::Heap(s.clone())),
        }
    }
}

impl Default for KeyStr {
    #[inline]
    fn default() -> Self {
        KeyStr::new("")
    }
}

impl Deref for KeyStr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for KeyStr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for KeyStr {
    #[inline]
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for KeyStr {
    #[inline]
    fn from(s: &str) -> Self {
        KeyStr::new(s)
    }
}

impl From<String> for KeyStr {
    #[inline]
    fn from(s: String) -> Self {
        // Reuse the existing heap allocation only when inline won't fit.
        if s.len() <= Self::INLINE_CAP {
            KeyStr::new(&s)
        } else {
            KeyStr(Repr::Heap(s.into_boxed_str()))
        }
    }
}

impl From<&String> for KeyStr {
    #[inline]
    fn from(s: &String) -> Self {
        KeyStr::new(s)
    }
}

impl From<&KeyStr> for KeyStr {
    #[inline]
    fn from(s: &KeyStr) -> Self {
        s.clone()
    }
}

impl PartialEq for KeyStr {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for KeyStr {}

impl PartialEq<str> for KeyStr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for KeyStr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for KeyStr {
    #[inline]
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<KeyStr> for str {
    #[inline]
    fn eq(&self, other: &KeyStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<KeyStr> for &str {
    #[inline]
    fn eq(&self, other: &KeyStr) -> bool {
        *self == other.as_str()
    }
}

// Hash must agree with `Borrow<str>`: hash exactly as the contents do.
impl Hash for KeyStr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl PartialOrd for KeyStr {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyStr {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl fmt::Display for KeyStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for KeyStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl Serialize for KeyStr {
    fn to_content(&self) -> Content {
        Content::Str(self.as_str().to_string())
    }
}

impl Deserialize for KeyStr {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(KeyStr::new(s)),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn inline_and_heap_round_trip() {
        for s in ["", "S5", "n1", "a-22-byte-identifier!!", &"x".repeat(23)] {
            let k = KeyStr::new(s);
            assert_eq!(k.as_str(), s);
            assert_eq!(k.len(), s.len());
            assert_eq!(k, *s);
            assert_eq!(k.clone(), k);
        }
    }

    #[test]
    fn inline_boundary_is_22_bytes() {
        let inline = KeyStr::new(&"y".repeat(KeyStr::INLINE_CAP));
        assert!(matches!(inline.0, Repr::Inline { .. }));
        let heap = KeyStr::new(&"y".repeat(KeyStr::INLINE_CAP + 1));
        assert!(matches!(heap.0, Repr::Heap(_)));
    }

    #[test]
    fn hash_agrees_with_str_for_map_lookup() {
        let mut m: HashMap<KeyStr, u32> = HashMap::new();
        m.insert(KeyStr::new("S5"), 7);
        assert_eq!(m.get("S5"), Some(&7));
        assert_eq!(m.get("s5"), None);
    }

    #[test]
    fn ordering_matches_str() {
        let mut v = vec![KeyStr::new("b"), KeyStr::new("a"), KeyStr::new("c")];
        v.sort();
        assert_eq!(
            v,
            vec!["a", "b", "c"]
                .into_iter()
                .map(KeyStr::new)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn serde_round_trip() {
        let k = KeyStr::new("S5");
        let c = k.to_content();
        assert_eq!(KeyStr::from_content(&c).unwrap(), k);
        assert!(KeyStr::from_content(&Content::U64(3)).is_err());
    }

    #[test]
    fn multibyte_utf8_survives() {
        let s = "héllo-wörld";
        let k = KeyStr::new(s);
        assert_eq!(k.as_str(), s);
    }
}
