//! # concorde-core
//!
//! The paper's primary contribution: Concorde's compositional analytical-ML
//! CPU performance model.
//!
//! The crate wires the substrates together into the Figure 3 pipeline:
//!
//! 1. **Trace analysis + analytical models** (`concorde-analytic`) run once
//!    per region over a [`SweepConfig`] of parameter values, producing a
//!    [`FeatureStore`] of percentile-encoded performance distributions.
//! 2. A lightweight MLP ([`ConcordePredictor`]) maps any microarchitecture's
//!    distributions + parameter vector to CPI in microseconds.
//! 3. [`dataset`] generates ground-truth-labelled training data with the
//!    cycle-level simulator; [`trainer`] fits the model with AdamW and the
//!    relative-error loss; [`longrun`] estimates arbitrarily long programs by
//!    region sampling.
//!
//! ```no_run
//! use concorde_core::prelude::*;
//! use concorde_cyclesim::MicroArch;
//!
//! let profile = ReproProfile::quick();
//! let cfg = DatasetConfig::random(profile.clone(), 64, 1);
//! let data = generate_dataset(&cfg);
//! let (train, test) = data.split_at(48);
//! let (model, stats) = train_and_evaluate(train, test, &profile, &TrainOptions::default());
//! println!("mean relative CPI error: {:.2}%", stats.mean * 100.0);
//! # let _ = (model, MicroArch::arm_n1());
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod dataset;
pub mod features;
pub mod keystr;
pub mod longrun;
pub mod metrics;
pub mod minbound;
pub mod model;
pub mod parallel;
pub mod schema;
pub mod sweep;
pub mod trainer;

/// Convenient re-exports of the crate's primary API.
pub mod prelude {
    pub use crate::arena::{ArenaEncoding, EncArena, MappedStore, RawArena};
    pub use crate::cache::{
        sweep_content_hash, CacheStats, FeatureKey, ShardStats, ShardedStoreCache, StoreArtifact,
    };
    pub use crate::dataset::{
        generate_dataset, overlap_report, project_features, ArchSampling, DatasetConfig,
        FeatureProjection, Sample,
    };
    pub use crate::features::{
        AssemblyScratch, FeatureLayout, FeatureStore, FeatureVariant, Resource,
    };
    pub use crate::keystr::KeyStr;
    pub use crate::longrun::{long_program_experiment, LongRunResult};
    pub use crate::metrics::{bucketed, per_program, GroupStats};
    pub use crate::minbound::{analytic_min_bound_cpi, MinBoundEstimator};
    pub use crate::model::{ConcordePredictor, ModelEncoding, Normalizer, PredictScratch};
    pub use crate::parallel::{parallel_map, parallel_map_all};
    pub use crate::schema::{BlockGroup, FeatureBlock, FeatureSchema, SCHEMA_VERSION};
    pub use crate::sweep::{pow2_sweep, ReproProfile, SweepConfig};
    pub use crate::trainer::{
        predict_all, predict_all_with_labels, train_and_evaluate, train_model,
        train_model_with_labels, TrainOptions,
    };
}

pub use prelude::*;
