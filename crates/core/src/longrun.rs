//! Long-program CPI estimation by region sampling (paper §5.1, Figure 9).
//!
//! Concorde's region predictions are O(1); the CPI of an arbitrarily long
//! program is estimated by averaging predictions over randomly sampled
//! regions. This module runs that experiment end to end: ground truth from a
//! full cycle-level simulation of the long trace, estimates from `n` sampled
//! regions at each requested sampling level.

use concorde_cyclesim::{simulate_warmed, MicroArch, SimOptions};
use concorde_trace::{generate_region, WorkloadSpec};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

use crate::features::FeatureStore;
use crate::model::ConcordePredictor;
use crate::sweep::{ReproProfile, SweepConfig};

/// Result of one long-program experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongRunResult {
    /// Workload id.
    pub workload_id: String,
    /// Ground-truth CPI of the full program.
    pub true_cpi: f64,
    /// `(samples, estimated CPI, relative error)` per sampling level.
    pub estimates: Vec<(usize, f64, f64)>,
}

/// Runs the Figure 9 experiment for one workload: simulate `program_len`
/// instructions as ground truth, then estimate CPI from region samples.
///
/// Region predictions are parallelized across available threads.
pub fn long_program_experiment(
    spec: &WorkloadSpec,
    arch: &MicroArch,
    predictor: &ConcordePredictor,
    profile: &ReproProfile,
    program_len: usize,
    sample_counts: &[usize],
    seed: u64,
) -> LongRunResult {
    // Ground truth: one long cycle-level simulation (trace 0 from the start;
    // the paper simulates from the first instruction to avoid warmup skew).
    let full = generate_region(spec, 0, 0, program_len);
    let sim = simulate_warmed(
        &[],
        &full.instrs,
        arch,
        SimOptions {
            record_commit_cycles: false,
            seed,
        },
    );
    let true_cpi = sim.cpi();
    drop(full);

    // Region-sampled estimates: draw max(sample_counts) regions once and use
    // prefixes for the smaller levels (matching the paper's nesting).
    //
    // Regions inside a continuously running program see *fully warm* caches,
    // while the training profile warms only `warmup_len` instructions; use a
    // larger warmup multiple here so the features reflect the long-run cache
    // state (the paper sidesteps this by simulating from the trace start).
    let warmup_len = (profile.warmup_len * 8).min(program_len / 2);
    let max_n = sample_counts.iter().copied().max().unwrap_or(0);
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ 0x10A6);
    let starts: Vec<u64> = (0..max_n)
        .map(|_| {
            let max_start = (program_len as u64).saturating_sub(profile.region_len as u64);
            rng.gen_range(0..=max_start) / concorde_trace::SEGMENT_LEN * concorde_trace::SEGMENT_LEN
        })
        .collect();

    let preds: Vec<f64> = crate::parallel::parallel_map_all(max_n, |i| {
        let start = starts[i];
        let warm_start = start.saturating_sub(warmup_len as u64);
        let warm_len = (start - warm_start) as usize;
        let region = generate_region(spec, 0, warm_start, warm_len + profile.region_len);
        let (w, r) = region.instrs.split_at(warm_len);
        // One thread per store: regions already run in parallel.
        let store =
            FeatureStore::precompute_threaded(w, r, &SweepConfig::for_arch(arch), profile, 1);
        predictor.predict(&store, arch)
    });

    let estimates = sample_counts
        .iter()
        .map(|&n| {
            let est =
                preds[..n.min(preds.len())].iter().sum::<f64>() / n.min(preds.len()).max(1) as f64;
            (n, est, (est - true_cpi).abs() / true_cpi)
        })
        .collect();

    LongRunResult {
        workload_id: spec.id.clone(),
        true_cpi,
        estimates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, ArchSampling, DatasetConfig};
    use crate::trainer::{train_model, TrainOptions};

    #[test]
    fn long_run_estimates_converge_toward_truth() {
        let profile = ReproProfile::quick();
        // Train a tiny model on O1/O2-only data at the fixed target arch so
        // the estimate has a chance of being meaningful.
        let arch = MicroArch::arm_n1();
        let cfg = DatasetConfig {
            profile: profile.clone(),
            n: 48,
            seed: 31,
            arch: ArchSampling::Fixed(arch),
            workloads: Some(vec![15, 16]),
            threads: 0,
        };
        let data = generate_dataset(&cfg);
        let model = train_model(
            &data,
            &profile,
            &TrainOptions {
                epochs: Some(20),
                ..TrainOptions::default()
            },
        );

        let spec = concorde_trace::by_id("O1").unwrap();
        let res = long_program_experiment(&spec, &arch, &model, &profile, 80_000, &[2, 8], 5);
        assert!(res.true_cpi > 0.1);
        assert_eq!(res.estimates.len(), 2);
        for (_, est, err) in &res.estimates {
            assert!(*est > 0.0 && est.is_finite());
            assert!(*err >= 0.0);
        }
    }
}
