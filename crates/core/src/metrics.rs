//! Evaluation breakdowns used by the paper's figures and tables.

use concorde_ml::ErrorStats;
use serde::{Deserialize, Serialize};

use crate::dataset::Sample;

/// A labelled group of evaluation pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupStats {
    /// Group label (workload id, bucket name, …).
    pub label: String,
    /// Mean relative error.
    pub mean: f64,
    /// 90th-percentile relative error.
    pub p90: f64,
    /// Fraction of samples above 10% error.
    pub frac_above_10pct: f64,
    /// Sample count.
    pub n: usize,
}

fn stats_of(label: &str, pairs: &[(f64, f64)]) -> Option<GroupStats> {
    if pairs.is_empty() {
        return None;
    }
    let s = ErrorStats::from_pairs(pairs);
    Some(GroupStats {
        label: label.to_string(),
        mean: s.mean,
        p90: s.p90,
        frac_above_10pct: s.frac_above_10pct,
        n: s.n,
    })
}

/// Per-workload error breakdown (Figure 6): `pairs[i]` must correspond to
/// `samples[i]`.
pub fn per_program(samples: &[Sample], pairs: &[(f64, f64)]) -> Vec<GroupStats> {
    let suite = concorde_trace::suite();
    let mut out = Vec::new();
    for (w, spec) in suite.iter().enumerate() {
        let group: Vec<(f64, f64)> = samples
            .iter()
            .zip(pairs)
            .filter(|(s, _)| s.workload == w as u16)
            .map(|(_, p)| *p)
            .collect();
        if let Some(g) = stats_of(&spec.id, &group) {
            out.push(g);
        }
    }
    out
}

/// Buckets evaluation pairs by a per-sample key (Table 4, Figure 11).
///
/// `edges` are the right-open bucket boundaries; a final unbounded bucket is
/// added automatically. Returns one [`GroupStats`] per non-empty bucket.
pub fn bucketed<F>(
    samples: &[Sample],
    pairs: &[(f64, f64)],
    edges: &[f64],
    key: F,
    unit: &str,
) -> Vec<GroupStats>
where
    F: Fn(&Sample) -> f64,
{
    let mut out = Vec::new();
    let mut lo = f64::NEG_INFINITY;
    let mut bounds: Vec<(f64, f64)> = Vec::new();
    for &e in edges {
        bounds.push((lo, e));
        lo = e;
    }
    bounds.push((lo, f64::INFINITY));
    for (lo, hi) in bounds {
        let group: Vec<(f64, f64)> = samples
            .iter()
            .zip(pairs)
            .filter(|(s, _)| {
                let k = key(s);
                k >= lo && k < hi
            })
            .map(|(_, p)| *p)
            .collect();
        let label = if lo == f64::NEG_INFINITY {
            format!("< {hi} {unit}")
        } else if hi == f64::INFINITY {
            format!(">= {lo} {unit}")
        } else {
            format!("[{lo}, {hi}) {unit}")
        };
        if let Some(g) = stats_of(&label, &group) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_cyclesim::MicroArch;
    use concorde_trace::RegionRef;

    fn sample(workload: u16, mispred: u64) -> Sample {
        Sample {
            workload,
            region: RegionRef {
                workload,
                trace_idx: 0,
                start: 0,
                len: 100,
            },
            arch: MicroArch::arm_n1(),
            features: vec![],
            cpi: 1.0,
            rob_occupancy: 0.0,
            rename_occupancy: 0.0,
            branch_mispredictions: mispred,
            exec_ratio: 1.0,
        }
    }

    #[test]
    fn per_program_groups_by_workload() {
        let samples = vec![sample(0, 0), sample(0, 0), sample(5, 0)];
        let pairs = vec![(1.1, 1.0), (1.2, 1.0), (1.0, 1.0)];
        let groups = per_program(&samples, &pairs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].label, "P1");
        assert_eq!(groups[0].n, 2);
        assert!((groups[0].mean - 0.15).abs() < 1e-9);
        assert_eq!(groups[1].label, "P6");
    }

    #[test]
    fn buckets_cover_all_samples() {
        let samples: Vec<Sample> = (0..10).map(|i| sample(0, i * 100)).collect();
        let pairs: Vec<(f64, f64)> = (0..10).map(|_| (1.0, 1.0)).collect();
        let groups = bucketed(
            &samples,
            &pairs,
            &[250.0, 600.0],
            |s| s.branch_mispredictions as f64,
            "mispredictions",
        );
        let total: usize = groups.iter().map(|g| g.n).sum();
        assert_eq!(total, 10);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].n, 3, "0,100,200");
    }
}
