//! Direct analytic min-bound estimation — the degraded-answer fast path.
//!
//! [`FeatureStore::min_bound_cpi`](crate::features::FeatureStore::min_bound_cpi)
//! needs a full precomputed store: every resource's throughput series at
//! every sweep grid point, which is exactly the work a serving cache miss
//! queues on the precompute pool. But the min-bound itself only consults
//! *one* grid point per resource — the queried architecture's — so a server
//! that must answer *now* (SLO-driven load shedding) can run the analytic
//! models once at that single point instead of over the whole sweep.
//!
//! [`MinBoundEstimator`] does exactly that: one `analyze_static` pass plus
//! one data/instruction cache analysis per distinct memory configuration
//! (memoized across calls), then per architecture one ROB run, two queue
//! runs, three width bounds, one pipe bound, and two frontend runs. For a
//! per-architecture sweep that is ~`|rob ∪ ROB_SWEEP| + |lq| + |sq|` times
//! less model work than the full store build; for the quantized sweep the
//! gap is larger still.
//!
//! The per-window combination is shared with the store path
//! ([`combine_min_bound`]), so for an architecture that sits exactly on a
//! store's grid (e.g. any architecture under `SweepConfig::for_arch`) the
//! estimate is **bitwise identical** to `store.min_bound_cpi(arch)` — the
//! degraded answer a shedding server returns is the same number the full
//! store would have bounded with.

use std::collections::HashMap;

use concorde_analytic::prelude::*;
use concorde_cyclesim::MicroArch;
use concorde_trace::Instruction;

use crate::sweep::ReproProfile;

/// Per-window minimum over the nine per-resource throughput series (and the
/// static width bound), averaged into a CPI — the pink "min bound" line of
/// Figure 12. Series order is fixed: ROB, LQ, SQ, ALU, FP, LS, pipes-upper,
/// I-cache fills, fetch buffers. Shared by the store path and the direct
/// estimator so the two are bitwise comparable.
pub(crate) fn combine_min_bound(series: &[&[f64]; 9], arch: &MicroArch) -> f64 {
    let static_bound = f64::from(
        arch.commit_width
            .min(arch.fetch_width)
            .min(arch.decode_width)
            .min(arch.rename_width),
    );
    let windows = series.iter().map(|s| s.len()).min().unwrap_or(0);
    if windows == 0 {
        return 1.0;
    }
    let mut cpi_sum = 0.0;
    for j in 0..windows {
        let mut thr = static_bound;
        for s in series {
            thr = thr.min(s[j]);
        }
        cpi_sum += 1.0 / thr.max(1e-6);
    }
    cpi_sum / windows as f64
}

/// Computes analytic min-bound CPI estimates for one region without building
/// a [`FeatureStore`](crate::features::FeatureStore).
///
/// Construction runs the arch-independent static trace analysis; each
/// [`MinBoundEstimator::min_bound_cpi`] call runs the per-resource models at
/// the queried architecture's single grid point, memoizing the cache-analysis
/// stages per distinct memory configuration so a batch of architectures on
/// the same memory system shares them.
pub struct MinBoundEstimator<'a> {
    warmup: &'a [Instruction],
    instrs: &'a [Instruction],
    k: usize,
    info: TraceInfo,
    datas: HashMap<(u32, u32, u32), DataLatencies>,
    insts: HashMap<(u32, u32), InstLatencies>,
}

impl<'a> MinBoundEstimator<'a> {
    /// Analyzes `instrs` (functionally warmed by `warmup`) for min-bound
    /// queries under `profile`'s window length.
    pub fn new(
        warmup: &'a [Instruction],
        instrs: &'a [Instruction],
        profile: &ReproProfile,
    ) -> Self {
        MinBoundEstimator {
            warmup,
            instrs,
            k: profile.window_k,
            info: analyze_static(instrs),
            datas: HashMap::new(),
            insts: HashMap::new(),
        }
    }

    /// The pure-analytical CPI min-bound for `arch` — the flagged-approximate
    /// estimate a shedding server answers with.
    pub fn min_bound_cpi(&mut self, arch: &MicroArch) -> f64 {
        let (warmup, instrs, k) = (self.warmup, self.instrs, self.k);
        let data = self
            .datas
            .entry(arch.mem.data_key())
            .or_insert_with(|| analyze_data(warmup, instrs, arch.mem));
        let inst = self
            .insts
            .entry(arch.mem.inst_key())
            .or_insert_with(|| analyze_inst(warmup, instrs, arch.mem));
        let info = &self.info;
        let series: [Vec<f64>; 9] = [
            throughput_from_marks(&rob_model(info, data, arch.rob_size).commit_cycles, k),
            throughput_from_marks(&queue_model(info, data, arch.lq_size, QueueKind::Load), k),
            throughput_from_marks(&queue_model(info, data, arch.sq_size, QueueKind::Store), k),
            issue_width_bound(info, IssueClass::Alu, arch.alu_width, k),
            issue_width_bound(info, IssueClass::Fp, arch.fp_width, k),
            issue_width_bound(info, IssueClass::LoadStore, arch.ls_width, k),
            pipe_bounds(info, arch.ls_pipes, arch.load_pipes, k).upper,
            throughput_from_marks(&icache_fills_model(info, inst, arch.max_icache_fills), k),
            throughput_from_marks(&fetch_buffers_model(info, inst, arch.fetch_buffers), k),
        ];
        combine_min_bound(&series.each_ref().map(Vec::as_slice), arch)
    }
}

/// One-shot convenience wrapper around [`MinBoundEstimator`] for a single
/// `(region, architecture)` query.
pub fn analytic_min_bound_cpi(
    warmup: &[Instruction],
    instrs: &[Instruction],
    arch: &MicroArch,
    profile: &ReproProfile,
) -> f64 {
    MinBoundEstimator::new(warmup, instrs, profile).min_bound_cpi(arch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_trace::{by_id, generate_region};

    #[test]
    fn estimator_memoizes_memory_analyses() {
        let region = generate_region(&by_id("S1").unwrap(), 0, 0, 2_048);
        let profile = ReproProfile::quick();
        let mut est = MinBoundEstimator::new(&[], &region.instrs, &profile);
        let n1 = MicroArch::arm_n1();
        let a = est.min_bound_cpi(&n1);
        assert_eq!(est.datas.len(), 1);
        // Same memory config, different core: no new cache analysis.
        let mut wide = n1;
        wide.rob_size = 512;
        wide.alu_width = 8;
        let b = est.min_bound_cpi(&wide);
        assert_eq!(est.datas.len(), 1);
        assert_eq!(est.insts.len(), 1);
        // A strictly wider machine can only lower (or keep) the bound CPI.
        assert!(b <= a, "wider core bound {b} vs {a}");
        // A new memory config triggers exactly one more analysis.
        let big = MicroArch::big_core();
        est.min_bound_cpi(&big);
        assert_eq!(est.datas.len(), 2);
    }

    #[test]
    fn one_shot_matches_estimator() {
        let region = generate_region(&by_id("C1").unwrap(), 0, 0, 1_024);
        let profile = ReproProfile::quick();
        let arch = MicroArch::arm_n1();
        let one = analytic_min_bound_cpi(&[], &region.instrs, &arch, &profile);
        let mut est = MinBoundEstimator::new(&[], &region.instrs, &profile);
        assert_eq!(one.to_bits(), est.min_bound_cpi(&arch).to_bits());
        assert!(one > 0.05 && one < 100.0, "min-bound CPI {one}");
    }
}
