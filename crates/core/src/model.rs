//! The Concorde predictor: feature normalizer + MLP, with artifact save/load.

use std::path::Path;

use concorde_cyclesim::MicroArch;
use concorde_ml::{Mlp, MlpScratch, QuantFeatureBuf, QuantScratch, QuantizedMlp};
use serde::{Deserialize, Serialize};

use crate::features::{AssemblyScratch, FeatureLayout, FeatureStore, FeatureVariant};

/// Reusable buffers for the batched serving predictors
/// ([`ConcordePredictor::predict_batch_into`] /
/// [`ConcordePredictor::predict_batch_quantized_into`]): activation arenas,
/// the fused-assembly segment buffer, the assembly plan, and the arch-dedup
/// tables. One per worker; with a warm scratch the whole group evaluation
/// allocates nothing.
#[derive(Default)]
pub struct PredictScratch {
    /// MLP activation arena (f32 forward pass).
    pub mlp: MlpScratch,
    /// Quantized forward-pass arena.
    pub quant: QuantScratch,
    /// Fused dequantize-assembly segment buffer.
    pub qbuf: QuantFeatureBuf,
    asm: AssemblyScratch,
    uniq: Vec<MicroArch>,
    map: Vec<u32>,
    xs: Vec<f32>,
    raw: Vec<f32>,
    uniq_out: Vec<f64>,
}

/// Deduplicates `archs` by linear scan (`MicroArch` is `PartialEq`-only:
/// `PredictorKind::Simple` carries a float), filling `uniq` with the
/// distinct architectures in first-appearance order and `map` with each
/// row's index into `uniq`.
fn dedup_archs(archs: &[MicroArch], uniq: &mut Vec<MicroArch>, map: &mut Vec<u32>) {
    uniq.clear();
    map.clear();
    map.reserve(archs.len());
    for arch in archs {
        let at = match uniq.iter().position(|u| u == arch) {
            Some(i) => i,
            None => {
                uniq.push(*arch);
                uniq.len() - 1
            }
        };
        map.push(at as u32);
    }
}

/// Which weight encoding the inference tier computes with (`--model-encoding`).
///
/// [`ModelEncoding::Int8`] serves a [`QuantizedMlp`] built from the trained
/// f32 model at startup (per-output-channel scales, i32/f32 accumulate —
/// see `concorde_ml::qmlp`); prediction drift against the f32 reference is
/// pinned `< 5%` by `tests/kernel_dispatch.rs`, mirroring the int8 *arena*
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelEncoding {
    /// Full-precision weights — the trained model as-is.
    F32,
    /// `i8` weights with per-output-channel scales.
    Int8,
}

impl ModelEncoding {
    /// Stable lowercase name for flags, logs, and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            ModelEncoding::F32 => "f32",
            ModelEncoding::Int8 => "int8",
        }
    }

    /// Parses a `--model-encoding` flag value.
    pub fn parse(s: &str) -> Option<ModelEncoding> {
        match s.to_ascii_lowercase().as_str() {
            "f32" => Some(ModelEncoding::F32),
            "int8" => Some(ModelEncoding::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-dimension standardization fitted on the training set.
///
/// All Concorde features are non-negative with heavy-tailed latency dims, so
/// the normalizer optionally applies `ln(1 + x)` before standardizing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    /// Feature means (in transformed space).
    pub mean: Vec<f32>,
    /// Feature standard deviations (floored to avoid division blowups).
    pub std: Vec<f32>,
    /// Apply `ln(1 + x)` before standardizing.
    pub log1p: bool,
}

impl Normalizer {
    /// Fits mean/std over row-major samples `xs` (`n × dim`), optionally in
    /// `ln(1 + x)` space.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or misshapen.
    pub fn fit(xs: &[f32], dim: usize, log1p: bool) -> Self {
        assert!(
            dim > 0 && !xs.is_empty() && xs.len().is_multiple_of(dim),
            "bad sample shape"
        );
        let n = xs.len() / dim;
        let tx = |x: f32| if log1p { x.max(0.0).ln_1p() } else { x };
        let mut mean = vec![0.0f64; dim];
        for row in xs.chunks_exact(dim) {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += f64::from(tx(x));
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0f64; dim];
        for row in xs.chunks_exact(dim) {
            for ((v, m), &x) in var.iter_mut().zip(&mean).zip(row) {
                let d = f64::from(tx(x)) - *m;
                *v += d * d;
            }
        }
        // Floor each std relative to the dimension's magnitude: dims that are
        // constant up to float jitter would otherwise amplify that jitter by
        // orders of magnitude and destabilize training.
        let std = var
            .iter()
            .zip(&mean)
            .map(|(v, m)| {
                let floor = (m.abs() + 1.0) * 1e-4;
                ((v / n as f64).sqrt().max(floor)) as f32
            })
            .collect();
        Normalizer {
            mean: mean.iter().map(|m| *m as f32).collect(),
            std,
            log1p,
        }
    }

    /// Standardizes one feature vector in place.
    pub fn apply(&self, x: &mut [f32]) {
        debug_assert_eq!(x.len(), self.mean.len());
        for ((x, m), s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            let v = if self.log1p { x.max(0.0).ln_1p() } else { *x };
            *x = (v - m) / s;
        }
    }

    /// Standardizes a row-major batch in place.
    pub fn apply_batch(&self, xs: &mut [f32]) {
        for row in xs.chunks_exact_mut(self.mean.len()) {
            self.apply(row);
        }
    }
}

/// A trained Concorde model: layout, normalizer, and MLP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcordePredictor {
    /// Feature layout the model was trained with.
    pub layout: FeatureLayout,
    /// Input standardization.
    pub normalizer: Normalizer,
    /// The MLP `g(z, p) → CPI`.
    pub mlp: Mlp,
    /// The MLP predicts `ln(CPI)`; the prediction is exponentiated. Keeps the
    /// paper's relative-error loss while letting a small network span the
    /// 0.3–100+ CPI range (DESIGN.md §3).
    pub log_output: bool,
    /// Predictions are clamped to the label range observed in training
    /// (widened 2×): a guard against catastrophic extrapolation on inputs far
    /// outside the training distribution.
    #[serde(default)]
    pub output_clamp: Option<(f64, f64)>,
}

impl ConcordePredictor {
    /// Predicts CPI from an already-assembled raw feature vector.
    pub fn predict_features(&self, features: &[f32]) -> f64 {
        let mut x = features.to_vec();
        self.normalizer.apply(&mut x);
        self.postprocess(f64::from(self.mlp.predict(&x)))
    }

    /// Predicts CPI for `arch` using a precomputed [`FeatureStore`].
    pub fn predict(&self, store: &FeatureStore, arch: &MicroArch) -> f64 {
        let f = store.features(arch, self.layout.variant);
        self.predict_features(&f)
    }

    /// Maps one raw MLP output to CPI (shared by the scalar and batch paths).
    #[inline]
    fn postprocess(&self, o: f64) -> f64 {
        let y = if self.log_output {
            o.clamp(-8.0, 8.0).exp()
        } else {
            o.max(1e-3)
        };
        match self.output_clamp {
            Some((lo, hi)) => y.clamp(lo, hi),
            None => y,
        }
    }

    /// Batched [`ConcordePredictor::predict_features`] over a row-major
    /// buffer of `n × dim` raw features, normalizing in place.
    ///
    /// `scratch` is the reusable activation arena; with a warm scratch the
    /// only allocation is the returned vector. Outputs are bitwise identical
    /// to calling `predict_features` per row.
    pub fn predict_features_batch(
        &self,
        features: &mut [f32],
        scratch: &mut MlpScratch,
    ) -> Vec<f64> {
        self.normalizer.apply_batch(features);
        let n = features.len() / self.normalizer.mean.len().max(1);
        let mut raw = vec![0.0f32; n];
        self.mlp.predict_batch_into(features, &mut raw, scratch);
        raw.into_iter()
            .map(|o| self.postprocess(f64::from(o)))
            .collect()
    }

    /// Predicts CPI for every architecture in `archs` against one store.
    ///
    /// Feature assembly happens per architecture (quantized lookups), then a
    /// single batched MLP forward pass covers the whole slice. Results are
    /// bitwise identical to mapping [`ConcordePredictor::predict`] over
    /// `archs`.
    pub fn predict_batch(&self, store: &FeatureStore, archs: &[MicroArch]) -> Vec<f64> {
        let mut scratch = MlpScratch::default();
        self.predict_batch_with(store, archs, &mut scratch)
    }

    /// [`ConcordePredictor::predict_batch`] with a caller-owned scratch arena
    /// (what serving workers use to keep the hot loop allocation-free).
    pub fn predict_batch_with(
        &self,
        store: &FeatureStore,
        archs: &[MicroArch],
        scratch: &mut MlpScratch,
    ) -> Vec<f64> {
        let dim = self.layout.dim();
        // One buffer for the whole batch; each row is assembled in place by
        // the zero-allocation `features_into` path.
        let mut xs = vec![0.0f32; archs.len() * dim];
        for (arch, row) in archs.iter().zip(xs.chunks_exact_mut(dim)) {
            store.features_into(arch, self.layout.variant, row);
        }
        self.predict_features_batch(&mut xs, scratch)
    }

    /// Quantizes the MLP to `i8` weights (what an [`ModelEncoding::Int8`]
    /// server builds once at startup).
    pub fn quantized(&self) -> QuantizedMlp {
        self.mlp.quantize()
    }

    /// Int8-weight [`ConcordePredictor::predict_features`]: standardizes a
    /// copy of `features` and runs the quantized forward pass. The reference
    /// the fused store-direct path is pinned against.
    pub fn predict_features_quantized(
        &self,
        qmlp: &QuantizedMlp,
        features: &[f32],
        scratch: &mut QuantScratch,
    ) -> f64 {
        let mut z = features.to_vec();
        self.normalizer.apply(&mut z);
        self.postprocess(f64::from(qmlp.predict(&z, scratch)))
    }

    /// Fused int8 hot path: assembles `arch`'s features in **encoded** form
    /// ([`FeatureStore::features_quantized_into`]) and feeds the segments
    /// straight into the quantized first layer — dequantization and
    /// standardization happen in registers, so no f32 feature vector is
    /// materialized. Bitwise-identical to
    /// [`ConcordePredictor::predict_features_quantized`] over the
    /// materialized vector.
    pub fn predict_quantized(
        &self,
        qmlp: &QuantizedMlp,
        store: &FeatureStore,
        arch: &MicroArch,
        buf: &mut QuantFeatureBuf,
        scratch: &mut QuantScratch,
    ) -> f64 {
        store.features_quantized_into(arch, self.layout.variant, buf);
        let raw = qmlp.predict_segments(
            buf,
            &self.normalizer.mean,
            &self.normalizer.std,
            self.normalizer.log1p,
            scratch,
        );
        self.postprocess(f64::from(raw))
    }

    /// Batched [`ConcordePredictor::predict_quantized`] over `archs` — the
    /// serving workers' int8-model group evaluation. With warm buffers the
    /// only allocation is the returned vector.
    pub fn predict_batch_quantized_with(
        &self,
        qmlp: &QuantizedMlp,
        store: &FeatureStore,
        archs: &[MicroArch],
        buf: &mut QuantFeatureBuf,
        scratch: &mut QuantScratch,
    ) -> Vec<f64> {
        archs
            .iter()
            .map(|arch| self.predict_quantized(qmlp, store, arch, buf, scratch))
            .collect()
    }

    /// Zero-allocation batched f32 prediction: the serving workers' group
    /// evaluation path.
    ///
    /// Distinct architectures are deduplicated (linear scan — batches repeat
    /// sweep points heavily), features are assembled once per distinct arch
    /// in arena-coherent order ([`FeatureStore::features_into_many`]), one
    /// batched forward pass covers the distinct rows, and results scatter
    /// back to every requesting row. Per-row independence of the batch
    /// kernel (pinned by the batch-vs-single property tests) makes the
    /// dedup bitwise-invisible: `out` equals
    /// [`ConcordePredictor::predict_batch_with`] exactly.
    ///
    /// `out` is cleared and refilled; with warm buffers nothing allocates.
    pub fn predict_batch_into(
        &self,
        store: &FeatureStore,
        archs: &[MicroArch],
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        dedup_archs(archs, &mut scratch.uniq, &mut scratch.map);
        let dim = self.layout.dim();
        scratch.xs.clear();
        scratch.xs.resize(scratch.uniq.len() * dim, 0.0);
        store.features_into_many(
            &scratch.uniq,
            self.layout.variant,
            &mut scratch.xs,
            &mut scratch.asm,
        );
        self.normalizer.apply_batch(&mut scratch.xs);
        scratch.raw.clear();
        scratch.raw.resize(scratch.uniq.len(), 0.0);
        self.mlp
            .predict_batch_into(&scratch.xs, &mut scratch.raw, &mut scratch.mlp);
        scratch.uniq_out.clear();
        scratch
            .uniq_out
            .extend(scratch.raw.iter().map(|&o| self.postprocess(f64::from(o))));
        out.clear();
        out.extend(scratch.map.iter().map(|&u| scratch.uniq_out[u as usize]));
    }

    /// Zero-allocation batched fused int8 prediction — the int8-model
    /// counterpart of [`ConcordePredictor::predict_batch_into`]: arch dedup,
    /// planned ([`FeatureStore::plan_assembly`]) arena-coherent assembly of
    /// each distinct row through the shared segment buffer, scatter back.
    /// Bitwise identical to
    /// [`ConcordePredictor::predict_batch_quantized_with`].
    pub fn predict_batch_quantized_into(
        &self,
        qmlp: &QuantizedMlp,
        store: &FeatureStore,
        archs: &[MicroArch],
        scratch: &mut PredictScratch,
        out: &mut Vec<f64>,
    ) {
        dedup_archs(archs, &mut scratch.uniq, &mut scratch.map);
        store.plan_assembly(&scratch.uniq, &mut scratch.asm);
        scratch.uniq_out.clear();
        scratch.uniq_out.resize(scratch.uniq.len(), 0.0);
        for slot in scratch.asm.slots() {
            let row = slot.row as usize;
            store.features_quantized_into_at(
                &scratch.uniq[row],
                self.layout.variant,
                &mut scratch.qbuf,
                slot.di as usize,
                slot.ii as usize,
            );
            let raw = qmlp.predict_segments(
                &scratch.qbuf,
                &self.normalizer.mean,
                &self.normalizer.std,
                self.normalizer.log1p,
                &mut scratch.quant,
            );
            scratch.uniq_out[row] = self.postprocess(f64::from(raw));
        }
        out.clear();
        out.extend(scratch.map.iter().map(|&u| scratch.uniq_out[u as usize]));
    }

    /// Feature variant this model consumes.
    pub fn variant(&self) -> FeatureVariant {
        self.layout.variant
    }

    /// Serializes the predictor to JSON at `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let f = std::fs::File::create(path)?;
        serde_json::to_writer(std::io::BufWriter::new(f), self).map_err(std::io::Error::other)
    }

    /// Loads a predictor previously written by [`ConcordePredictor::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or deserialization error.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let f = std::fs::File::open(path)?;
        serde_json::from_reader(std::io::BufReader::new(f)).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_analytic::distribution::Encoding;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn normalizer_standardizes() {
        // Two dims: constant 5, and {0, 10}.
        let xs = vec![5.0f32, 0.0, 5.0, 10.0];
        let n = Normalizer::fit(&xs, 2, false);
        assert!((n.mean[0] - 5.0).abs() < 1e-6);
        assert!((n.mean[1] - 5.0).abs() < 1e-6);
        let mut x = vec![5.0f32, 10.0];
        n.apply(&mut x);
        assert!(x[0].abs() < 1e-3, "constant dim -> 0");
        assert!((x[1] - 1.0).abs() < 1e-5, "one std above mean");
    }

    #[test]
    fn constant_dims_do_not_explode() {
        let xs = vec![1.0f32; 30];
        let n = Normalizer::fit(&xs, 3, false);
        let mut x = vec![100.0f32, 100.0, 100.0];
        n.apply(&mut x);
        for v in x {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let layout = FeatureLayout {
            encoding: Encoding { levels: 4 },
            variant: FeatureVariant::Base,
        };
        let dim = layout.dim();
        let model = ConcordePredictor {
            layout,
            normalizer: Normalizer {
                mean: vec![0.0; dim],
                std: vec![1.0; dim],
                log1p: false,
            },
            mlp: Mlp::new(&[dim, 8, 1], &mut rng),
            log_output: true,
            output_clamp: None,
        };
        let dir = std::env::temp_dir().join("concorde_model_test.json");
        model.save(&dir).unwrap();
        let loaded = ConcordePredictor::load(&dir).unwrap();
        let x = vec![0.5f32; dim];
        assert!((model.predict_features(&x) - loaded.predict_features(&x)).abs() < 1e-9);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn predictions_are_positive() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let layout = FeatureLayout {
            encoding: Encoding { levels: 4 },
            variant: FeatureVariant::Base,
        };
        let dim = layout.dim();
        let model = ConcordePredictor {
            layout,
            normalizer: Normalizer {
                mean: vec![0.0; dim],
                std: vec![1.0; dim],
                log1p: true,
            },
            mlp: Mlp::new(&[dim, 4, 1], &mut rng),
            log_output: true,
            output_clamp: Some((0.5, 10.0)),
        };
        for s in 0..20 {
            let x = vec![s as f32 * -3.0; dim];
            assert!(model.predict_features(&x) > 0.0);
        }
    }
}
