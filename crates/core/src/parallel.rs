//! Tiny deterministic parallel-map used across the crate's compute paths.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `threads` scoped workers (work-stealing by atomic
/// counter); falls back to a serial loop for one thread or tiny `n`. Output
/// order is by index, so results are deterministic regardless of scheduling.
pub fn parallel_map<T: Send, F: Fn(usize) -> T + Sync>(n: usize, threads: usize, f: F) -> Vec<T> {
    let threads = threads.min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("all tasks completed")
        })
        .collect()
}

/// `parallel_map` over all available cores.
pub fn parallel_map_all<T: Send, F: Fn(usize) -> T + Sync>(n: usize, f: F) -> Vec<T> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    parallel_map(n, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_ordered_for_any_thread_count() {
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 4, 9] {
            assert_eq!(parallel_map(100, threads, |i| i * i), want);
        }
        assert_eq!(parallel_map_all(100, |i| i * i), want);
    }

    #[test]
    fn empty_and_oversubscribed() {
        assert_eq!(parallel_map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(3, 64, |i| i), vec![0, 1, 2]);
    }
}
