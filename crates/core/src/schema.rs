//! Versioned schema of the flat ML feature vector.
//!
//! A [`FeatureSchema`] names every block of the model input — one block per
//! [`Resource`], the misprediction scalar, the pipeline-stall group, the
//! latency-distribution group, and the parameter tail — with its offset and
//! length for a given encoding width and [`FeatureVariant`]. It is the single
//! source of truth shared by feature assembly ([`FeatureStore`]), variant
//! projection, the trainer, Shapley attribution over feature blocks, the
//! ablation experiments, and the serving wire protocol (`{"cmd": "schema"}`),
//! replacing the hand-kept `11·e + 1 + …` index arithmetic that previously
//! lived in each of those places.
//!
//! [`FeatureStore`]: crate::features::FeatureStore

use concorde_analytic::distribution::Encoding;
use concorde_analytic::rob::ROB_SWEEP;
use concorde_cyclesim::MicroArch;
use serde::{Deserialize, Serialize};

use crate::arena::ArenaEncoding;
use crate::features::{FeatureVariant, Resource};

/// Version of the feature-vector layout. Bump on any change to block order,
/// block contents, or encoding semantics; persisted in store artifacts and
/// reported over the serving protocol so offline featurization and online
/// serving can detect mismatches.
///
/// v3: stores declare an [`ArenaEncoding`] (`f32`/`f16`/`int8`); quantized
/// arenas carry per-block affine `(scale, offset)` dequantization params, and
/// the artifact layout is 8-byte-aligned for zero-copy mmap loads.
pub const SCHEMA_VERSION: u32 = 3;

/// Which section of the vector a block belongs to (paper Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockGroup {
    /// Per-resource throughput distributions (§3.2.1).
    Primary,
    /// The branch-misprediction-rate scalar (§3.2.2).
    Mispredict,
    /// Pipeline-stall features: ISB/branch window counts + ROB curve (§3.2.2).
    Stall,
    /// Latency distributions (§3.2.2).
    Latency,
    /// The 23-dimensional normalized parameter tail.
    Params,
}

impl BlockGroup {
    /// All groups in vector order.
    pub const ALL: [BlockGroup; 5] = [
        BlockGroup::Primary,
        BlockGroup::Mispredict,
        BlockGroup::Stall,
        BlockGroup::Latency,
        BlockGroup::Params,
    ];
}

/// One named, contiguous span of the feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureBlock {
    /// Stable block name (e.g. `"rob"`, `"issue_latency"`, `"params"`).
    pub name: String,
    /// Section the block belongs to.
    pub group: BlockGroup,
    /// First dimension of the block.
    pub offset: usize,
    /// Number of dimensions.
    pub len: usize,
}

impl FeatureBlock {
    /// Index range of the block within the feature vector.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// The complete, versioned layout of one feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSchema {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub version: u32,
    /// Distribution encoding the blocks were sized for.
    pub encoding: Encoding,
    /// Feature groups included.
    pub variant: FeatureVariant,
    /// How the backing store's arenas are encoded (`f32`/`f16`/`int8`).
    /// Quantized stores record per-block affine `(scale, offset)` params in
    /// the arenas themselves; the assembled vector is always `f32`.
    pub arena_encoding: ArenaEncoding,
    blocks: Vec<FeatureBlock>,
}

impl FeatureSchema {
    /// Builds the schema for `encoding` and `variant`.
    pub fn new(encoding: Encoding, variant: FeatureVariant) -> Self {
        let e = encoding.dim();
        let s = ROB_SWEEP.len();
        let mut blocks = Vec::with_capacity(Resource::ALL.len() + 10);
        let mut offset = 0usize;
        let mut push = |name: &str, group: BlockGroup, len: usize| {
            blocks.push(FeatureBlock {
                name: name.to_string(),
                group,
                offset,
                len,
            });
            offset += len;
        };
        for res in Resource::ALL {
            push(res.name(), BlockGroup::Primary, e);
        }
        push("mispredict", BlockGroup::Mispredict, 1);
        if variant != FeatureVariant::Base {
            push("isb", BlockGroup::Stall, e);
            push("branch_direct_uncond", BlockGroup::Stall, e);
            push("branch_direct_cond", BlockGroup::Stall, e);
            push("branch_indirect", BlockGroup::Stall, e);
            push("rob_curve", BlockGroup::Stall, s);
        }
        if variant == FeatureVariant::Full {
            push("exec_latency", BlockGroup::Latency, e);
            push("issue_latency", BlockGroup::Latency, s * e);
            push("commit_latency", BlockGroup::Latency, s * e);
        }
        push("params", BlockGroup::Params, MicroArch::ENCODED_DIM);
        let schema = FeatureSchema {
            version: SCHEMA_VERSION,
            encoding,
            variant,
            arena_encoding: ArenaEncoding::F32,
            blocks,
        };
        debug_assert_eq!(schema.dim(), Self::dim_for(encoding, variant));
        schema
    }

    /// The same schema annotated with the arena encoding of the store(s) it
    /// will be assembled from (what `{"cmd": "schema"}` reports for a server
    /// running `--encoding f16|int8`).
    pub fn with_arena_encoding(mut self, enc: ArenaEncoding) -> Self {
        self.arena_encoding = enc;
        self
    }

    /// Total input dimension for `encoding` and `variant` without building
    /// the block list (what [`FeatureLayout::dim`] delegates to).
    ///
    /// [`FeatureLayout::dim`]: crate::features::FeatureLayout::dim
    pub fn dim_for(encoding: Encoding, variant: FeatureVariant) -> usize {
        let e = encoding.dim();
        let s = ROB_SWEEP.len();
        let base = Resource::ALL.len() * e + 1 + MicroArch::ENCODED_DIM;
        match variant {
            FeatureVariant::Base => base,
            FeatureVariant::BaseBranch => base + 4 * e + s,
            FeatureVariant::Full => base + 4 * e + s + (2 * s + 1) * e,
        }
    }

    /// Total input dimension.
    pub fn dim(&self) -> usize {
        self.blocks.last().map_or(0, |b| b.offset + b.len)
    }

    /// All blocks in vector order.
    pub fn blocks(&self) -> &[FeatureBlock] {
        &self.blocks
    }

    /// Looks up a block by name.
    pub fn block(&self, name: &str) -> Option<&FeatureBlock> {
        self.blocks.iter().find(|b| b.name == name)
    }

    /// Index range of a named block.
    pub fn range(&self, name: &str) -> Option<std::ops::Range<usize>> {
        self.block(name).map(FeatureBlock::range)
    }

    /// Contiguous index range covered by a whole group (blocks of one group
    /// are adjacent by construction); `None` if the variant omits the group.
    pub fn group_range(&self, group: BlockGroup) -> Option<std::ops::Range<usize>> {
        let mut it = self.blocks.iter().filter(|b| b.group == group);
        let first = it.next()?;
        let last = it.next_back().unwrap_or(first);
        Some(first.offset..last.offset + last.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_matches_table3() {
        let s = FeatureSchema::new(Encoding::paper(), FeatureVariant::Full);
        assert_eq!(s.dim(), 3873);
        assert_eq!(s.version, SCHEMA_VERSION);
        assert_eq!(s.blocks().len(), 11 + 1 + 5 + 3 + 1);
        // Blocks tile the vector exactly: contiguous, no gaps or overlaps.
        let mut pos = 0;
        for b in s.blocks() {
            assert_eq!(b.offset, pos, "{}", b.name);
            pos += b.len;
        }
        assert_eq!(pos, s.dim());
    }

    #[test]
    fn variants_drop_whole_groups() {
        let enc = Encoding { levels: 8 };
        let base = FeatureSchema::new(enc, FeatureVariant::Base);
        assert!(base.group_range(BlockGroup::Stall).is_none());
        assert!(base.group_range(BlockGroup::Latency).is_none());
        let bb = FeatureSchema::new(enc, FeatureVariant::BaseBranch);
        assert!(bb.group_range(BlockGroup::Stall).is_some());
        assert!(bb.group_range(BlockGroup::Latency).is_none());
        let full = FeatureSchema::new(enc, FeatureVariant::Full);
        for g in BlockGroup::ALL {
            assert!(full.group_range(g).is_some(), "{g:?}");
        }
        // Shared blocks sit at identical offsets across variants.
        for name in ["rob", "mem_latency", "mispredict"] {
            assert_eq!(base.range(name), full.range(name), "{name}");
        }
    }

    #[test]
    fn dim_for_agrees_with_blocks() {
        for levels in [4usize, 8, 16, 50] {
            let enc = Encoding { levels };
            for v in [
                FeatureVariant::Base,
                FeatureVariant::BaseBranch,
                FeatureVariant::Full,
            ] {
                assert_eq!(
                    FeatureSchema::new(enc, v).dim(),
                    FeatureSchema::dim_for(enc, v)
                );
            }
        }
    }

    #[test]
    fn named_lookups_and_params_tail() {
        let s = FeatureSchema::new(Encoding::compact(), FeatureVariant::Full);
        let params = s.block("params").unwrap();
        assert_eq!(params.len, MicroArch::ENCODED_DIM);
        assert_eq!(params.offset + params.len, s.dim());
        assert!(s.block("no_such_block").is_none());
        let e = Encoding::compact().dim();
        assert_eq!(s.range("rob").unwrap(), 0..e);
        assert_eq!(s.block("issue_latency").unwrap().len, ROB_SWEEP.len() * e);
    }
}
