//! Reproduction profiles and parameter sweep grids.
//!
//! [`ReproProfile`] gathers every scaling knob (region length, window size,
//! encoding width, dataset and training sizes) with three presets: the
//! scaled-down default, a paper-faithful configuration, and a tiny profile
//! for tests. [`SweepConfig`] declares which parameter values a
//! [`FeatureStore`](crate::features::FeatureStore) precomputes — the paper's
//! per-parameter sweeps (§2: "Concorde sweeps the range of each CPU
//! parameter... precomputing the feature set"), which can be full,
//! power-of-two quantized (§5.2.3), or restricted to the exact values an
//! experiment visits.

use concorde_analytic::distribution::Encoding;
use concorde_cache::MemConfig;
use concorde_cyclesim::MicroArch;
use serde::{Deserialize, Serialize};

/// All scaling knobs for one reproduction run (see DESIGN.md §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproProfile {
    /// Instructions per analyzed region.
    pub region_len: usize,
    /// Functional warmup instructions preceding each region.
    pub warmup_len: usize,
    /// Throughput window length `k` (paper: 400).
    pub window_k: usize,
    /// Distribution encoding width.
    pub encoding: Encoding,
    /// Training-set size (samples).
    pub train_samples: usize,
    /// Test-set size (samples).
    pub test_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Hidden-layer sizes of the MLP (paper: [256, 128]).
    pub hidden: Vec<usize>,
    /// AdamW base learning rate.
    pub lr: f32,
    /// AdamW weight decay (paper: 0.3 — on the much larger paper dataset;
    /// scaled down for the smaller default dataset).
    pub weight_decay: f32,
    /// Master seed.
    pub seed: u64,
}

impl ReproProfile {
    /// Scaled-down default: full mechanism, minutes-scale runtime.
    pub fn default_repro() -> Self {
        ReproProfile {
            region_len: 24_000,
            warmup_len: 16_000,
            window_k: 256,
            encoding: Encoding::compact(),
            train_samples: 12_000,
            test_samples: 2_400,
            epochs: 40,
            batch_size: 256,
            hidden: vec![256, 128],
            lr: 1e-3,
            weight_decay: 0.01,
            seed: 0xC0C0,
        }
    }

    /// Paper-faithful sizes (§4). Expect hours of CPU time.
    pub fn paper() -> Self {
        ReproProfile {
            region_len: 100_000,
            warmup_len: 100_000,
            window_k: 400,
            encoding: Encoding::paper(),
            train_samples: 789_024,
            test_samples: 48_472,
            epochs: 1521,
            batch_size: 50_000,
            hidden: vec![256, 128],
            lr: 1e-3,
            weight_decay: 0.3,
            seed: 0xC0C0,
        }
    }

    /// Tiny profile for unit/integration tests (seconds).
    pub fn quick() -> Self {
        ReproProfile {
            region_len: 4_096,
            warmup_len: 4_096,
            window_k: 256,
            encoding: Encoding { levels: 8 },
            train_samples: 96,
            test_samples: 24,
            epochs: 12,
            batch_size: 32,
            hidden: vec![64, 32],
            lr: 2e-3,
            weight_decay: 0.01,
            seed: 0xC0C0,
        }
    }
}

/// Power-of-two sweep values for a range `[1, max]`.
pub fn pow2_sweep(max: u32) -> Vec<u32> {
    let mut v = Vec::new();
    let mut x = 1u32;
    while x <= max {
        v.push(x);
        x *= 2;
    }
    v
}

/// Which parameter values a feature store precomputes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// ROB sizes (always unioned with the 11-point aux sweep {1,2,…,1024}).
    pub rob: Vec<u32>,
    /// Load-queue sizes.
    pub lq: Vec<u32>,
    /// Store-queue sizes.
    pub sq: Vec<u32>,
    /// ALU issue widths.
    pub alu: Vec<u32>,
    /// FP issue widths.
    pub fp: Vec<u32>,
    /// Load-store issue widths.
    pub ls: Vec<u32>,
    /// (load-store pipes, load pipes) pairs.
    pub pipes: Vec<(u32, u32)>,
    /// Maximum I-cache fill counts.
    pub fills: Vec<u32>,
    /// Fetch buffer counts.
    pub buffers: Vec<u32>,
    /// D-side memory configurations to analyze.
    pub d_cfgs: Vec<MemConfig>,
    /// I-side memory configurations to analyze.
    pub i_cfgs: Vec<MemConfig>,
}

impl SweepConfig {
    /// The §5.2.3 power-of-two quantized sweep over the full design space
    /// (1.8 × 10¹⁸ reachable combinations).
    pub fn quantized() -> Self {
        SweepConfig {
            rob: pow2_sweep(1024),
            lq: pow2_sweep(256),
            sq: pow2_sweep(256),
            alu: (1..=8).collect(),
            fp: (1..=8).collect(),
            ls: (1..=8).collect(),
            pipes: (1..=8)
                .flat_map(|lsp| (0..=8).map(move |lp| (lsp, lp)))
                .collect(),
            fills: vec![1, 2, 4, 8, 16, 32],
            buffers: (1..=8).collect(),
            d_cfgs: MemConfig::all_data_configs(),
            i_cfgs: MemConfig::all_inst_configs(),
        }
    }

    /// A minimal sweep covering exactly one microarchitecture (used when
    /// labelling training samples: the paper runs the analytical models "for
    /// one (randomly selected) microarchitecture for each program region",
    /// §5.2.4).
    pub fn for_arch(arch: &MicroArch) -> Self {
        SweepConfig {
            rob: vec![arch.rob_size],
            lq: vec![arch.lq_size],
            sq: vec![arch.sq_size],
            alu: vec![arch.alu_width],
            fp: vec![arch.fp_width],
            ls: vec![arch.ls_width],
            pipes: vec![(arch.ls_pipes, arch.load_pipes)],
            fills: vec![arch.max_icache_fills],
            buffers: vec![arch.fetch_buffers],
            d_cfgs: vec![arch.mem],
            i_cfgs: vec![arch.mem],
        }
    }

    /// The union of values visited when moving any subset of parameters from
    /// `base` to `target` — the exact grid Shapley attribution needs.
    pub fn for_pair(base: &MicroArch, target: &MicroArch) -> Self {
        let uniq = |mut v: Vec<u32>| {
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut d_cfgs = Vec::new();
        for &l1d in &[base.mem.l1d_kb, target.mem.l1d_kb] {
            for &l2 in &[base.mem.l2_kb, target.mem.l2_kb] {
                for &pf in &[base.mem.prefetch_degree, target.mem.prefetch_degree] {
                    d_cfgs.push(MemConfig {
                        l1i_kb: 64,
                        l1d_kb: l1d,
                        l2_kb: l2,
                        prefetch_degree: pf,
                    });
                }
            }
        }
        d_cfgs.sort_by_key(|c| c.data_key());
        d_cfgs.dedup_by_key(|c| c.data_key());
        let mut i_cfgs = Vec::new();
        for &l1i in &[base.mem.l1i_kb, target.mem.l1i_kb] {
            for &l2 in &[base.mem.l2_kb, target.mem.l2_kb] {
                i_cfgs.push(MemConfig {
                    l1i_kb: l1i,
                    l1d_kb: 64,
                    l2_kb: l2,
                    prefetch_degree: 0,
                });
            }
        }
        i_cfgs.sort_by_key(|c| c.inst_key());
        i_cfgs.dedup_by_key(|c| c.inst_key());
        SweepConfig {
            rob: uniq(vec![base.rob_size, target.rob_size]),
            lq: uniq(vec![base.lq_size, target.lq_size]),
            sq: uniq(vec![base.sq_size, target.sq_size]),
            alu: uniq(vec![base.alu_width, target.alu_width]),
            fp: uniq(vec![base.fp_width, target.fp_width]),
            ls: uniq(vec![base.ls_width, target.ls_width]),
            pipes: {
                let mut v = vec![
                    (base.ls_pipes, base.load_pipes),
                    (base.ls_pipes, target.load_pipes),
                    (target.ls_pipes, base.load_pipes),
                    (target.ls_pipes, target.load_pipes),
                ];
                v.sort_unstable();
                v.dedup();
                v
            },
            fills: uniq(vec![base.max_icache_fills, target.max_icache_fills]),
            buffers: uniq(vec![base.fetch_buffers, target.fetch_buffers]),
            d_cfgs,
            i_cfgs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_in_size() {
        let q = ReproProfile::quick();
        let d = ReproProfile::default_repro();
        let p = ReproProfile::paper();
        assert!(q.train_samples < d.train_samples && d.train_samples < p.train_samples);
        assert_eq!(p.window_k, 400);
        assert_eq!(p.encoding.dim(), 101);
    }

    #[test]
    fn pow2_grids() {
        assert_eq!(pow2_sweep(1024).len(), 11);
        assert_eq!(pow2_sweep(256).len(), 9);
        assert_eq!(pow2_sweep(1), vec![1]);
    }

    #[test]
    fn quantized_sweep_matches_paper_counts() {
        let s = SweepConfig::quantized();
        assert_eq!(s.rob.len(), 11);
        assert_eq!(s.lq.len(), 9);
        assert_eq!(s.d_cfgs.len(), 40);
        assert_eq!(s.i_cfgs.len(), 20);
        assert_eq!(s.pipes.len(), 72);
    }

    #[test]
    fn pair_sweep_covers_both_endpoints() {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let s = SweepConfig::for_pair(&base, &target);
        assert!(s.rob.contains(&128) && s.rob.contains(&1024));
        assert!(s.lq.contains(&12) && s.lq.contains(&256));
        assert_eq!(s.d_cfgs.len(), 8, "2 L1d x 2 L2 x 2 prefetch");
        assert_eq!(s.i_cfgs.len(), 4);
        assert_eq!(s.pipes.len(), 4, "(8,8),(8,0),(2,8),(2,0)");
    }

    #[test]
    fn arch_sweep_is_singleton() {
        let a = MicroArch::arm_n1();
        let s = SweepConfig::for_arch(&a);
        assert_eq!(s.rob, vec![128]);
        assert_eq!(s.d_cfgs.len(), 1);
    }
}
