//! Training and evaluation of Concorde's ML model.
//!
//! Minibatch AdamW with the paper's relative-error loss (Eq. 7) and halving
//! LR schedule (§4), data-parallel across threads: each thread computes
//! gradients over a shard of the minibatch against the immutable model, the
//! shards are merged, averaged, and applied.

use concorde_ml::{AdamW, ErrorStats, HalvingSchedule, Mlp, MlpGrads};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

use crate::dataset::{FeatureProjection, Sample};
use crate::features::{FeatureLayout, FeatureVariant};
use crate::model::{ConcordePredictor, Normalizer};
use crate::sweep::ReproProfile;

/// Training options beyond the profile's defaults.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Feature variant to train (Figure 12's ablation axis).
    pub variant: FeatureVariant,
    /// Hidden sizes override (`None` = profile's).
    pub hidden: Option<Vec<usize>>,
    /// Epoch override.
    pub epochs: Option<usize>,
    /// Worker threads (0 = all).
    pub threads: usize,
    /// Print progress lines.
    pub verbose: bool,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            variant: FeatureVariant::Full,
            hidden: None,
            epochs: None,
            threads: 0,
            verbose: false,
        }
    }
}

/// Trains a [`ConcordePredictor`] on `samples` labelled with CPI.
pub fn train_model(
    samples: &[Sample],
    profile: &ReproProfile,
    opts: &TrainOptions,
) -> ConcordePredictor {
    let labels: Vec<f64> = samples.iter().map(|s| s.cpi).collect();
    train_model_with_labels(samples, &labels, profile, opts)
}

/// Trains with arbitrary positive labels (e.g. occupancy percentages for the
/// §5.2.6 study).
///
/// # Panics
///
/// Panics if `samples` is empty or any label is not strictly positive.
pub fn train_model_with_labels(
    samples: &[Sample],
    labels: &[f64],
    profile: &ReproProfile,
    opts: &TrainOptions,
) -> ConcordePredictor {
    assert!(!samples.is_empty(), "cannot train on an empty dataset");
    assert_eq!(samples.len(), labels.len());
    assert!(
        labels.iter().all(|&y| y > 0.0),
        "relative-error loss needs positive labels"
    );

    let layout = FeatureLayout {
        encoding: profile.encoding,
        variant: opts.variant,
    };
    let dim = layout.dim();
    let n = samples.len();

    // Project + flatten features once (one projection for the whole set).
    let projection = FeatureProjection::new(profile.encoding, opts.variant);
    let mut xs = Vec::with_capacity(n * dim);
    for s in samples {
        xs.extend(projection.project(&s.features));
    }
    let normalizer = Normalizer::fit(&xs, dim, true);
    normalizer.apply_batch(&mut xs);
    let ys: Vec<f32> = labels.iter().map(|&y| y as f32).collect();

    // The MLP emits o = ln(CPI) and trains on |o − ln y|: the first-order
    // expansion of the paper's relative error |exp(o) − y| / y around o = ln y
    // (for small errors, |o − ln y| ≈ |ŷ − y| / y), with bounded symmetric
    // gradients that keep small-dataset training stable. Evaluation always
    // reports the paper's exact Eq. 7 metric.
    let log_relative = |o: f32, y: f32| {
        let t = y.ln();
        let d = o - t;
        (d.abs(), if d >= 0.0 { 1.0 } else { -1.0 })
    };

    let mut rng = ChaCha12Rng::seed_from_u64(profile.seed ^ 0x7EA1);
    let hidden = opts
        .hidden
        .clone()
        .unwrap_or_else(|| profile.hidden.clone());
    let mut dims = vec![dim];
    dims.extend(&hidden);
    dims.push(1);
    let mut mlp = Mlp::new(&dims, &mut rng);
    let mut opt = AdamW::new(&mlp, profile.lr, profile.weight_decay);

    let epochs = opts.epochs.unwrap_or(profile.epochs);
    let batch = profile.batch_size.min(n).max(1);
    let total_steps = (epochs * n.div_ceil(batch)) as u64;
    let schedule = HalvingSchedule::scaled(total_steps.max(4));
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.threads
    };

    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(batch) {
            // Gather the minibatch contiguously.
            let bx: Vec<f32> = chunk
                .iter()
                .flat_map(|&i| xs[i * dim..(i + 1) * dim].iter().copied())
                .collect();
            let by: Vec<f32> = chunk.iter().map(|&i| ys[i]).collect();

            let shard = chunk.len().div_ceil(threads).max(1);
            let results: Vec<(MlpGrads, f64, usize)> = std::thread::scope(|s| {
                let mlp_ref = &mlp;
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * shard;
                    if lo >= chunk.len() {
                        break;
                    }
                    let hi = ((t + 1) * shard).min(chunk.len());
                    let sx = &bx[lo * dim..hi * dim];
                    let sy = &by[lo..hi];
                    handles.push(s.spawn(move || {
                        let (g, l) = mlp_ref.grad_batch(sx, sy, log_relative);
                        (g, l, sy.len())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trainer thread panicked"))
                    .collect()
            });

            let mut grads = MlpGrads::zeros_like(&mlp);
            let mut loss = 0.0;
            for (g, l, cnt) in results {
                grads.merge(&g);
                loss += l * cnt as f64;
            }
            grads.average();
            let scale = schedule.scale(opt.steps());
            opt.apply(&mut mlp, &grads, scale);
            epoch_loss += loss / chunk.len() as f64;
            batches += 1;
        }
        if opts.verbose && (epoch % 5 == 0 || epoch + 1 == epochs) {
            eprintln!(
                "  epoch {epoch:>3}/{epochs}: train rel-err {:.4}",
                epoch_loss / batches.max(1) as f64
            );
        }
    }

    let lo = labels.iter().cloned().fold(f64::MAX, f64::min);
    let hi = labels.iter().cloned().fold(0.0f64, f64::max);
    ConcordePredictor {
        layout,
        normalizer,
        mlp,
        log_output: true,
        output_clamp: Some((lo / 2.0, hi * 2.0)),
    }
}

/// Evaluates a predictor; returns per-sample `(prediction, label)` pairs.
pub fn predict_all(
    pred: &ConcordePredictor,
    samples: &[Sample],
    profile: &ReproProfile,
) -> Vec<(f64, f64)> {
    let projection = FeatureProjection::new(profile.encoding, pred.variant());
    samples
        .iter()
        .map(|s| {
            let x = projection.project(&s.features);
            (pred.predict_features(&x), s.cpi)
        })
        .collect()
}

/// Evaluates a predictor against arbitrary labels.
pub fn predict_all_with_labels(
    pred: &ConcordePredictor,
    samples: &[Sample],
    labels: &[f64],
    profile: &ReproProfile,
) -> Vec<(f64, f64)> {
    let projection = FeatureProjection::new(profile.encoding, pred.variant());
    samples
        .iter()
        .zip(labels)
        .map(|(s, &y)| {
            let x = projection.project(&s.features);
            (pred.predict_features(&x), y)
        })
        .collect()
}

/// Convenience: train on `train`, evaluate on `test`.
pub fn train_and_evaluate(
    train: &[Sample],
    test: &[Sample],
    profile: &ReproProfile,
    opts: &TrainOptions,
) -> (ConcordePredictor, ErrorStats) {
    let model = train_model(train, profile, opts);
    let pairs = predict_all(&model, test, profile);
    let stats = ErrorStats::from_pairs(&pairs);
    (model, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, ArchSampling, DatasetConfig};

    fn tiny_data(n: usize, seed: u64) -> (Vec<Sample>, ReproProfile) {
        let profile = ReproProfile::quick();
        let cfg = DatasetConfig {
            profile: profile.clone(),
            n,
            seed,
            arch: ArchSampling::Random,
            workloads: Some(vec![15, 16, 20]), // O1, O2, S2
            threads: 0,
        };
        (generate_dataset(&cfg), profile)
    }

    #[test]
    fn training_reduces_error_vs_untrained_scale() {
        let (data, profile) = tiny_data(80, 21);
        let (train, test) = data.split_at(64);
        let opts = TrainOptions {
            epochs: Some(30),
            ..TrainOptions::default()
        };
        let (_, stats) = train_and_evaluate(train, test, &profile, &opts);
        // With 64 samples we just require learning far beyond a constant-1.0
        // guess (typical CPI spread here is large). Compare medians: at this
        // dataset size a single out-of-distribution test sample saturating the
        // output clamp dominates the mean, so the mean is luck of the split.
        let naive: Vec<(f64, f64)> = test.iter().map(|s| (1.0, s.cpi)).collect();
        let naive_stats = ErrorStats::from_pairs(&naive);
        assert!(
            stats.p50 < naive_stats.p50,
            "trained median {:.3} must beat naive median {:.3}",
            stats.p50,
            naive_stats.p50
        );
        // Loose mean guard against catastrophic regressions: one clamped
        // out-of-distribution sample can cost tens of naive-means, so allow
        // slack, but a blowup beyond this is a real training failure.
        assert!(
            stats.mean < naive_stats.mean * 20.0,
            "trained mean {:.3} catastrophically worse than naive {:.3}",
            stats.mean,
            naive_stats.mean
        );
        assert!(stats.mean.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let (data, profile) = tiny_data(40, 23);
        let opts = TrainOptions {
            epochs: Some(4),
            threads: 2,
            ..TrainOptions::default()
        };
        let a = train_model(&data, &profile, &opts);
        let b = train_model(&data, &profile, &opts);
        let pa = predict_all(&a, &data, &profile);
        let pb = predict_all(&b, &data, &profile);
        for ((x, _), (y, _)) in pa.iter().zip(&pb) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn variants_train_with_correct_dims() {
        let (data, profile) = tiny_data(24, 25);
        for v in [
            FeatureVariant::Base,
            FeatureVariant::BaseBranch,
            FeatureVariant::Full,
        ] {
            let opts = TrainOptions {
                variant: v,
                epochs: Some(2),
                ..TrainOptions::default()
            };
            let m = train_model(&data, &profile, &opts);
            assert_eq!(m.layout.variant, v);
            let pairs = predict_all(&m, &data, &profile);
            assert!(pairs.iter().all(|(p, _)| p.is_finite() && *p > 0.0));
        }
    }

    #[test]
    fn alternate_labels_train() {
        let (data, profile) = tiny_data(24, 27);
        let labels: Vec<f64> = data.iter().map(|s| s.rob_occupancy.max(0.1)).collect();
        let opts = TrainOptions {
            epochs: Some(2),
            ..TrainOptions::default()
        };
        let m = train_model_with_labels(&data, &labels, &profile, &opts);
        let pairs = predict_all_with_labels(&m, &data, &labels, &profile);
        assert_eq!(pairs.len(), data.len());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let profile = ReproProfile::quick();
        let _ = train_model(&[], &profile, &TrainOptions::default());
    }
}
