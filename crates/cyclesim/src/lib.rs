//! # concorde-cyclesim
//!
//! The reference trace-driven cycle-level out-of-order CPU simulator: the
//! ground-truth function `f(program, microarchitecture) → CPI` that Concorde
//! learns to approximate (the paper uses a proprietary gem5-based simulator in
//! this role; see `DESIGN.md` for the substitution argument).
//!
//! All 20 design parameters of the paper's Table 1 are modelled — see
//! [`MicroArch`] — spanning the frontend (fetch width/buffers, I-cache fills,
//! decode/rename widths, branch predictor), backend (ROB, load/store queues,
//! per-class issue widths, load and load-store pipes, commit width) and the
//! memory hierarchy (L1i/L1d/L2 sizes, L1d stride prefetcher).
//!
//! ```
//! use concorde_cyclesim::{simulate, MicroArch, SimOptions};
//! use concorde_trace::{by_id, generate_region};
//!
//! let region = generate_region(&by_id("O1").unwrap(), 0, 0, 4_000);
//! let result = simulate(&region.instrs, &MicroArch::arm_n1(), SimOptions::default());
//! assert!(result.cpi() > 0.1 && result.cpi() < 100.0);
//! ```

#![warn(missing_docs)]

pub mod params;
pub mod pipeline;
pub mod stats;

pub use params::{design_space_size, quantized_space_size, MicroArch, ParamId};
pub use pipeline::{
    simulate, simulate_warmed, FETCH_BUFFER_ENTRIES, REDIRECT_PENALTY, RENAME_Q_CAP,
};
pub use stats::{SimOptions, SimResult};
