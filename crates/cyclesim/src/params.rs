//! The 20-parameter microarchitectural design space (paper Table 1).

use concorde_branch::PredictorKind;
use concorde_cache::{MemConfig, L1_SIZES_KB, L2_SIZES_KB, PREFETCH_DEGREES};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// A full microarchitecture specification: every Table 1 parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroArch {
    /// Reorder buffer size (1..=1024).
    pub rob_size: u32,
    /// Commit width (1..=12).
    pub commit_width: u32,
    /// Load queue size (1..=256).
    pub lq_size: u32,
    /// Store queue size (1..=256).
    pub sq_size: u32,
    /// Integer ALU issue width (1..=8).
    pub alu_width: u32,
    /// Floating-point issue width (1..=8).
    pub fp_width: u32,
    /// Load-store issue width (1..=8).
    pub ls_width: u32,
    /// Number of load-store pipes (1..=8).
    pub ls_pipes: u32,
    /// Number of load-only pipes (0..=8).
    pub load_pipes: u32,
    /// Fetch width (1..=12).
    pub fetch_width: u32,
    /// Decode width (1..=12).
    pub decode_width: u32,
    /// Rename width (1..=12).
    pub rename_width: u32,
    /// Number of fetch buffers (1..=8), each one cache line deep.
    pub fetch_buffers: u32,
    /// Maximum outstanding I-cache fills (1..=32).
    pub max_icache_fills: u32,
    /// Branch predictor (Simple with a misprediction %, or TAGE).
    pub predictor: PredictorKind,
    /// Memory parameters (L1i/L1d/L2 sizes, L1d prefetcher degree).
    pub mem: MemConfig,
}

impl Default for MicroArch {
    fn default() -> Self {
        Self::arm_n1()
    }
}

impl MicroArch {
    /// The ARM Neoverse N1-based configuration from Table 1's last column.
    pub fn arm_n1() -> Self {
        MicroArch {
            rob_size: 128,
            commit_width: 8,
            lq_size: 12,
            sq_size: 18,
            alu_width: 3,
            fp_width: 2,
            ls_width: 2,
            ls_pipes: 2,
            load_pipes: 0,
            fetch_width: 4,
            decode_width: 4,
            rename_width: 4,
            fetch_buffers: 1,
            max_icache_fills: 8,
            predictor: PredictorKind::Tage,
            mem: MemConfig {
                l1i_kb: 64,
                l1d_kb: 64,
                l2_kb: 1024,
                prefetch_degree: 0,
            },
        }
    }

    /// The "big core" baseline of §6: every parameter at its Table 1 maximum
    /// and perfect branch prediction (`Simple` with 0% mispredictions).
    pub fn big_core() -> Self {
        MicroArch {
            rob_size: 1024,
            commit_width: 12,
            lq_size: 256,
            sq_size: 256,
            alu_width: 8,
            fp_width: 8,
            ls_width: 8,
            ls_pipes: 8,
            load_pipes: 8,
            fetch_width: 12,
            decode_width: 12,
            rename_width: 12,
            fetch_buffers: 8,
            max_icache_fills: 32,
            predictor: PredictorKind::Simple { miss_pct: 0 },
            mem: MemConfig {
                l1i_kb: 256,
                l1d_kb: 256,
                l2_kb: 4096,
                prefetch_degree: 4,
            },
        }
    }

    /// Samples a microarchitecture uniformly from Table 1 (paper §4: every
    /// parameter drawn independently from its value range).
    pub fn sample(rng: &mut ChaCha12Rng) -> Self {
        let predictor = if rng.gen_bool(0.5) {
            PredictorKind::Tage
        } else {
            PredictorKind::Simple {
                miss_pct: rng.gen_range(0..=100),
            }
        };
        MicroArch {
            rob_size: rng.gen_range(1..=1024),
            commit_width: rng.gen_range(1..=12),
            lq_size: rng.gen_range(1..=256),
            sq_size: rng.gen_range(1..=256),
            alu_width: rng.gen_range(1..=8),
            fp_width: rng.gen_range(1..=8),
            ls_width: rng.gen_range(1..=8),
            ls_pipes: rng.gen_range(1..=8),
            load_pipes: rng.gen_range(0..=8),
            fetch_width: rng.gen_range(1..=12),
            decode_width: rng.gen_range(1..=12),
            rename_width: rng.gen_range(1..=12),
            fetch_buffers: rng.gen_range(1..=8),
            max_icache_fills: rng.gen_range(1..=32),
            predictor,
            mem: MemConfig {
                l1i_kb: L1_SIZES_KB[rng.gen_range(0..L1_SIZES_KB.len())],
                l1d_kb: L1_SIZES_KB[rng.gen_range(0..L1_SIZES_KB.len())],
                l2_kb: L2_SIZES_KB[rng.gen_range(0..L2_SIZES_KB.len())],
                prefetch_degree: PREFETCH_DEGREES[rng.gen_range(0..PREFETCH_DEGREES.len())],
            },
        }
    }

    /// Encodes the microarchitecture as the ML model's 23-dimensional
    /// parameter vector (paper Table 3, last column): 19 normalized scalars
    /// plus one-hot pairs for predictor type and prefetcher state.
    pub fn encode(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; Self::ENCODED_DIM];
        self.encode_into(&mut out);
        out
    }

    /// [`MicroArch::encode`] into a caller-owned buffer — the zero-allocation
    /// path used by feature assembly.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::ENCODED_DIM`.
    pub fn encode_into(&self, out: &mut [f32]) {
        let norm = |v: u32, max: u32| v as f32 / max as f32;
        let (simple, simple_pct) = match self.predictor {
            PredictorKind::Simple { miss_pct } => (1.0, f32::from(miss_pct) / 100.0),
            PredictorKind::Tage => (0.0, 0.0),
        };
        let vals = [
            norm(self.rob_size, 1024),
            norm(self.commit_width, 12),
            norm(self.lq_size, 256),
            norm(self.sq_size, 256),
            norm(self.alu_width, 8),
            norm(self.fp_width, 8),
            norm(self.ls_width, 8),
            norm(self.ls_pipes, 8),
            norm(self.load_pipes, 8),
            norm(self.fetch_width, 12),
            norm(self.decode_width, 12),
            norm(self.rename_width, 12),
            norm(self.fetch_buffers, 8),
            norm(self.max_icache_fills, 32),
            simple_pct,
            norm(self.mem.l1d_kb, 256),
            norm(self.mem.l1i_kb, 256),
            norm(self.mem.l2_kb, 4096),
            norm(self.mem.prefetch_degree, 4),
            // One-hot: predictor type.
            simple,
            1.0 - simple,
            // One-hot: prefetcher state.
            if self.mem.prefetch_degree > 0 {
                1.0
            } else {
                0.0
            },
            if self.mem.prefetch_degree > 0 {
                0.0
            } else {
                1.0
            },
        ];
        out.copy_from_slice(&vals);
    }

    /// Dimension of [`MicroArch::encode`]'s output.
    pub const ENCODED_DIM: usize = 23;
}

/// Identifier for each of the 20 Table 1 parameters; used by sweeps and
/// Shapley attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ParamId {
    RobSize,
    CommitWidth,
    LqSize,
    SqSize,
    AluWidth,
    FpWidth,
    LsWidth,
    LsPipes,
    LoadPipes,
    FetchWidth,
    DecodeWidth,
    RenameWidth,
    FetchBuffers,
    MaxIcacheFills,
    BranchPredictor,
    SimpleBpPct,
    L1dKb,
    L1iKb,
    L2Kb,
    PrefetchDegree,
}

impl ParamId {
    /// All 20 parameters in Table 1 order.
    pub const ALL: [ParamId; 20] = [
        ParamId::RobSize,
        ParamId::CommitWidth,
        ParamId::LqSize,
        ParamId::SqSize,
        ParamId::AluWidth,
        ParamId::FpWidth,
        ParamId::LsWidth,
        ParamId::LsPipes,
        ParamId::LoadPipes,
        ParamId::FetchWidth,
        ParamId::DecodeWidth,
        ParamId::RenameWidth,
        ParamId::FetchBuffers,
        ParamId::MaxIcacheFills,
        ParamId::BranchPredictor,
        ParamId::SimpleBpPct,
        ParamId::L1dKb,
        ParamId::L1iKb,
        ParamId::L2Kb,
        ParamId::PrefetchDegree,
    ];

    /// Number of discrete values this parameter can take (Table 1).
    pub fn cardinality(self) -> u64 {
        match self {
            ParamId::RobSize => 1024,
            ParamId::CommitWidth => 12,
            ParamId::LqSize | ParamId::SqSize => 256,
            ParamId::AluWidth | ParamId::FpWidth | ParamId::LsWidth | ParamId::LsPipes => 8,
            ParamId::LoadPipes => 9,
            ParamId::FetchWidth | ParamId::DecodeWidth | ParamId::RenameWidth => 12,
            ParamId::FetchBuffers => 8,
            ParamId::MaxIcacheFills => 32,
            ParamId::BranchPredictor => 2,
            ParamId::SimpleBpPct => 101,
            ParamId::L1dKb | ParamId::L1iKb => 5,
            ParamId::L2Kb => 4,
            ParamId::PrefetchDegree => 2,
        }
    }

    /// Copies parameter `self` from `src` into `dst` (the ablation/Shapley
    /// primitive: move one coordinate from a baseline to a target design).
    pub fn transplant(self, dst: &mut MicroArch, src: &MicroArch) {
        match self {
            ParamId::RobSize => dst.rob_size = src.rob_size,
            ParamId::CommitWidth => dst.commit_width = src.commit_width,
            ParamId::LqSize => dst.lq_size = src.lq_size,
            ParamId::SqSize => dst.sq_size = src.sq_size,
            ParamId::AluWidth => dst.alu_width = src.alu_width,
            ParamId::FpWidth => dst.fp_width = src.fp_width,
            ParamId::LsWidth => dst.ls_width = src.ls_width,
            ParamId::LsPipes => dst.ls_pipes = src.ls_pipes,
            ParamId::LoadPipes => dst.load_pipes = src.load_pipes,
            ParamId::FetchWidth => dst.fetch_width = src.fetch_width,
            ParamId::DecodeWidth => dst.decode_width = src.decode_width,
            ParamId::RenameWidth => dst.rename_width = src.rename_width,
            ParamId::FetchBuffers => dst.fetch_buffers = src.fetch_buffers,
            ParamId::MaxIcacheFills => dst.max_icache_fills = src.max_icache_fills,
            ParamId::BranchPredictor | ParamId::SimpleBpPct => dst.predictor = src.predictor,
            ParamId::L1dKb => dst.mem.l1d_kb = src.mem.l1d_kb,
            ParamId::L1iKb => dst.mem.l1i_kb = src.mem.l1i_kb,
            ParamId::L2Kb => dst.mem.l2_kb = src.mem.l2_kb,
            ParamId::PrefetchDegree => dst.mem.prefetch_degree = src.mem.prefetch_degree,
        }
    }

    /// Short display name matching Figure 16's legend.
    pub fn label(self) -> &'static str {
        match self {
            ParamId::RobSize => "ROB",
            ParamId::CommitWidth => "Commit width",
            ParamId::LqSize => "Load queue",
            ParamId::SqSize => "Store queue",
            ParamId::AluWidth => "ALU issue width",
            ParamId::FpWidth => "FP issue width",
            ParamId::LsWidth => "LS issue width",
            ParamId::LsPipes => "Load-store pipes",
            ParamId::LoadPipes => "Load pipes",
            ParamId::FetchWidth => "Fetch width",
            ParamId::DecodeWidth => "Decode width",
            ParamId::RenameWidth => "Rename width",
            ParamId::FetchBuffers => "Fetch buffers",
            ParamId::MaxIcacheFills => "Max icache fills",
            ParamId::BranchPredictor => "Branch predictor",
            ParamId::SimpleBpPct => "Simple BP %",
            ParamId::L1dKb => "L1d cache",
            ParamId::L1iKb => "L1i cache",
            ParamId::L2Kb => "L2 cache",
            ParamId::PrefetchDegree => "L1d prefetcher",
        }
    }
}

/// Size of the full design space (product of Table 1 cardinalities, counting
/// the branch predictor as TAGE + 101 Simple settings — the paper's
/// ~2.2 × 10²³).
pub fn design_space_size() -> f64 {
    let mut size = 1.0f64;
    for p in ParamId::ALL {
        match p {
            // TAGE plus the 101 Simple misprediction settings.
            ParamId::BranchPredictor => size *= 102.0,
            ParamId::SimpleBpPct => {}
            other => size *= other.cardinality() as f64,
        }
    }
    size
}

/// Size of the power-of-two-quantized space from §5.2.3 (ROB, LQ, SQ swept in
/// powers of two — the paper's ~1.8 × 10¹⁸).
pub fn quantized_space_size() -> f64 {
    design_space_size() / (1024.0 * 256.0 * 256.0) * (11.0 * 9.0 * 9.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn arm_n1_matches_table1_column() {
        let a = MicroArch::arm_n1();
        assert_eq!(a.rob_size, 128);
        assert_eq!(a.commit_width, 8);
        assert_eq!(a.lq_size, 12);
        assert_eq!(a.sq_size, 18);
        assert_eq!(a.alu_width, 3);
        assert_eq!(a.load_pipes, 0);
        assert_eq!(a.predictor, PredictorKind::Tage);
        assert_eq!(a.mem.l2_kb, 1024);
        assert_eq!(a.mem.prefetch_degree, 0);
    }

    #[test]
    fn sampling_stays_in_ranges() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..500 {
            let a = MicroArch::sample(&mut rng);
            assert!((1..=1024).contains(&a.rob_size));
            assert!((1..=12).contains(&a.commit_width));
            assert!((1..=256).contains(&a.lq_size));
            assert!((1..=8).contains(&a.ls_pipes));
            assert!(a.load_pipes <= 8);
            assert!(L1_SIZES_KB.contains(&a.mem.l1d_kb));
            assert!(L2_SIZES_KB.contains(&a.mem.l2_kb));
            if let PredictorKind::Simple { miss_pct } = a.predictor {
                assert!(miss_pct <= 100);
            }
        }
    }

    #[test]
    fn encoding_dim_and_range() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..50 {
            let a = MicroArch::sample(&mut rng);
            let e = a.encode();
            assert_eq!(e.len(), MicroArch::ENCODED_DIM);
            for v in &e {
                assert!((0.0..=1.0).contains(v), "out of range: {v}");
            }
        }
    }

    #[test]
    fn design_space_matches_paper_magnitude() {
        let full = design_space_size();
        assert!(full > 1e23 && full < 4e23, "full space {full:e}");
        let quant = quantized_space_size();
        assert!(quant > 5e17 && quant < 5e18, "quantized space {quant:e}");
    }

    #[test]
    fn transplant_moves_single_coordinates() {
        let base = MicroArch::big_core();
        let target = MicroArch::arm_n1();
        let mut cur = base;
        ParamId::RobSize.transplant(&mut cur, &target);
        assert_eq!(cur.rob_size, 128);
        assert_eq!(cur.lq_size, 256, "other params untouched");
        for p in ParamId::ALL {
            p.transplant(&mut cur, &target);
        }
        assert_eq!(cur, target, "transplanting all params reaches the target");
    }

    #[test]
    fn encode_distinguishes_predictors() {
        let mut a = MicroArch::arm_n1();
        let e_tage = a.encode();
        a.predictor = PredictorKind::Simple { miss_pct: 40 };
        let e_simple = a.encode();
        assert_ne!(e_tage, e_simple);
    }
}
