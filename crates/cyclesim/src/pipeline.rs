//! The trace-driven out-of-order pipeline (the reference "cycle-level
//! simulator" Concorde is trained against).
//!
//! The model follows gem5's O3 structure at the granularity the paper's 20
//! parameters act on:
//!
//! * **Fetch** — fetch-width instructions per cycle, gated by I-cache line
//!   readiness (misses occupy one of `max_icache_fills` fill slots), by the
//!   fetch buffers' capacity, by branch redirects (fetch stalls from a
//!   mispredicted branch until it resolves, plus a fixed redirect penalty),
//!   and by ISBs (fetch stalls until the barrier commits).
//! * **Decode / Rename** — decode- and rename-width instructions per cycle
//!   through a bounded rename queue; rename allocates ROB/LQ/SQ entries and
//!   resolves register and memory dependencies.
//! * **Issue / Execute** — out-of-order, oldest-first, constrained by the
//!   per-class issue widths (ALU, FP, load-store) and by the load /
//!   load-store pipes; loads access the timing memory system with per-line
//!   miss merging (MSHR behaviour), stores retire into a write buffer.
//! * **Commit** — commit-width per cycle, in order.
//!
//! Being trace driven, wrong-path instructions are not executed; a
//! misprediction costs the resolve-plus-redirect bubble, which is the same
//! modelling choice the paper's reference simulator makes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use concorde_branch::BranchUnit;
use concorde_cache::{CacheLevel, Hierarchy, LatencyMap};
use concorde_trace::{Instruction, OpClass};

use crate::params::MicroArch;
use crate::stats::{SimOptions, SimResult};

/// Extra cycles to refill the frontend after a branch misprediction resolves.
/// Approximates the depth of the fetch/decode/rename pipeline that a squash
/// drains (≈ N1's front-end depth); the total misprediction cost is this plus
/// the branch's fetch-to-execute time.
pub const REDIRECT_PENALTY: u64 = 8;
/// Instructions per fetch buffer (one 64-byte line of 4-byte instructions).
pub const FETCH_BUFFER_ENTRIES: usize = 16;
/// Capacity of the decode → rename queue.
pub const RENAME_Q_CAP: usize = 32;
/// Store-to-load forwarding latency.
const FORWARD_LATENCY: u64 = 2;
/// Store write-buffer completion latency.
const STORE_LATENCY: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueClass {
    Int,
    Fp,
    Load,
    Store,
}

fn issue_class(op: OpClass) -> IssueClass {
    match op {
        OpClass::Load => IssueClass::Load,
        OpClass::Store => IssueClass::Store,
        OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => IssueClass::Fp,
        _ => IssueClass::Int,
    }
}

/// Runs the cycle-level simulation of `trace` on microarchitecture `arch`.
///
/// Equivalent to [`simulate_warmed`] with an empty warmup prefix.
///
/// # Panics
///
/// Panics if the pipeline deadlocks, which indicates a model bug (covered by
/// the crate's property tests).
pub fn simulate(trace: &[Instruction], arch: &MicroArch, opts: SimOptions) -> SimResult {
    simulate_warmed(&[], trace, arch, opts)
}

/// Runs the cycle-level simulation of `trace` after functionally warming the
/// cache hierarchy and branch predictor with `warmup` (no timing is modelled
/// for the warmup prefix; its instructions are not counted).
///
/// Regions sampled from the middle of a long trace should be simulated with
/// the preceding instructions as warmup so that cache state reflects steady
/// state rather than compulsory misses — the same discipline Concorde's trace
/// analysis applies, keeping ground truth and features consistent.
///
/// # Panics
///
/// Panics if the pipeline deadlocks, which indicates a model bug.
pub fn simulate_warmed(
    warmup: &[Instruction],
    trace: &[Instruction],
    arch: &MicroArch,
    opts: SimOptions,
) -> SimResult {
    let n = trace.len();
    let lat = LatencyMap::default();
    let mut hierarchy = Hierarchy::new(arch.mem);
    let mut branch_unit = BranchUnit::new(arch.predictor, opts.seed);

    for i in warmup {
        hierarchy.access_inst(i.pc);
        if i.op.is_load() {
            hierarchy.access_data(i.mem_addr, false, Some(i.pc));
        } else if i.op.is_store() {
            hierarchy.access_data(i.mem_addr, true, None);
        } else if i.op.is_branch() {
            branch_unit.observe(i);
        }
    }
    hierarchy.reset_stats();
    branch_unit.reset_stats();

    // Per-instruction bookkeeping.
    let mut finished = vec![false; n];
    let mut dep_count = vec![0u16; n];
    let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut forward_load = vec![false; n];
    let mut commit_cycles = if opts.record_commit_cycles {
        Some(vec![0u64; n])
    } else {
        None
    };

    // Rename state.
    let mut last_writer = [u32::MAX; concorde_trace::NUM_REGS];
    let mut renamed = vec![false; n];
    let mut last_store_addr: HashMap<u64, u32> = HashMap::new();
    let mut last_store_line: HashMap<u64, u32> = HashMap::new();

    // Queues and windows.
    let fetch_q_cap = arch.fetch_buffers as usize * FETCH_BUFFER_ENTRIES;
    let mut fetch_q: VecDeque<u32> = VecDeque::with_capacity(fetch_q_cap);
    let mut rename_q: VecDeque<u32> = VecDeque::with_capacity(RENAME_Q_CAP);
    let mut ready_int: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut ready_fp: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut ready_mem: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut executing: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    // Fetch/I-cache state.
    let mut next_fetch = 0usize;
    let mut fetch_resume = 0u64;
    let mut pending_redirect: Option<u32> = None;
    let mut waiting_isb: Option<u32> = None;
    let mut iline_ready: HashMap<u64, u64> = HashMap::new();
    let mut ifill_heap: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut outstanding_ifills = 0u32;

    // Data MSHR map: line -> fill-ready cycle.
    let mut mshr: HashMap<u64, u64> = HashMap::new();

    // Window occupancy.
    let mut next_commit = 0usize;
    let mut renamed_count = 0usize;
    let mut lq_used = 0u32;
    let mut sq_used = 0u32;

    // Stats.
    let mut cycle = 0u64;
    let mut rob_occ_sum = 0u128;
    let mut rq_occ_sum = 0u128;
    let mut load_count = 0u64;
    let mut load_exec_cycles = 0u64;
    let mut issue_cycle = vec![0u64; n];

    let push_ready = |i: u32,
                      trace: &[Instruction],
                      ri: &mut BinaryHeap<Reverse<u32>>,
                      rf: &mut BinaryHeap<Reverse<u32>>,
                      rm: &mut BinaryHeap<Reverse<u32>>| {
        match issue_class(trace[i as usize].op) {
            IssueClass::Int => ri.push(Reverse(i)),
            IssueClass::Fp => rf.push(Reverse(i)),
            IssueClass::Load | IssueClass::Store => rm.push(Reverse(i)),
        }
    };

    while next_commit < n {
        let mut progress = false;

        // 1. Complete finished executions (wakeup).
        while let Some(&Reverse((f, i))) = executing.peek() {
            if f > cycle {
                break;
            }
            executing.pop();
            progress = true;
            finished[i as usize] = true;
            if trace[i as usize].op.is_load() {
                load_exec_cycles += f - issue_cycle[i as usize];
            }
            if pending_redirect == Some(i) {
                pending_redirect = None;
                fetch_resume = f + REDIRECT_PENALTY;
            }
            let deps = std::mem::take(&mut dependents[i as usize]);
            for d in deps {
                dep_count[d as usize] -= 1;
                if dep_count[d as usize] == 0 && renamed[d as usize] {
                    push_ready(d, trace, &mut ready_int, &mut ready_fp, &mut ready_mem);
                }
            }
        }

        // 2. Commit in order.
        let mut committed_now = 0;
        while next_commit < n
            && committed_now < arch.commit_width
            && renamed[next_commit]
            && finished[next_commit]
        {
            if let Some(cc) = commit_cycles.as_mut() {
                cc[next_commit] = cycle;
            }
            match trace[next_commit].op {
                OpClass::Load => lq_used -= 1,
                OpClass::Store => sq_used -= 1,
                _ => {}
            }
            if waiting_isb == Some(next_commit as u32) {
                waiting_isb = None;
            }
            next_commit += 1;
            committed_now += 1;
            progress = true;
        }
        let last_commit_cycle_done = next_commit >= n;
        if last_commit_cycle_done {
            // All instructions committed; `cycle` is the completion time.
            cycle += 0;
        }

        // 3. Issue (oldest first, per-class widths + pipes).
        let mut int_left = arch.alu_width;
        let mut fp_left = arch.fp_width;
        let mut mem_left = arch.ls_width;
        let mut load_pipes_left = arch.load_pipes;
        let mut ls_pipes_left = arch.ls_pipes;

        while int_left > 0 {
            let Some(&Reverse(i)) = ready_int.peek() else {
                break;
            };
            ready_int.pop();
            int_left -= 1;
            progress = true;
            issue_cycle[i as usize] = cycle;
            let finish = cycle + u64::from(trace[i as usize].op.base_latency());
            executing.push(Reverse((finish, i)));
        }
        while fp_left > 0 {
            let Some(&Reverse(i)) = ready_fp.peek() else {
                break;
            };
            ready_fp.pop();
            fp_left -= 1;
            progress = true;
            issue_cycle[i as usize] = cycle;
            let finish = cycle + u64::from(trace[i as usize].op.base_latency());
            executing.push(Reverse((finish, i)));
        }
        let mut deferred_mem: Vec<u32> = Vec::new();
        while mem_left > 0 && (load_pipes_left > 0 || ls_pipes_left > 0) {
            let Some(&Reverse(i)) = ready_mem.peek() else {
                break;
            };
            let instr = &trace[i as usize];
            let is_store = instr.op.is_store();
            // Pipe availability: stores need a load-store pipe; loads prefer a
            // load pipe and fall back to a load-store pipe.
            if is_store {
                if ls_pipes_left == 0 {
                    // A younger load may still issue on a load pipe.
                    if load_pipes_left > 0 {
                        ready_mem.pop();
                        deferred_mem.push(i);
                        continue;
                    }
                    break;
                }
                ls_pipes_left -= 1;
            } else if load_pipes_left > 0 {
                load_pipes_left -= 1;
            } else {
                ls_pipes_left -= 1;
            }
            ready_mem.pop();
            mem_left -= 1;
            progress = true;
            issue_cycle[i as usize] = cycle;

            let finish = if is_store {
                let line = instr.data_line();
                let level = hierarchy.access_data(instr.mem_addr, true, None);
                if level != CacheLevel::L1 {
                    let ready = cycle + u64::from(lat.latency(level));
                    mshr.insert(line, ready);
                }
                cycle + STORE_LATENCY
            } else {
                load_count += 1;
                if forward_load[i as usize] {
                    cycle + FORWARD_LATENCY
                } else {
                    let line = instr.data_line();
                    match mshr.get(&line) {
                        Some(&ready) if ready > cycle => {
                            // Merge into the outstanding fill for this line.
                            ready.max(cycle + u64::from(lat.l1))
                        }
                        _ => {
                            let level =
                                hierarchy.access_data(instr.mem_addr, false, Some(instr.pc));
                            let t = cycle + u64::from(lat.latency(level));
                            if level != CacheLevel::L1 {
                                mshr.insert(line, t);
                            }
                            t
                        }
                    }
                }
            };
            executing.push(Reverse((finish, i)));
        }
        for d in deferred_mem {
            ready_mem.push(Reverse(d));
        }

        // 4. Rename (allocate ROB/LQ/SQ, resolve dependencies).
        let mut rename_left = arch.rename_width;
        while rename_left > 0 {
            let Some(&i) = rename_q.front() else { break };
            let iu = i as usize;
            let instr = &trace[iu];
            if renamed_count - next_commit >= arch.rob_size as usize {
                break;
            }
            match instr.op {
                OpClass::Load if lq_used >= arch.lq_size => break,
                OpClass::Store if sq_used >= arch.sq_size => break,
                _ => {}
            }
            rename_q.pop_front();
            rename_left -= 1;
            progress = true;

            let mut deps = 0u16;
            for src in instr.srcs.iter().flatten() {
                let p = last_writer[*src as usize];
                if p != u32::MAX && !finished[p as usize] {
                    dependents[p as usize].push(i);
                    deps += 1;
                }
            }
            if instr.op.is_load() {
                if let Some(&s) = last_store_addr.get(&instr.mem_addr) {
                    // Exact-address RAW through memory: forward from the store.
                    if s != u32::MAX && next_commit <= s as usize {
                        forward_load[iu] = true;
                        if !finished[s as usize] {
                            dependents[s as usize].push(i);
                            deps += 1;
                        }
                    }
                } else if let Some(&s) = last_store_line.get(&instr.data_line()) {
                    // Same-line older store: conservative ordering dependency.
                    if s != u32::MAX && next_commit <= s as usize && !finished[s as usize] {
                        dependents[s as usize].push(i);
                        deps += 1;
                    }
                }
                lq_used += 1;
            }
            if instr.op.is_store() {
                last_store_addr.insert(instr.mem_addr, i);
                last_store_line.insert(instr.data_line(), i);
                sq_used += 1;
            }
            if let Some(d) = instr.dst {
                last_writer[d as usize] = i;
            }
            renamed[iu] = true;
            renamed_count += 1;
            dep_count[iu] = deps;
            if deps == 0 {
                push_ready(i, trace, &mut ready_int, &mut ready_fp, &mut ready_mem);
            }
        }

        // 5. Decode: fetch queue -> rename queue.
        let mut decode_left = arch.decode_width;
        while decode_left > 0 && rename_q.len() < RENAME_Q_CAP {
            let Some(i) = fetch_q.pop_front() else { break };
            rename_q.push_back(i);
            decode_left -= 1;
            progress = true;
        }

        // 6. Fetch.
        if waiting_isb.is_none() && cycle >= fetch_resume {
            // Retire completed I-cache fills.
            while let Some(&Reverse(r)) = ifill_heap.peek() {
                if r > cycle {
                    break;
                }
                ifill_heap.pop();
                outstanding_ifills -= 1;
            }
            let mut fetch_left = arch.fetch_width;
            while fetch_left > 0 && next_fetch < n && fetch_q.len() < fetch_q_cap {
                let instr = &trace[next_fetch];
                let line = instr.icache_line();
                // I-cache line readiness.
                match iline_ready.get(&line) {
                    Some(&r) if r > cycle => break, // fill in flight
                    Some(_) => {
                        iline_ready.remove(&line);
                    }
                    None => {
                        let level = hierarchy.access_inst(instr.pc);
                        if level != CacheLevel::L1 {
                            if outstanding_ifills >= arch.max_icache_fills {
                                break; // no fill slot this cycle
                            }
                            let ready = cycle + u64::from(lat.latency(level));
                            iline_ready.insert(line, ready);
                            ifill_heap.push(Reverse(ready));
                            outstanding_ifills += 1;
                            break; // wait for the fill
                        }
                    }
                }

                let i = next_fetch as u32;
                fetch_q.push_back(i);
                next_fetch += 1;
                fetch_left -= 1;
                progress = true;

                if instr.op.is_branch() {
                    let mispredicted = branch_unit.observe(instr);
                    if mispredicted {
                        pending_redirect = Some(i);
                        fetch_resume = u64::MAX;
                        break;
                    }
                    if instr.taken {
                        // Taken branches end the fetch group (redirect within
                        // the frontend costs the rest of this cycle).
                        break;
                    }
                } else if instr.op == OpClass::Isb {
                    waiting_isb = Some(i);
                    break;
                }
            }
        }

        // Occupancy accounting (post-stage state of this cycle).
        rob_occ_sum += (renamed_count - next_commit) as u128;
        rq_occ_sum += rename_q.len() as u128;

        if next_commit >= n {
            break;
        }

        // Advance time; skip idle gaps to the next event.
        if progress {
            cycle += 1;
        } else {
            let mut next_event = u64::MAX;
            if let Some(&Reverse((f, _))) = executing.peek() {
                next_event = next_event.min(f);
            }
            if let Some(&Reverse(r)) = ifill_heap.peek() {
                next_event = next_event.min(r);
            }
            if fetch_resume != u64::MAX && fetch_resume > cycle {
                next_event = next_event.min(fetch_resume);
            }
            assert!(
                next_event != u64::MAX,
                "pipeline deadlock at cycle {cycle}: committed {next_commit}/{n}, \
                 renamed {renamed_count}, fetch at {next_fetch}, ready \
                 {}i/{}f/{}m, rq {}, fq {}",
                ready_int.len(),
                ready_fp.len(),
                ready_mem.len(),
                rename_q.len(),
                fetch_q.len()
            );
            cycle = next_event.max(cycle + 1);
        }
    }

    let cycles = cycle.max(1);
    let mut result = SimResult {
        instructions: n as u64,
        cycles,
        commit_cycles,
        branch: branch_unit.stats(),
        avg_rob_occupancy_pct: 100.0 * rob_occ_sum as f64
            / (cycles as f64 * f64::from(arch.rob_size)),
        avg_rename_q_occupancy_pct: 100.0 * rq_occ_sum as f64
            / (cycles as f64 * RENAME_Q_CAP as f64),
        load_count,
        load_exec_cycles,
        d_l1: 0,
        d_l2: 0,
        d_llc: 0,
        d_ram: 0,
    };
    result.capture_mem(hierarchy.stats());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use concorde_branch::PredictorKind;
    use concorde_trace::{by_id, generate_region};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn region(id: &str, n: usize) -> Vec<Instruction> {
        generate_region(&by_id(id).unwrap(), 0, 0, n).instrs
    }

    #[test]
    fn cpi_bounded_below_by_commit_width() {
        let t = region("O1", 8000);
        for cw in [1u32, 2, 4, 8] {
            let arch = MicroArch {
                commit_width: cw,
                ..MicroArch::big_core()
            };
            let r = simulate(&t, &arch, SimOptions::default());
            assert!(
                r.cpi() >= 1.0 / f64::from(cw) - 1e-9,
                "cw={cw}: cpi {} below theoretical floor",
                r.cpi()
            );
        }
    }

    #[test]
    fn wider_commit_is_never_slower() {
        let t = region("O2", 8000);
        let mut prev = f64::INFINITY;
        for cw in [1u32, 2, 4, 8, 12] {
            let arch = MicroArch {
                commit_width: cw,
                ..MicroArch::big_core()
            };
            let cpi = simulate(&t, &arch, SimOptions::default()).cpi();
            assert!(cpi <= prev + 0.05, "cw={cw}: cpi {cpi} > previous {prev}");
            prev = cpi;
        }
    }

    #[test]
    fn bigger_rob_is_never_slower() {
        let t = region("S1", 8000);
        let mut prev = f64::INFINITY;
        for rob in [1u32, 4, 16, 64, 256, 1024] {
            let arch = MicroArch {
                rob_size: rob,
                ..MicroArch::big_core()
            };
            let cpi = simulate(&t, &arch, SimOptions::default()).cpi();
            assert!(cpi <= prev * 1.02 + 0.05, "rob={rob}: cpi {cpi} vs {prev}");
            prev = cpi;
        }
    }

    #[test]
    fn tiny_rob_serializes() {
        let t = region("O1", 4000);
        let arch = MicroArch {
            rob_size: 1,
            ..MicroArch::big_core()
        };
        let r = simulate(&t, &arch, SimOptions::default());
        assert!(
            r.cpi() >= 0.99,
            "ROB=1 must be near-serial, cpi {}",
            r.cpi()
        );
    }

    #[test]
    fn memory_bound_workload_is_slower_than_resident() {
        let chase = region("S1", 8000);
        let resident = region("O1", 8000);
        let arch = MicroArch::arm_n1();
        let c = simulate(&chase, &arch, SimOptions::default()).cpi();
        let r = simulate(&resident, &arch, SimOptions::default()).cpi();
        assert!(c > 1.5 * r, "chase cpi {c} vs resident {r}");
    }

    #[test]
    fn worse_branch_prediction_costs_cycles() {
        // Warm the caches so branch behaviour (not compulsory misses) dominates.
        let full = region("S4", 40_000);
        let (warm, t) = full.split_at(32_000);
        // Use the big core so branch behaviour isn't masked by the N1's tiny
        // load queue (on N1 the LQ dominates; see Figure 16).
        let mk = |pct| MicroArch {
            predictor: PredictorKind::Simple { miss_pct: pct },
            ..MicroArch::big_core()
        };
        let good = simulate_warmed(warm, t, &mk(0), SimOptions::default()).cpi();
        let bad = simulate_warmed(warm, t, &mk(50), SimOptions::default()).cpi();
        assert!(
            bad > good * 1.3,
            "mispredictions must hurt: {good} -> {bad}"
        );
    }

    #[test]
    fn warmup_removes_compulsory_miss_inflation() {
        let full = region("S4", 40_000);
        let (warm, t) = full.split_at(32_000);
        let arch = MicroArch::arm_n1();
        let cold = simulate(t, &arch, SimOptions::default());
        let warmed = simulate_warmed(warm, t, &arch, SimOptions::default());
        assert!(
            warmed.cpi() < cold.cpi(),
            "warmup should reduce CPI on a resident workload: {} vs {}",
            warmed.cpi(),
            cold.cpi()
        );
        assert!(
            warmed.d_ram < cold.d_ram / 2,
            "RAM accesses {} vs {}",
            warmed.d_ram,
            cold.d_ram
        );
        assert_eq!(
            warmed.instructions,
            t.len() as u64,
            "warmup instructions are not counted"
        );
    }

    #[test]
    fn bigger_caches_help_cache_sensitive_workload() {
        let t = region("S6", 12_000);
        let small = MicroArch {
            mem: concorde_cache::MemConfig {
                l1d_kb: 16,
                l1i_kb: 16,
                l2_kb: 512,
                prefetch_degree: 0,
            },
            ..MicroArch::arm_n1()
        };
        let big = MicroArch {
            mem: concorde_cache::MemConfig {
                l1d_kb: 256,
                l1i_kb: 256,
                l2_kb: 4096,
                prefetch_degree: 0,
            },
            ..MicroArch::arm_n1()
        };
        let s = simulate(&t, &small, SimOptions::default()).cpi();
        let b = simulate(&t, &big, SimOptions::default()).cpi();
        assert!(b < s, "bigger caches should help: small {s} big {b}");
    }

    #[test]
    fn tiny_load_queue_throttles_memory_parallelism() {
        let t = region("P11", 8000);
        let lq1 = MicroArch {
            lq_size: 1,
            ..MicroArch::big_core()
        };
        let lq64 = MicroArch {
            lq_size: 64,
            ..MicroArch::big_core()
        };
        let a = simulate(&t, &lq1, SimOptions::default()).cpi();
        let b = simulate(&t, &lq64, SimOptions::default()).cpi();
        assert!(a > b * 1.2, "LQ=1 cpi {a} vs LQ=64 cpi {b}");
    }

    #[test]
    fn commit_cycles_are_monotone_when_recorded() {
        let t = region("S5", 4000);
        let r = simulate(
            &t,
            &MicroArch::arm_n1(),
            SimOptions {
                record_commit_cycles: true,
                seed: 0,
            },
        );
        let cc = r.commit_cycles.as_ref().unwrap();
        for w in cc.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*cc.last().unwrap(), r.cycles);
        let w = r.window_ipc(400);
        assert!(!w.is_empty());
        for ipc in w {
            assert!(ipc > 0.0 && ipc <= 12.0);
        }
    }

    #[test]
    fn random_architectures_complete_and_are_sane() {
        let t = region("P9", 3000);
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        for _ in 0..25 {
            let arch = MicroArch::sample(&mut rng);
            let r = simulate(&t, &arch, SimOptions::default());
            let cpi = r.cpi();
            assert!(
                cpi.is_finite() && cpi > 0.05 && cpi < 400.0,
                "cpi {cpi} for {arch:?}"
            );
            assert!(r.avg_rob_occupancy_pct >= 0.0 && r.avg_rob_occupancy_pct <= 100.0);
        }
    }

    #[test]
    fn determinism() {
        let t = region("C2", 4000);
        let arch = MicroArch::arm_n1();
        let a = simulate(&t, &arch, SimOptions::default());
        let b = simulate(&t, &arch, SimOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn isbs_serialize() {
        let t = region("O4", 6000); // contains ISBs
        let arch = MicroArch::big_core();
        let r = simulate(&t, &arch, SimOptions::default());
        // With ISBs and serial chains CPUtest cannot reach the 12-wide ideal.
        assert!(r.cpi() > 0.2, "cpi {}", r.cpi());
    }

    #[test]
    fn load_exec_cycles_accumulate() {
        let t = region("S1", 4000);
        let r = simulate(&t, &MicroArch::arm_n1(), SimOptions::default());
        assert!(r.load_count > 0);
        // Average load execution time must be at least the L1 latency-ish.
        let avg = r.load_exec_cycles as f64 / r.load_count as f64;
        assert!(avg >= 2.0, "avg load exec {avg}");
    }
}
