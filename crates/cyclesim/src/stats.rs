//! Simulation results and derived statistics.

use concorde_branch::BranchStats;
use concorde_cache::HierarchyStats;
use serde::{Deserialize, Serialize};

/// Options controlling a cycle-level simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SimOptions {
    /// Record per-instruction commit cycles (needed for window IPC analyses,
    /// costs 8 bytes/instruction).
    pub record_commit_cycles: bool,
    /// Seed for stochastic components (the `Simple` predictor).
    pub seed: u64,
}

/// Outcome of a cycle-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Instructions committed.
    pub instructions: u64,
    /// Total cycles from fetch of the first to commit of the last instruction.
    pub cycles: u64,
    /// Per-instruction commit cycles (when requested).
    pub commit_cycles: Option<Vec<u64>>,
    /// Branch predictor statistics.
    pub branch: BranchStats,
    /// Mean ROB occupancy as a percentage of capacity (§5.2.6 target metric).
    pub avg_rob_occupancy_pct: f64,
    /// Mean rename-queue occupancy as a percentage of capacity (§5.2.6).
    pub avg_rename_q_occupancy_pct: f64,
    /// Number of load instructions.
    pub load_count: u64,
    /// Sum over loads of actual execution time (issue → finish), the
    /// numerator of Figure 11's execution-time discrepancy ratio.
    pub load_exec_cycles: u64,
    /// Functional cache-hierarchy counters.
    pub d_l1: u64,
    /// L2 data hits.
    pub d_l2: u64,
    /// LLC data hits.
    pub d_llc: u64,
    /// Data RAM accesses.
    pub d_ram: u64,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// IPC per `k`-instruction window from recorded commit cycles (paper Eq. 5
    /// form, used for Figure 1's ground-truth series).
    ///
    /// # Panics
    ///
    /// Panics if commit cycles were not recorded.
    pub fn window_ipc(&self, k: usize) -> Vec<f64> {
        let cc = self
            .commit_cycles
            .as_ref()
            .expect("commit cycles were not recorded");
        let mut out = Vec::new();
        let mut prev = 0u64;
        let mut j = k;
        while j <= cc.len() {
            let end = cc[j - 1];
            let dur = end.saturating_sub(prev).max(1);
            out.push(k as f64 / dur as f64);
            prev = end;
            j += k;
        }
        out
    }

    pub(crate) fn capture_mem(&mut self, s: HierarchyStats) {
        self.d_l1 = s.d_l1;
        self.d_l2 = s.d_l2;
        self.d_llc = s.d_llc;
        self.d_ram = s.d_ram;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_ipc_inverse() {
        let r = SimResult {
            instructions: 1000,
            cycles: 2500,
            commit_cycles: None,
            branch: BranchStats::default(),
            avg_rob_occupancy_pct: 0.0,
            avg_rename_q_occupancy_pct: 0.0,
            load_count: 0,
            load_exec_cycles: 0,
            d_l1: 0,
            d_l2: 0,
            d_llc: 0,
            d_ram: 0,
        };
        assert!((r.cpi() - 2.5).abs() < 1e-12);
        assert!((r.cpi() * r.ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_ipc_splits_commit_cycles() {
        let r = SimResult {
            instructions: 6,
            cycles: 12,
            commit_cycles: Some(vec![2, 4, 6, 8, 10, 12]),
            branch: BranchStats::default(),
            avg_rob_occupancy_pct: 0.0,
            avg_rename_q_occupancy_pct: 0.0,
            load_count: 0,
            load_exec_cycles: 0,
            d_l1: 0,
            d_l2: 0,
            d_llc: 0,
            d_ram: 0,
        };
        let w = r.window_ipc(3);
        assert_eq!(w.len(), 2);
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
    }
}
