//! Adam over a flat parameter vector — used by models whose parameters don't
//! fit the [`crate::Mlp`] layout (e.g. the LSTM baseline).

use serde::{Deserialize, Serialize};

/// Adam optimizer state for a flat `Vec<f32>` of parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamVec {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    step: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamVec {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, lr: f32) -> Self {
        AdamVec {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one update in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn apply(&mut self, params: &mut [f32], grads: &[f32], lr_scale: f32) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let lr = self.lr * lr_scale;
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            params[i] -= lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(p) = sum (p_i - i)^2
        let mut p = vec![0.0f32; 5];
        let mut opt = AdamVec::new(5, 0.1);
        for _ in 0..500 {
            let g: Vec<f32> = p
                .iter()
                .enumerate()
                .map(|(i, &x)| 2.0 * (x - i as f32))
                .collect();
            opt.apply(&mut p, &g, 1.0);
        }
        for (i, &x) in p.iter().enumerate() {
            assert!((x - i as f32).abs() < 0.05, "p[{i}] = {x}");
        }
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    #[should_panic]
    fn rejects_shape_mismatch() {
        let mut opt = AdamVec::new(3, 0.1);
        let mut p = vec![0.0f32; 3];
        opt.apply(&mut p, &[0.0; 2], 1.0);
    }
}
