//! AdamW optimizer (decoupled weight decay; Loshchilov & Hutter) — the paper's
//! training setup (§4: weight decay 0.3, LR 0.001 halving on a step schedule).

use serde::{Deserialize, Serialize};

use crate::mlp::{Mlp, MlpGrads};

/// AdamW state and hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdamW {
    /// Base learning rate.
    pub lr: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    step: u64,
    m: Vec<(Vec<f32>, Vec<f32>)>,
    v: Vec<(Vec<f32>, Vec<f32>)>,
}

impl AdamW {
    /// Creates an optimizer with the paper's defaults (LR 0.001, decay 0.3)
    /// for the given model.
    pub fn new(model: &Mlp, lr: f32, weight_decay: f32) -> Self {
        let zeros = || {
            model
                .layers
                .iter()
                .map(|l| (vec![0.0f32; l.w.len()], vec![0.0f32; l.b.len()]))
                .collect::<Vec<_>>()
        };
        AdamW {
            lr,
            weight_decay,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: zeros(),
            v: zeros(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update with averaged gradients `g` and learning-rate scale
    /// `lr_scale` (the schedule's multiplier; 1.0 = base LR).
    ///
    /// # Panics
    ///
    /// Panics if the gradient shapes don't match the model.
    pub fn apply(&mut self, model: &mut Mlp, g: &MlpGrads, lr_scale: f32) {
        assert_eq!(
            g.layers.len(),
            model.layers.len(),
            "gradient shape mismatch"
        );
        self.step += 1;
        let t = self.step as f32;
        let lr = self.lr * lr_scale;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);

        for (li, layer) in model.layers.iter_mut().enumerate() {
            let (gw, gb) = &g.layers[li];
            let (mw, mb) = &mut self.m[li];
            let (vw, vb) = &mut self.v[li];
            // Weights: Adam moment update + decoupled decay.
            for i in 0..layer.w.len() {
                mw[i] = self.beta1 * mw[i] + (1.0 - self.beta1) * gw[i];
                vw[i] = self.beta2 * vw[i] + (1.0 - self.beta2) * gw[i] * gw[i];
                let mhat = mw[i] / bc1;
                let vhat = vw[i] / bc2;
                layer.w[i] -=
                    lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * layer.w[i]);
            }
            // Biases: no weight decay.
            for i in 0..layer.b.len() {
                mb[i] = self.beta1 * mb[i] + (1.0 - self.beta1) * gb[i];
                vb[i] = self.beta2 * vb[i] + (1.0 - self.beta2) * gb[i] * gb[i];
                let mhat = mb[i] / bc1;
                let vhat = vb[i] / bc2;
                layer.b[i] -= lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Learning-rate schedule that halves the rate at each listed step (paper §4:
/// halves after {10, 14, 18, 22}k steps).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HalvingSchedule {
    /// Steps at which the LR halves.
    pub milestones: Vec<u64>,
}

impl HalvingSchedule {
    /// The paper's milestone schedule.
    pub fn paper() -> Self {
        HalvingSchedule {
            milestones: vec![10_000, 14_000, 18_000, 22_000],
        }
    }

    /// Scaled milestones for shorter runs.
    pub fn scaled(total_steps: u64) -> Self {
        HalvingSchedule {
            milestones: vec![
                total_steps * 10 / 24,
                total_steps * 14 / 24,
                total_steps * 18 / 24,
                total_steps * 22 / 24,
            ],
        }
    }

    /// LR multiplier at `step`.
    pub fn scale(&self, step: u64) -> f32 {
        let halvings = self.milestones.iter().filter(|&&m| step >= m).count() as i32;
        0.5f32.powi(halvings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn adamw_fits_a_linear_function() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let mut model = Mlp::new(&[3, 16, 1], &mut rng);
        let mut opt = AdamW::new(&model, 0.01, 0.0);
        use rand::Rng;
        // y = 2 x0 - x1 + 0.5 x2 + 1
        let data: Vec<(Vec<f32>, f32)> = (0..256)
            .map(|_| {
                let x: Vec<f32> = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let y = 2.0 * x[0] - x[1] + 0.5 * x[2] + 1.0;
                (x, y)
            })
            .collect();
        let sq = |p: f32, y: f32| ((p - y) * (p - y), 2.0 * (p - y));
        let mut last = f64::MAX;
        for epoch in 0..300 {
            let xs: Vec<f32> = data.iter().flat_map(|(x, _)| x.clone()).collect();
            let ys: Vec<f32> = data.iter().map(|(_, y)| *y).collect();
            let (mut g, loss) = model.grad_batch(&xs, &ys, sq);
            g.average();
            opt.apply(&mut model, &g, 1.0);
            if epoch == 299 {
                last = loss;
            }
        }
        assert!(last < 0.01, "AdamW failed to fit: final loss {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut model = Mlp::new(&[2, 1], &mut rng);
        let norm_before: f32 = model.layers[0].w.iter().map(|w| w * w).sum();
        let mut opt = AdamW::new(&model, 0.01, 0.5);
        let g = MlpGrads::zeros_like(&model); // zero gradients: decay only
        for _ in 0..50 {
            opt.apply(&mut model, &g, 1.0);
        }
        let norm_after: f32 = model.layers[0].w.iter().map(|w| w * w).sum();
        assert!(
            norm_after < norm_before * 0.9,
            "{norm_before} -> {norm_after}"
        );
    }

    #[test]
    fn halving_schedule() {
        let s = HalvingSchedule::paper();
        assert_eq!(s.scale(0), 1.0);
        assert_eq!(s.scale(9_999), 1.0);
        assert_eq!(s.scale(10_000), 0.5);
        assert_eq!(s.scale(15_000), 0.25);
        assert_eq!(s.scale(30_000), 0.0625);
        let sc = HalvingSchedule::scaled(2400);
        assert_eq!(sc.scale(999), 1.0);
        assert_eq!(sc.scale(1000), 0.5);
    }

    #[test]
    fn step_counter_advances() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut model = Mlp::new(&[2, 1], &mut rng);
        let mut opt = AdamW::new(&model, 0.01, 0.0);
        assert_eq!(opt.steps(), 0);
        let g = MlpGrads::zeros_like(&model);
        opt.apply(&mut model, &g, 1.0);
        assert_eq!(opt.steps(), 1);
    }
}
