//! Runtime-dispatched SIMD microkernels for the MLP inference hot path.
//!
//! The batched forward pass ([`crate::Mlp::predict_batch_into`]) evaluates
//! one transposed tile of [`crate::Mlp::LANES`] samples per weight pass.
//! This module picks the widest kernel the host supports at first use —
//! AVX2+FMA on x86_64, NEON on aarch64 — and falls back to the portable
//! scalar tile otherwise.
//!
//! Numerical contract:
//!
//! - The **scalar** kernel is bitwise-identical to the seed per-sample
//!   implementation (`acc = b; acc += w·x` left to right, one rounding per
//!   multiply and per add).
//! - The **SIMD** kernels keep the same left-to-right summation order per
//!   output (no reassociation, no split accumulators) but use fused
//!   multiply-add, which rounds once per `w·x + acc` instead of twice. The
//!   result is *not* bitwise-equal to scalar; it is pinned by max-ULP-bounded
//!   equivalence tests instead (`tests/kernel_dispatch.rs`).
//! - A given kernel is deterministic and batch-composition-independent:
//!   partial tiles are zero-padded, never routed to a different code path,
//!   so a sample's bits do not depend on what else shared its micro-batch.
//!
//! Dispatch can be forced to scalar two ways: the `CONCORDE_FORCE_SCALAR`
//! environment variable (read once per process; any value except `0`/empty
//! counts — this is what the CI scalar leg sets), or a thread-scoped
//! [`forced_scalar`] guard for tests and benches that compare both paths in
//! one process without racing other threads.

use std::cell::Cell;
use std::sync::OnceLock;

/// Which tile microkernel [`active_kernel`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar tile — bitwise-identical to the seed implementation.
    Scalar,
    /// x86_64 AVX2 + FMA (8-lane f32, single-rounded multiply-add).
    Avx2Fma,
    /// aarch64 NEON (2 × 4-lane f32, single-rounded multiply-add).
    Neon,
}

impl KernelKind {
    /// Stable lowercase name for logs and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Neon => "neon",
        }
    }
}

fn env_forces_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("CONCORDE_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
    })
}

fn detect() -> KernelKind {
    static DETECTED: OnceLock<KernelKind> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return KernelKind::Avx2Fma;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            // NEON is architecturally mandatory on aarch64.
            return KernelKind::Neon;
        }
        #[allow(unreachable_code)]
        KernelKind::Scalar
    })
}

thread_local! {
    static THREAD_FORCE_SCALAR: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard from [`forced_scalar`]: scalar dispatch on this thread until
/// dropped.
pub struct ScalarGuard {
    prev: bool,
}

impl Drop for ScalarGuard {
    fn drop(&mut self) {
        THREAD_FORCE_SCALAR.with(|f| f.set(self.prev));
    }
}

/// Forces [`active_kernel`] to [`KernelKind::Scalar`] **on the current
/// thread** for the guard's lifetime. Thread-scoped on purpose: tests that
/// compare scalar vs SIMD run concurrently with tests that rely on a stable
/// kernel, and a process-global toggle would race them.
pub fn forced_scalar() -> ScalarGuard {
    THREAD_FORCE_SCALAR.with(|f| {
        let prev = f.replace(true);
        ScalarGuard { prev }
    })
}

/// The kernel the calling thread's next forward pass will use.
pub fn active_kernel() -> KernelKind {
    if THREAD_FORCE_SCALAR.with(Cell::get) || env_forces_scalar() {
        KernelKind::Scalar
    } else {
        detect()
    }
}

/// [`active_kernel`]'s name — for serve-side logs and build-info metrics.
pub fn kernel_name() -> &'static str {
    active_kernel().name()
}

/// The widest SIMD kernel the host supports, ignoring any scalar override
/// (what the scalar-vs-SIMD equivalence tests probe).
pub fn detected_kernel() -> KernelKind {
    detect()
}

/// Computes one transposed tile with the given SIMD kernel: for each output
/// `o` of the layer, `LANES` simultaneous dot products
///
/// ```text
/// dst[(base + t) * out_dim + o] = relu?( b[o] + Σ_k w[o·in_dim + k] · tile[k·LANES + t] )
/// ```
///
/// for lanes `t < live` (padding lanes are computed but not written back).
/// `tile` is the transposed activation tile (`in_dim × LANES`, lane-major);
/// `dst` is the row-major output activation buffer.
///
/// # Panics
///
/// Panics (debug) on shape mismatches; callers are the crate-internal
/// forward passes which size everything from the layer.
///
/// Calling this with [`KernelKind::Scalar`] is a logic error — the scalar
/// tile lives in `mlp.rs` so its bit-pinned code path stays in one place.
#[allow(clippy::too_many_arguments)] // mirrors the GEMV signature; a params struct would just rename the fields
pub(crate) fn tile_forward(
    kind: KernelKind,
    w: &[f32],
    b: &[f32],
    in_dim: usize,
    out_dim: usize,
    tile: &[f32],
    dst: &mut [f32],
    base: usize,
    live: usize,
    relu: bool,
) {
    debug_assert_eq!(w.len(), in_dim * out_dim);
    debug_assert_eq!(b.len(), out_dim);
    debug_assert!(tile.len() >= in_dim * crate::Mlp::LANES);
    debug_assert!((1..=crate::Mlp::LANES).contains(&live));
    debug_assert!(dst.len() >= (base + live) * out_dim);
    match kind {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => unsafe {
            // SAFETY: dispatch only selects Avx2Fma after runtime detection
            // of avx2+fma; slice bounds are checked above.
            x86::tile_forward_avx2(w, b, in_dim, out_dim, tile, dst, base, live, relu);
        },
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => unsafe {
            // SAFETY: NEON is mandatory on aarch64; bounds checked above.
            neon::tile_forward_neon(w, b, in_dim, out_dim, tile, dst, base, live, relu);
        },
        _ => unreachable!("scalar tiles are evaluated in mlp.rs, not dispatched here"),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::Mlp;
    use std::arch::x86_64::*;

    /// AVX2+FMA transposed-tile kernel. Outputs are processed four at a time
    /// so four independent FMA chains are in flight (the single-chain
    /// latency, ~4 cycles, would otherwise bound throughput); each output's
    /// own accumulation stays strictly left-to-right over `k`, so the only
    /// divergence from the scalar kernel is FMA's single rounding.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tile_forward_avx2(
        w: &[f32],
        b: &[f32],
        in_dim: usize,
        out_dim: usize,
        tile: &[f32],
        dst: &mut [f32],
        base: usize,
        live: usize,
        relu: bool,
    ) {
        debug_assert_eq!(Mlp::LANES, 8);
        let tp = tile.as_ptr();
        let zero = _mm256_setzero_ps();
        let mut o = 0usize;
        while o + 4 <= out_dim {
            let r0 = w.as_ptr().add(o * in_dim);
            let r1 = w.as_ptr().add((o + 1) * in_dim);
            let r2 = w.as_ptr().add((o + 2) * in_dim);
            let r3 = w.as_ptr().add((o + 3) * in_dim);
            let mut a0 = _mm256_set1_ps(*b.get_unchecked(o));
            let mut a1 = _mm256_set1_ps(*b.get_unchecked(o + 1));
            let mut a2 = _mm256_set1_ps(*b.get_unchecked(o + 2));
            let mut a3 = _mm256_set1_ps(*b.get_unchecked(o + 3));
            for k in 0..in_dim {
                let x = _mm256_loadu_ps(tp.add(k * Mlp::LANES));
                a0 = _mm256_fmadd_ps(_mm256_set1_ps(*r0.add(k)), x, a0);
                a1 = _mm256_fmadd_ps(_mm256_set1_ps(*r1.add(k)), x, a1);
                a2 = _mm256_fmadd_ps(_mm256_set1_ps(*r2.add(k)), x, a2);
                a3 = _mm256_fmadd_ps(_mm256_set1_ps(*r3.add(k)), x, a3);
            }
            if relu {
                a0 = _mm256_max_ps(a0, zero);
                a1 = _mm256_max_ps(a1, zero);
                a2 = _mm256_max_ps(a2, zero);
                a3 = _mm256_max_ps(a3, zero);
            }
            scatter(a0, dst, base, out_dim, o, live);
            scatter(a1, dst, base, out_dim, o + 1, live);
            scatter(a2, dst, base, out_dim, o + 2, live);
            scatter(a3, dst, base, out_dim, o + 3, live);
            o += 4;
        }
        while o < out_dim {
            let row = w.as_ptr().add(o * in_dim);
            let mut acc = _mm256_set1_ps(*b.get_unchecked(o));
            for k in 0..in_dim {
                let x = _mm256_loadu_ps(tp.add(k * Mlp::LANES));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(*row.add(k)), x, acc);
            }
            if relu {
                acc = _mm256_max_ps(acc, zero);
            }
            scatter(acc, dst, base, out_dim, o, live);
            o += 1;
        }
    }

    /// Writes the `live` leading lanes of `acc` to their strided row-major
    /// positions `dst[(base + t) * out_dim + o]`.
    #[inline(always)]
    unsafe fn scatter(
        acc: __m256,
        dst: &mut [f32],
        base: usize,
        out_dim: usize,
        o: usize,
        live: usize,
    ) {
        let mut tmp = [0.0f32; Mlp::LANES];
        _mm256_storeu_ps(tmp.as_mut_ptr(), acc);
        for (t, &v) in tmp.iter().enumerate().take(live) {
            *dst.get_unchecked_mut((base + t) * out_dim + o) = v;
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::Mlp;
    use std::arch::aarch64::*;

    /// NEON transposed-tile kernel: the 8-lane tile is two `float32x4`
    /// registers; two outputs in flight keep four independent FMA chains
    /// active. Per-output summation order matches the scalar kernel exactly
    /// (left to right), FMA rounding aside.
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tile_forward_neon(
        w: &[f32],
        b: &[f32],
        in_dim: usize,
        out_dim: usize,
        tile: &[f32],
        dst: &mut [f32],
        base: usize,
        live: usize,
        relu: bool,
    ) {
        debug_assert_eq!(Mlp::LANES, 8);
        let tp = tile.as_ptr();
        let mut o = 0usize;
        while o + 2 <= out_dim {
            let r0 = w.as_ptr().add(o * in_dim);
            let r1 = w.as_ptr().add((o + 1) * in_dim);
            let mut a0l = vdupq_n_f32(*b.get_unchecked(o));
            let mut a0h = a0l;
            let mut a1l = vdupq_n_f32(*b.get_unchecked(o + 1));
            let mut a1h = a1l;
            for k in 0..in_dim {
                let xl = vld1q_f32(tp.add(k * Mlp::LANES));
                let xh = vld1q_f32(tp.add(k * Mlp::LANES + 4));
                let w0 = *r0.add(k);
                let w1 = *r1.add(k);
                a0l = vfmaq_n_f32(a0l, xl, w0);
                a0h = vfmaq_n_f32(a0h, xh, w0);
                a1l = vfmaq_n_f32(a1l, xl, w1);
                a1h = vfmaq_n_f32(a1h, xh, w1);
            }
            if relu {
                let z = vdupq_n_f32(0.0);
                a0l = vmaxq_f32(a0l, z);
                a0h = vmaxq_f32(a0h, z);
                a1l = vmaxq_f32(a1l, z);
                a1h = vmaxq_f32(a1h, z);
            }
            scatter(a0l, a0h, dst, base, out_dim, o, live);
            scatter(a1l, a1h, dst, base, out_dim, o + 1, live);
            o += 2;
        }
        while o < out_dim {
            let row = w.as_ptr().add(o * in_dim);
            let mut al = vdupq_n_f32(*b.get_unchecked(o));
            let mut ah = al;
            for k in 0..in_dim {
                let xl = vld1q_f32(tp.add(k * Mlp::LANES));
                let xh = vld1q_f32(tp.add(k * Mlp::LANES + 4));
                let wv = *row.add(k);
                al = vfmaq_n_f32(al, xl, wv);
                ah = vfmaq_n_f32(ah, xh, wv);
            }
            if relu {
                let z = vdupq_n_f32(0.0);
                al = vmaxq_f32(al, z);
                ah = vmaxq_f32(ah, z);
            }
            scatter(al, ah, dst, base, out_dim, o, live);
            o += 1;
        }
    }

    #[inline(always)]
    unsafe fn scatter(
        lo: float32x4_t,
        hi: float32x4_t,
        dst: &mut [f32],
        base: usize,
        out_dim: usize,
        o: usize,
        live: usize,
    ) {
        let mut tmp = [0.0f32; Mlp::LANES];
        vst1q_f32(tmp.as_mut_ptr(), lo);
        vst1q_f32(tmp.as_mut_ptr().add(4), hi);
        for (t, &v) in tmp.iter().enumerate().take(live) {
            *dst.get_unchecked_mut((base + t) * out_dim + o) = v;
        }
    }
}

/// Distance in units-in-the-last-place between two finite `f32`s — the
/// metric the SIMD-vs-scalar equivalence tests bound. Implemented over the
/// monotone integer mapping of IEEE-754, so it is exact across signs and
/// zero crossings; any non-finite operand yields `u32::MAX`.
pub fn ulp_distance(a: f32, b: f32) -> u32 {
    if !a.is_finite() || !b.is_finite() {
        return u32::MAX;
    }
    // Map the float's bits onto a monotone signed scale.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        i64::from(if bits < 0 { i32::MIN - bits } else { bits })
    }
    (key(a) - key(b)).unsigned_abs().min(u64::from(u32::MAX)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert!(ulp_distance(f32::MIN_POSITIVE, -f32::MIN_POSITIVE) > 0);
        assert_eq!(ulp_distance(f32::NAN, 1.0), u32::MAX);
        assert_eq!(ulp_distance(1.0, f32::INFINITY), u32::MAX);
    }

    #[test]
    fn forced_scalar_is_scoped_to_the_guard() {
        let outer = active_kernel();
        {
            let _g = forced_scalar();
            assert_eq!(active_kernel(), KernelKind::Scalar);
            {
                let _g2 = forced_scalar();
                assert_eq!(active_kernel(), KernelKind::Scalar);
            }
            assert_eq!(
                active_kernel(),
                KernelKind::Scalar,
                "inner drop must not unforce"
            );
        }
        assert_eq!(active_kernel(), outer);
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(KernelKind::Scalar.name(), "scalar");
        assert_eq!(KernelKind::Avx2Fma.name(), "avx2_fma");
        assert_eq!(KernelKind::Neon.name(), "neon");
    }
}
