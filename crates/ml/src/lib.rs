//! # concorde-ml
//!
//! Minimal from-scratch neural-network substrate for the Concorde
//! reproduction: dense [`Mlp`]s with backprop, the [`AdamW`] optimizer with
//! the paper's halving LR schedule, the relative-error loss (paper Eq. 7),
//! and an [`LstmRegressor`] powering the TAO-like sequence baseline.
//!
//! Everything is deterministic given a seeded `ChaCha12Rng` and `&self`-safe
//! for data-parallel gradient computation across threads.
//!
//! ```
//! use concorde_ml::{Mlp, AdamW, relative_error};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha12Rng;
//!
//! let mut rng = ChaCha12Rng::seed_from_u64(0);
//! let mut model = Mlp::new(&[8, 16, 1], &mut rng);
//! let mut opt = AdamW::new(&model, 0.01, 0.0);
//! let xs = vec![0.5f32; 8 * 4];
//! let ys = vec![2.0f32; 4];
//! let (mut g, loss) = model.grad_batch(&xs, &ys, relative_error);
//! g.average();
//! opt.apply(&mut model, &g, 1.0);
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]

pub mod adam_vec;
pub mod adamw;
pub mod kernel;
pub mod loss;
pub mod lstm;
pub mod mlp;
pub mod qmlp;

pub use adam_vec::AdamVec;
pub use adamw::{AdamW, HalvingSchedule};
pub use kernel::{
    active_kernel, detected_kernel, forced_scalar, kernel_name, ulp_distance, KernelKind,
};
pub use loss::{relative_error, squared_error, ErrorStats};
pub use lstm::{LstmGrads, LstmRegressor};
pub use mlp::{Linear, Mlp, MlpGrads, MlpScratch};
pub use qmlp::{QuantFeatureBuf, QuantLinear, QuantScratch, QuantSeg, QuantizedMlp};
