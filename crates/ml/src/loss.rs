//! Loss functions and accuracy metrics.
//!
//! Concorde trains with the relative-magnitude CPI error (paper Eq. 7):
//! `Loss(ŷ, y) = |ŷ − y| / y`. The same quantity is the paper's headline
//! accuracy metric ("average CPI prediction error").

/// Relative error loss (Eq. 7) and its derivative w.r.t. the prediction.
///
/// # Panics
///
/// Panics in debug builds if `y <= 0` (CPI labels are strictly positive).
#[inline]
pub fn relative_error(pred: f32, y: f32) -> (f32, f32) {
    debug_assert!(y > 0.0, "labels must be positive, got {y}");
    let diff = pred - y;
    let loss = diff.abs() / y;
    let grad = if diff >= 0.0 { 1.0 / y } else { -1.0 / y };
    (loss, grad)
}

/// Squared error and derivative (used by substrate tests and the baseline).
#[inline]
pub fn squared_error(pred: f32, y: f32) -> (f32, f32) {
    let d = pred - y;
    (d * d, 2.0 * d)
}

/// Summary statistics of relative errors over an evaluation set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Mean relative error.
    pub mean: f64,
    /// Median relative error.
    pub p50: f64,
    /// 90th-percentile relative error.
    pub p90: f64,
    /// Fraction of samples with error > 10% (the paper's tail metric).
    pub frac_above_10pct: f64,
    /// Number of samples.
    pub n: usize,
}

impl ErrorStats {
    /// Computes stats from `(prediction, label)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        assert!(
            !pairs.is_empty(),
            "cannot summarize an empty evaluation set"
        );
        let mut errs: Vec<f64> = pairs.iter().map(|(p, y)| (p - y).abs() / y).collect();
        errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = errs.len();
        let mean = errs.iter().sum::<f64>() / n as f64;
        let q = |f: f64| errs[((f * n as f64) as usize).min(n - 1)];
        ErrorStats {
            mean,
            p50: q(0.5),
            p90: q(0.9),
            frac_above_10pct: errs.iter().filter(|e| **e > 0.10).count() as f64 / n as f64,
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_values_and_signs() {
        let (l, g) = relative_error(1.2, 1.0);
        assert!((l - 0.2).abs() < 1e-6);
        assert!((g - 1.0).abs() < 1e-6);
        let (l2, g2) = relative_error(0.5, 1.0);
        assert!((l2 - 0.5).abs() < 1e-6);
        assert!((g2 + 1.0).abs() < 1e-6);
        let (l3, _) = relative_error(2.0, 2.0);
        assert_eq!(l3, 0.0);
    }

    #[test]
    fn relative_error_is_scale_invariant() {
        let (a, _) = relative_error(11.0, 10.0);
        let (b, _) = relative_error(1.1, 1.0);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn stats_percentiles() {
        let pairs: Vec<(f64, f64)> = (1..=99).map(|i| (1.0 + i as f64 / 1000.0, 1.0)).collect();
        let s = ErrorStats::from_pairs(&pairs);
        assert_eq!(s.n, 99);
        assert!((s.mean - 0.05).abs() < 1e-3);
        assert!(s.p90 >= s.p50);
        assert_eq!(s.frac_above_10pct, 0.0);
        let tail: Vec<(f64, f64)> = (0..10)
            .map(|i| if i < 9 { (1.0, 1.0) } else { (2.0, 1.0) })
            .collect();
        let st = ErrorStats::from_pairs(&tail);
        assert!((st.frac_above_10pct - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty evaluation")]
    fn stats_reject_empty() {
        let _ = ErrorStats::from_pairs(&[]);
    }
}
