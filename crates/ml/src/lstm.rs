//! Single-layer LSTM regressor for the TAO-like sequence baseline.
//!
//! The paper's baseline comparisons (TAO [71], SimNet [55]) are O(L) sequence
//! models over (windows of) the instruction stream. This module provides the
//! recurrent substrate: an LSTM over a feature sequence, a mean-pool over
//! hidden states, and a linear head producing a scalar CPI prediction — with
//! full backpropagation through time, so the baseline trains end to end.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// LSTM + mean-pool + linear-head regressor.
///
/// Gate parameter layout: rows `[i; f; g; o]`, each `hidden` rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmRegressor {
    /// Input feature dimension per step.
    pub input_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Input weights `[4H × I]`, row-major.
    pub wx: Vec<f32>,
    /// Recurrent weights `[4H × H]`, row-major.
    pub wh: Vec<f32>,
    /// Gate biases `[4H]` (forget-gate slice initialized to 1).
    pub b: Vec<f32>,
    /// Head weights `[H]`.
    pub head_w: Vec<f32>,
    /// Head bias.
    pub head_b: f32,
}

/// Gradients for [`LstmRegressor`], summable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmGrads {
    /// d/d wx.
    pub wx: Vec<f32>,
    /// d/d wh.
    pub wh: Vec<f32>,
    /// d/d b.
    pub b: Vec<f32>,
    /// d/d head_w.
    pub head_w: Vec<f32>,
    /// d/d head_b.
    pub head_b: f32,
    /// Samples accumulated.
    pub count: usize,
}

impl LstmGrads {
    /// Zero gradients shaped like `m`.
    pub fn zeros_like(m: &LstmRegressor) -> Self {
        LstmGrads {
            wx: vec![0.0; m.wx.len()],
            wh: vec![0.0; m.wh.len()],
            b: vec![0.0; m.b.len()],
            head_w: vec![0.0; m.head_w.len()],
            head_b: 0.0,
            count: 0,
        }
    }

    /// Accumulates another shard.
    pub fn merge(&mut self, o: &LstmGrads) {
        for (a, x) in self.wx.iter_mut().zip(&o.wx) {
            *a += x;
        }
        for (a, x) in self.wh.iter_mut().zip(&o.wh) {
            *a += x;
        }
        for (a, x) in self.b.iter_mut().zip(&o.b) {
            *a += x;
        }
        for (a, x) in self.head_w.iter_mut().zip(&o.head_w) {
            *a += x;
        }
        self.head_b += o.head_b;
        self.count += o.count;
    }

    /// Averages by sample count.
    pub fn average(&mut self) {
        if self.count == 0 {
            return;
        }
        let s = 1.0 / self.count as f32;
        for v in self
            .wx
            .iter_mut()
            .chain(&mut self.wh)
            .chain(&mut self.b)
            .chain(&mut self.head_w)
        {
            *v *= s;
        }
        self.head_b *= s;
        self.count = 1;
    }
}

impl LstmRegressor {
    /// Creates a regressor with Xavier-initialized weights.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut ChaCha12Rng) -> Self {
        let bx = (6.0 / (input_dim + hidden) as f32).sqrt();
        let bh = (6.0 / (2 * hidden) as f32).sqrt();
        let wx = (0..4 * hidden * input_dim)
            .map(|_| rng.gen_range(-bx..bx))
            .collect();
        let wh = (0..4 * hidden * hidden)
            .map(|_| rng.gen_range(-bh..bh))
            .collect();
        let mut b = vec![0.0f32; 4 * hidden];
        for fbias in b.iter_mut().skip(hidden).take(hidden) {
            *fbias = 1.0; // forget-gate bias
        }
        let head_w = (0..hidden).map(|_| rng.gen_range(-bh..bh)).collect();
        LstmRegressor {
            input_dim,
            hidden,
            wx,
            wh,
            b,
            head_w,
            head_b: 0.0,
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len() + self.head_w.len() + 1
    }

    #[allow(clippy::needless_range_loop)] // gate math indexes parallel weight blocks
    fn gates(&self, x: &[f32], h: &[f32], out: &mut [f32]) {
        let hh = self.hidden;
        for r in 0..4 * hh {
            let mut acc = self.b[r];
            let wxr = &self.wx[r * self.input_dim..(r + 1) * self.input_dim];
            for (w, xv) in wxr.iter().zip(x) {
                acc += w * xv;
            }
            let whr = &self.wh[r * hh..(r + 1) * hh];
            for (w, hv) in whr.iter().zip(h) {
                acc += w * hv;
            }
            out[r] = acc;
        }
    }

    /// Predicts the scalar target for a sequence (`seq` row-major `[T × I]`).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or misshapen.
    #[allow(clippy::needless_range_loop)] // j indexes parallel hidden-state blocks
    pub fn predict(&self, seq: &[f32]) -> f32 {
        let (hs, _, _) = self.forward(seq);
        let t = seq.len() / self.input_dim;
        let hh = self.hidden;
        let mut mean = vec![0.0f32; hh];
        for step in 0..t {
            for j in 0..hh {
                mean[j] += hs[(step + 1) * hh + j];
            }
        }
        let mut y = self.head_b;
        for j in 0..hh {
            y += self.head_w[j] * mean[j] / t as f32;
        }
        y
    }

    /// Forward pass storing per-step states: returns `(h[0..=T], c[0..=T],
    /// gate_pre[T])` (h/c include the zero initial state at index 0).
    #[allow(clippy::type_complexity)]
    #[allow(clippy::needless_range_loop)] // gate math indexes parallel weight blocks
    fn forward(&self, seq: &[f32]) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        assert!(
            !seq.is_empty() && seq.len().is_multiple_of(self.input_dim),
            "bad sequence shape"
        );
        let t = seq.len() / self.input_dim;
        let hh = self.hidden;
        let mut hs = vec![0.0f32; (t + 1) * hh];
        let mut cs = vec![0.0f32; (t + 1) * hh];
        let mut pre = vec![0.0f32; t * 4 * hh];
        let mut gate = vec![0.0f32; 4 * hh];
        for step in 0..t {
            let x = &seq[step * self.input_dim..(step + 1) * self.input_dim];
            let (hprev, rest) = hs.split_at_mut((step + 1) * hh);
            self.gates(x, &hprev[step * hh..], &mut gate);
            pre[step * 4 * hh..(step + 1) * 4 * hh].copy_from_slice(&gate);
            for j in 0..hh {
                let i = sigmoid(gate[j]);
                let f = sigmoid(gate[hh + j]);
                let g = gate[2 * hh + j].tanh();
                let o = sigmoid(gate[3 * hh + j]);
                let c = f * cs[step * hh + j] + i * g;
                cs[(step + 1) * hh + j] = c;
                rest[j] = o * c.tanh();
            }
        }
        (hs, cs, pre)
    }

    /// Loss and gradients for one sequence with label `y` under `dloss`.
    #[allow(clippy::needless_range_loop)] // gate math indexes parallel weight blocks
    pub fn grad_sequence<F>(&self, seq: &[f32], y: f32, dloss: F) -> (LstmGrads, f64)
    where
        F: Fn(f32, f32) -> (f32, f32),
    {
        let t = seq.len() / self.input_dim;
        let hh = self.hidden;
        let (hs, cs, pre) = self.forward(seq);

        // Head forward.
        let mut mean = vec![0.0f32; hh];
        for step in 0..t {
            for j in 0..hh {
                mean[j] += hs[(step + 1) * hh + j] / t as f32;
            }
        }
        let mut yhat = self.head_b;
        for j in 0..hh {
            yhat += self.head_w[j] * mean[j];
        }
        let (loss, dy) = dloss(yhat, y);

        let mut g = LstmGrads::zeros_like(self);
        g.count = 1;
        g.head_b = dy;
        for j in 0..hh {
            g.head_w[j] = dy * mean[j];
        }

        // dL/dh_t from the mean pool, plus recurrent terms.
        let mut dh = vec![0.0f32; hh];
        let mut dc = vec![0.0f32; hh];
        for step in (0..t).rev() {
            for j in 0..hh {
                dh[j] += dy * self.head_w[j] / t as f32;
            }
            let p = &pre[step * 4 * hh..(step + 1) * 4 * hh];
            let x = &seq[step * self.input_dim..(step + 1) * self.input_dim];
            let hprev = &hs[step * hh..(step + 1) * hh];
            let cprev = &cs[step * hh..(step + 1) * hh];
            let mut dgate = vec![0.0f32; 4 * hh];
            for j in 0..hh {
                let i = sigmoid(p[j]);
                let f = sigmoid(p[hh + j]);
                let gg = p[2 * hh + j].tanh();
                let o = sigmoid(p[3 * hh + j]);
                let c = cs[(step + 1) * hh + j];
                let tc = c.tanh();
                let do_ = dh[j] * tc;
                let dc_t = dc[j] + dh[j] * o * (1.0 - tc * tc);
                let di = dc_t * gg;
                let df = dc_t * cprev[j];
                let dg = dc_t * i;
                dgate[j] = di * i * (1.0 - i);
                dgate[hh + j] = df * f * (1.0 - f);
                dgate[2 * hh + j] = dg * (1.0 - gg * gg);
                dgate[3 * hh + j] = do_ * o * (1.0 - o);
                dc[j] = dc_t * f;
            }
            // Parameter grads and propagate to h_{t-1}.
            let mut dhprev = vec![0.0f32; hh];
            for r in 0..4 * hh {
                let d = dgate[r];
                if d == 0.0 {
                    continue;
                }
                g.b[r] += d;
                let gxr = &mut g.wx[r * self.input_dim..(r + 1) * self.input_dim];
                for (gx, &xv) in gxr.iter_mut().zip(x) {
                    *gx += d * xv;
                }
                let ghr = &mut g.wh[r * hh..(r + 1) * hh];
                for (gh, &hv) in ghr.iter_mut().zip(hprev) {
                    *gh += d * hv;
                }
                let whr = &self.wh[r * hh..(r + 1) * hh];
                for (dp, &w) in dhprev.iter_mut().zip(whr) {
                    *dp += d * w;
                }
            }
            dh = dhprev;
        }
        (g, f64::from(loss))
    }

    /// Applies an SGD-with-momentum-free Adam-style update in place. Kept
    /// minimal: the baseline trainer owns its optimizer state; this helper is
    /// plain SGD for tests.
    pub fn sgd_step(&mut self, g: &LstmGrads, lr: f32) {
        for (w, d) in self.wx.iter_mut().zip(&g.wx) {
            *w -= lr * d;
        }
        for (w, d) in self.wh.iter_mut().zip(&g.wh) {
            *w -= lr * d;
        }
        for (w, d) in self.b.iter_mut().zip(&g.b) {
            *w -= lr * d;
        }
        for (w, d) in self.head_w.iter_mut().zip(&g.head_w) {
            *w -= lr * d;
        }
        self.head_b -= lr * g.head_b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::squared_error;
    use rand::SeedableRng;

    #[test]
    fn shapes() {
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let m = LstmRegressor::new(5, 8, &mut rng);
        assert_eq!(m.num_params(), 4 * 8 * 5 + 4 * 8 * 8 + 32 + 8 + 1);
        let y = m.predict(&[0.1; 5 * 7]);
        assert!(y.is_finite());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let m = LstmRegressor::new(3, 4, &mut rng);
        let seq: Vec<f32> = (0..9).map(|i| ((i as f32) * 0.7).sin()).collect(); // T=3
        let y = 0.8f32;
        let (g, _) = m.grad_sequence(&seq, y, squared_error);
        let eps = 1e-3f32;
        let loss_of = |m: &LstmRegressor| {
            let p = m.predict(&seq);
            f64::from((p - y) * (p - y))
        };
        // Check several coordinates in every parameter group.
        let checks: Vec<(&str, usize)> = vec![
            ("wx", 0),
            ("wx", 7),
            ("wh", 3),
            ("wh", 17),
            ("b", 2),
            ("b", 9),
            ("head", 1),
        ];
        for (group, idx) in checks {
            let mut mp = m.clone();
            let mut mm = m.clone();
            let ana = match group {
                "wx" => {
                    mp.wx[idx] += eps;
                    mm.wx[idx] -= eps;
                    g.wx[idx]
                }
                "wh" => {
                    mp.wh[idx] += eps;
                    mm.wh[idx] -= eps;
                    g.wh[idx]
                }
                "b" => {
                    mp.b[idx] += eps;
                    mm.b[idx] -= eps;
                    g.b[idx]
                }
                _ => {
                    mp.head_w[idx] += eps;
                    mm.head_w[idx] -= eps;
                    g.head_w[idx]
                }
            };
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * f64::from(eps));
            assert!(
                (num - f64::from(ana)).abs() < 2e-2 * (1.0 + num.abs()),
                "{group}[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn learns_sequence_mean_task() {
        // Target: mean of the inputs' first coordinate (needs temporal pooling).
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let mut m = LstmRegressor::new(2, 8, &mut rng);
        use rand::Rng;
        let data: Vec<(Vec<f32>, f32)> = (0..64)
            .map(|_| {
                let t = 6;
                let seq: Vec<f32> = (0..t * 2).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let y = (0..t).map(|s| seq[s * 2]).sum::<f32>() / t as f32;
                (seq, y)
            })
            .collect();
        let mut final_loss = f64::MAX;
        for _ in 0..400 {
            let mut g = LstmGrads::zeros_like(&m);
            let mut total = 0.0;
            for (seq, y) in &data {
                let (gi, l) = m.grad_sequence(seq, *y, squared_error);
                g.merge(&gi);
                total += l;
            }
            g.average();
            m.sgd_step(&g, 0.3);
            final_loss = total / data.len() as f64;
        }
        assert!(
            final_loss < 0.01,
            "LSTM failed to learn mean task: {final_loss}"
        );
    }

    #[test]
    fn merge_and_average() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let m = LstmRegressor::new(2, 3, &mut rng);
        let s1 = vec![0.5f32; 4];
        let s2 = vec![-0.25f32; 6];
        let (mut a, _) = m.grad_sequence(&s1, 1.0, squared_error);
        let (b, _) = m.grad_sequence(&s2, 2.0, squared_error);
        a.merge(&b);
        assert_eq!(a.count, 2);
        let before = a.wx[0];
        a.average();
        assert!((a.wx[0] - before / 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "bad sequence shape")]
    fn rejects_misshapen_sequences() {
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let m = LstmRegressor::new(3, 4, &mut rng);
        let _ = m.predict(&[1.0, 2.0]);
    }
}
