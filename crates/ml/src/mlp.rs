//! Fully connected multi-layer perceptron with ReLU activations.
//!
//! Concorde's ML component is a shallow MLP (paper §4: input → 256 → 128 → 1).
//! This implementation keeps the model immutable during gradient computation
//! (`&self`), so data-parallel training can shard a minibatch across threads
//! and sum the per-shard [`MlpGrads`].

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// One dense layer: `y = W x + b` with `W` stored row-major `[out][in]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Weights, row-major `[out_dim × in_dim]`.
    pub w: Vec<f32>,
    /// Biases, `[out_dim]`.
    pub b: Vec<f32>,
}

impl Linear {
    /// Xavier/Glorot-uniform initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut ChaCha12Rng) -> Self {
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Linear {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
        }
    }

    #[inline]
    fn forward_into(&self, x: &[f32], out: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(out.len(), self.out_dim);
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = self.b[o];
            for (wv, xv) in row.iter().zip(x) {
                acc += wv * xv;
            }
            *out_v = acc;
        }
    }
}

/// Gradients matching an [`Mlp`]'s parameters; summable across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpGrads {
    /// Per-layer `(dW, db)`.
    pub layers: Vec<(Vec<f32>, Vec<f32>)>,
    /// Number of samples accumulated (for averaging).
    pub count: usize,
}

impl MlpGrads {
    /// Zero gradients shaped like `mlp`.
    pub fn zeros_like(mlp: &Mlp) -> Self {
        MlpGrads {
            layers: mlp
                .layers
                .iter()
                .map(|l| (vec![0.0; l.w.len()], vec![0.0; l.b.len()]))
                .collect(),
            count: 0,
        }
    }

    /// Accumulates another shard's gradients.
    pub fn merge(&mut self, other: &MlpGrads) {
        for ((w, b), (ow, ob)) in self.layers.iter_mut().zip(&other.layers) {
            for (a, x) in w.iter_mut().zip(ow) {
                *a += x;
            }
            for (a, x) in b.iter_mut().zip(ob) {
                *a += x;
            }
        }
        self.count += other.count;
    }

    /// Scales all gradients by `1 / count` (no-op when empty).
    pub fn average(&mut self) {
        if self.count == 0 {
            return;
        }
        let s = 1.0 / self.count as f32;
        for (w, b) in &mut self.layers {
            for x in w.iter_mut() {
                *x *= s;
            }
            for x in b.iter_mut() {
                *x *= s;
            }
        }
        self.count = 1;
    }
}

/// Reusable activation arena for [`Mlp::predict_batch_into`]: two ping-pong
/// batch buffers plus a transposed tile for the microkernel.
///
/// Grows on demand and is never shrunk; a serving worker keeps one per
/// thread so steady-state batched inference performs no allocations.
#[derive(Debug, Default, Clone)]
pub struct MlpScratch {
    a: Vec<f32>,
    b: Vec<f32>,
    tile: Vec<f32>,
}

impl MlpScratch {
    /// Ensures the ping-pong buffers hold `n × width` activations and the
    /// tile holds one `width × LANES` block.
    fn reserve(&mut self, n: usize, width: usize) {
        let need = n * width;
        if self.a.len() < need {
            self.a.resize(need, 0.0);
            self.b.resize(need, 0.0);
        }
        let tneed = width * Mlp::LANES;
        if self.tile.len() < tneed {
            self.tile.resize(tneed, 0.0);
        }
    }

    /// Both ping-pong buffers, mutably.
    fn split(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.a, &mut self.b)
    }

    /// Ping-pong buffers plus the transposed tile, mutably.
    fn parts(&mut self) -> (&mut [f32], &mut [f32], &mut [f32]) {
        (&mut self.a, &mut self.b, &mut self.tile)
    }
}

/// ReLU MLP with a scalar output head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Dense layers; ReLU between all but the last.
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// Samples evaluated simultaneously by the batched kernel (one tile).
    pub const LANES: usize = 8;

    /// Builds an MLP with the given layer sizes, e.g. `[3873, 256, 128, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(dims: &[usize], rng: &mut ChaCha12Rng) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Forward pass for one sample; returns the scalar prediction.
    ///
    /// Routed through [`Mlp::predict_batch_into`] with `n = 1` over a
    /// thread-local scratch arena, so steady-state calls perform **zero heap
    /// allocations** (pinned by `tests/predict_alloc.rs`) and a single
    /// prediction is bitwise-identical to the same sample inside any batch,
    /// whatever kernel is active.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn predict(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.input_dim(), "input dimension mismatch");
        thread_local! {
            static SCRATCH: std::cell::RefCell<MlpScratch> =
                std::cell::RefCell::new(MlpScratch::default());
        }
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let mut y = [0.0f32];
            self.predict_batch_into(x, &mut y, &mut scratch);
            y[0]
        })
    }

    /// Widest layer output dimension (scratch sizing for batched inference).
    pub fn max_dim(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.out_dim.max(l.in_dim))
            .max()
            .unwrap_or(0)
    }

    /// Forward pass over a row-major batch `xs` (`n × input_dim`), writing one
    /// scalar prediction per row into `out`.
    ///
    /// This is where batching pays even on one core. The per-sample path is
    /// a chain of dependent `acc += w·x` FMAs — bound by FP latency, not
    /// throughput — and re-streams every weight matrix per sample. This
    /// kernel transposes each [`Mlp::LANES`]-sample tile of activations and
    /// evaluates the tile's dot products *simultaneously*: one weight pass
    /// per tile, `LANES` independent accumulator chains. The tile itself is
    /// dispatched through [`crate::kernel::active_kernel`]: AVX2/FMA or NEON
    /// when the host supports it, the scalar tile otherwise.
    ///
    /// Numerical contract (see the [`crate::kernel`] docs):
    ///
    /// - Under the **scalar** kernel, each sample's accumulation runs in
    ///   exactly [`Mlp::predict`]'s seed order (`acc = b; acc += w·x`, left
    ///   to right), so outputs are bitwise identical to the seed per-sample
    ///   path — interleaving *across* samples reorders nothing *within* a
    ///   sample.
    /// - Under a **SIMD** kernel, summation order is unchanged but FMA
    ///   rounds once per term; outputs are ULP-close to scalar, not equal.
    /// - Under *any* kernel, a sample's output is bitwise-independent of the
    ///   batch it rides in: partial tiles are zero-padded (SIMD) or
    ///   evaluated per-sample (scalar, same arithmetic), never rerouted.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is not a whole number of rows or `out` is not `n` long.
    pub fn predict_batch_into(&self, xs: &[f32], out: &mut [f32], scratch: &mut MlpScratch) {
        let dim = self.input_dim();
        assert_eq!(xs.len() % dim.max(1), 0, "xs is not a whole number of rows");
        let n = xs.len() / dim;
        assert_eq!(out.len(), n, "output length mismatch");
        if n == 0 {
            return;
        }
        let kind = crate::kernel::active_kernel();
        let width = self.max_dim();
        scratch.reserve(n, width);
        let last = self.layers.len() - 1;

        // Layer-by-layer over the whole batch: activations for the current
        // layer's input live in one buffer, outputs accumulate in the other.
        scratch.split().0[..n * dim].copy_from_slice(xs);
        let mut cur_w = dim;
        let mut cur_buf = 0usize;
        for (li, layer) in self.layers.iter().enumerate() {
            let (in_dim, out_dim) = (layer.in_dim, layer.out_dim);
            for block in (0..n).step_by(Self::LANES) {
                let bs = Self::LANES.min(n - block);
                let (a, b, tile) = scratch.parts();
                let (src, dst) = if cur_buf == 0 { (a, b) } else { (b, a) };
                if kind != crate::kernel::KernelKind::Scalar {
                    // SIMD tile, full or ragged: pad missing lanes with
                    // zeros so every live sample's FMA chain is identical
                    // whatever tile it lands in, then write back only the
                    // live lanes.
                    if bs < Self::LANES {
                        tile[..in_dim * Self::LANES].fill(0.0);
                    }
                    for t in 0..bs {
                        let row = &src[(block + t) * cur_w..(block + t) * cur_w + in_dim];
                        for (k, &v) in row.iter().enumerate() {
                            tile[k * Self::LANES + t] = v;
                        }
                    }
                    crate::kernel::tile_forward(
                        kind,
                        &layer.w,
                        &layer.b,
                        in_dim,
                        out_dim,
                        tile,
                        dst,
                        block,
                        bs,
                        li != last,
                    );
                } else if bs == Self::LANES {
                    // Transpose the tile: tile[k * LANES + t] = sample t's
                    // feature k (contiguous lanes for the inner loop).
                    for t in 0..Self::LANES {
                        let row = &src[(block + t) * cur_w..(block + t) * cur_w + in_dim];
                        for (k, &v) in row.iter().enumerate() {
                            tile[k * Self::LANES + t] = v;
                        }
                    }
                    for o in 0..out_dim {
                        let row = &layer.w[o * in_dim..(o + 1) * in_dim];
                        let mut acc = [layer.b[o]; Self::LANES];
                        for (k, &wv) in row.iter().enumerate() {
                            let lanes = &tile[k * Self::LANES..(k + 1) * Self::LANES];
                            for t in 0..Self::LANES {
                                acc[t] += wv * lanes[t];
                            }
                        }
                        for (t, &v) in acc.iter().enumerate() {
                            dst[(block + t) * out_dim + o] = v;
                        }
                    }
                    if li != last {
                        for v in &mut dst[block * out_dim..(block + Self::LANES) * out_dim] {
                            *v = v.max(0.0);
                        }
                    }
                } else {
                    // Ragged tail: plain per-sample forward (same arithmetic).
                    for s in block..block + bs {
                        let x = &src[s * cur_w..s * cur_w + in_dim];
                        let y = &mut dst[s * out_dim..(s + 1) * out_dim];
                        layer.forward_into(x, y);
                        if li != last {
                            for v in y {
                                *v = v.max(0.0);
                            }
                        }
                    }
                }
            }
            cur_w = out_dim;
            cur_buf ^= 1;
        }
        let (a, b) = scratch.split();
        let fin = if cur_buf == 0 { a } else { b };
        for (s, o) in out.iter_mut().enumerate() {
            *o = fin[s * cur_w];
        }
    }

    /// Allocating convenience wrapper over [`Mlp::predict_batch_into`].
    pub fn predict_batch(&self, xs: &[f32]) -> Vec<f32> {
        let dim = self.input_dim().max(1);
        let mut out = vec![0.0f32; xs.len() / dim];
        let mut scratch = MlpScratch::default();
        self.predict_batch_into(xs, &mut out, &mut scratch);
        out
    }

    /// Computes loss and parameter gradients over a shard of samples.
    ///
    /// `xs` is row-major `[n × input_dim]`; `ys` the labels; `dloss` maps
    /// `(prediction, label)` to `(loss, dloss/dprediction)`.
    /// Returns the summed gradients (average with [`MlpGrads::average`]) and
    /// the mean loss over the shard.
    pub fn grad_batch<F>(&self, xs: &[f32], ys: &[f32], dloss: F) -> (MlpGrads, f64)
    where
        F: Fn(f32, f32) -> (f32, f32),
    {
        let input_dim = self.input_dim();
        let n = ys.len();
        assert_eq!(xs.len(), n * input_dim, "xs shape mismatch");
        let mut grads = MlpGrads::zeros_like(self);
        let mut total_loss = 0.0f64;
        let nl = self.layers.len();

        // Per-sample activations (small: hidden sizes).
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(nl + 1);
        for s in 0..n {
            let x = &xs[s * input_dim..(s + 1) * input_dim];
            acts.clear();
            acts.push(x.to_vec());
            for (li, layer) in self.layers.iter().enumerate() {
                let mut out = vec![0.0f32; layer.out_dim];
                layer.forward_into(acts.last().unwrap(), &mut out);
                if li != nl - 1 {
                    for v in &mut out {
                        *v = v.max(0.0);
                    }
                }
                acts.push(out);
            }
            let pred = acts[nl][0];
            let (loss, dpred) = dloss(pred, ys[s]);
            total_loss += f64::from(loss);

            // Backward.
            let mut delta = vec![0.0f32; 1];
            delta[0] = dpred;
            for li in (0..nl).rev() {
                let layer = &self.layers[li];
                let a_in = &acts[li];
                let (gw, gb) = &mut grads.layers[li];
                for (o, &d) in delta.iter().enumerate() {
                    gb[o] += d;
                    let row = &mut gw[o * layer.in_dim..(o + 1) * layer.in_dim];
                    for (g, &a) in row.iter_mut().zip(a_in) {
                        *g += d * a;
                    }
                }
                if li > 0 {
                    let mut prev = vec![0.0f32; layer.in_dim];
                    for (o, &d) in delta.iter().enumerate() {
                        let row = &layer.w[o * layer.in_dim..(o + 1) * layer.in_dim];
                        for (p, &wv) in prev.iter_mut().zip(row) {
                            *p += d * wv;
                        }
                    }
                    // ReLU derivative gate (a_in is post-activation).
                    for (p, &a) in prev.iter_mut().zip(a_in) {
                        if a <= 0.0 {
                            *p = 0.0;
                        }
                    }
                    delta = prev;
                }
            }
            grads.count += 1;
        }
        (grads, total_loss / n.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(42)
    }

    #[test]
    fn shapes_and_param_count() {
        let m = Mlp::new(&[10, 8, 4, 1], &mut rng());
        assert_eq!(m.input_dim(), 10);
        assert_eq!(m.num_params(), 10 * 8 + 8 + 8 * 4 + 4 + 4 + 1);
        let y = m.predict(&[0.1; 10]);
        assert!(y.is_finite());
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut r = rng();
        let m = Mlp::new(&[6, 5, 1], &mut r);
        let xs: Vec<f32> = (0..18).map(|i| (i as f32 * 0.37).sin()).collect();
        let ys = vec![1.5f32, 0.7, 2.2];
        let sq = |p: f32, y: f32| ((p - y) * (p - y), 2.0 * (p - y));
        let (grads, _) = m.grad_batch(&xs, &ys, sq);

        let eps = 1e-3f32;
        let loss_of = |m: &Mlp| {
            let mut total = 0.0f64;
            for s in 0..3 {
                let p = m.predict(&xs[s * 6..(s + 1) * 6]);
                total += f64::from((p - ys[s]) * (p - ys[s]));
            }
            total
        };
        // Spot-check a handful of weight coordinates in each layer.
        for li in 0..2 {
            let wlen = m.layers[li].w.len();
            for &wi in [0usize, 3, 7].iter().filter(|&&wi| wi < wlen) {
                let mut mp = m.clone();
                mp.layers[li].w[wi] += eps;
                let mut mm = m.clone();
                mm.layers[li].w[wi] -= eps;
                let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * f64::from(eps));
                let ana = f64::from(grads.layers[li].0[wi]);
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                    "layer {li} w[{wi}]: numeric {num} vs analytic {ana}"
                );
            }
            let mut mp = m.clone();
            mp.layers[li].b[0] += eps;
            let mut mm = m.clone();
            mm.layers[li].b[0] -= eps;
            let num = (loss_of(&mp) - loss_of(&mm)) / (2.0 * f64::from(eps));
            let ana = f64::from(grads.layers[li].1[0]);
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "layer {li} b[0]"
            );
        }
    }

    #[test]
    fn merge_equals_single_batch() {
        let m = Mlp::new(&[4, 3, 1], &mut rng());
        let xs: Vec<f32> = (0..16).map(|i| i as f32 * 0.1).collect();
        let ys = vec![1.0f32, 2.0, 3.0, 4.0];
        let sq = |p: f32, y: f32| ((p - y) * (p - y), 2.0 * (p - y));
        let (full, _) = m.grad_batch(&xs, &ys, sq);
        let (mut a, _) = m.grad_batch(&xs[..8], &ys[..2], sq);
        let (b, _) = m.grad_batch(&xs[8..], &ys[2..], sq);
        a.merge(&b);
        for (la, lf) in a.layers.iter().zip(&full.layers) {
            for (x, y) in la.0.iter().zip(&lf.0) {
                assert!((x - y).abs() < 1e-4);
            }
        }
        assert_eq!(a.count, full.count);
    }

    #[test]
    fn average_scales_by_count() {
        let m = Mlp::new(&[2, 1], &mut rng());
        let sq = |p: f32, y: f32| ((p - y) * (p - y), 2.0 * (p - y));
        let (mut g, _) = m.grad_batch(&[1.0, 2.0, 1.0, 2.0], &[1.0, 1.0], sq);
        let before = g.layers[0].0[0];
        g.average();
        assert!((g.layers[0].0[0] - before / 2.0).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn predict_rejects_wrong_dim() {
        let m = Mlp::new(&[4, 1], &mut rng());
        let _ = m.predict(&[1.0, 2.0]);
    }

    #[test]
    fn batch_matches_single_bitwise() {
        let m = Mlp::new(&[7, 9, 5, 1], &mut rng());
        let n = 33;
        let xs: Vec<f32> = (0..n * 7)
            .map(|i| ((i as f32) * 0.71).sin() * 3.0)
            .collect();
        let batch = m.predict_batch(&xs);
        assert_eq!(batch.len(), n);
        for s in 0..n {
            let single = m.predict(&xs[s * 7..(s + 1) * 7]);
            assert_eq!(single.to_bits(), batch[s].to_bits(), "row {s} diverged");
        }
    }

    #[test]
    fn batch_scratch_is_reusable_across_batch_sizes() {
        let m = Mlp::new(&[3, 8, 1], &mut rng());
        let mut scratch = MlpScratch::default();
        for n in [64usize, 1, 17, 128] {
            let xs: Vec<f32> = (0..n * 3).map(|i| i as f32 * 0.01 - 1.0).collect();
            let mut out = vec![0.0f32; n];
            m.predict_batch_into(&xs, &mut out, &mut scratch);
            for s in 0..n {
                assert_eq!(
                    out[s].to_bits(),
                    m.predict(&xs[s * 3..(s + 1) * 3]).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let m = Mlp::new(&[4, 1], &mut rng());
        assert!(m.predict_batch(&[]).is_empty());
    }
}
