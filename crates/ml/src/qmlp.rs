//! Int8-weight inference: [`QuantizedMlp`] plus the fused
//! dequantize-assembly input path ([`QuantFeatureBuf`]).
//!
//! Weights are quantized **per output channel** to `i8` (symmetric,
//! `w ≈ w_scale[o] · q`), the contract "A Learned Performance Model for
//! TPUs" serves perf models with at fleet scale. Accumulation is exact where
//! it matters:
//!
//! - **First layer** (real-valued standardized input): `f32` accumulate of
//!   `z_k · q[k][o]` — the input is not quantized, so the only error is the
//!   weight rounding.
//! - **Hidden layers** (non-negative post-ReLU input): per-sample dynamic
//!   `u8` activation quantization with an **`i32` accumulate** of
//!   `u8 × i8` products — integer-exact, so scalar and vectorized builds of
//!   this loop cannot diverge.
//!
//! The fused path ([`QuantizedMlp::predict_segments`]) consumes encoded
//! arena blocks *directly*: [`QuantFeatureBuf`] carries raw `u8` payload
//! bytes plus their per-block affine `(scale, offset)`, and the first-layer
//! GEMV dequantizes + standardizes each element in registers while
//! accumulating — the f32 feature vector is never materialized in memory
//! (pinned by the counting-allocator test `tests/fused_alloc.rs`).

use serde::{Deserialize, Serialize};

use crate::mlp::{Linear, Mlp};

/// One dense layer with `i8` weights: `y = w_scale ⊙ (Q x) + b`, where `Q`
/// holds `i8` quantized weights and `w_scale` is per **output** channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantLinear {
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Quantized weights, **transposed** `[in_dim × out_dim]` (input-major),
    /// so the axpy-style forward streams one contiguous row per input
    /// element.
    pub qw_t: Vec<i8>,
    /// Per-output-channel dequantization scale: `w[o][k] ≈ w_scale[o] ·
    /// qw_t[k][o]`.
    pub w_scale: Vec<f32>,
    /// Biases, kept in `f32` (they are added after dequantization).
    pub b: Vec<f32>,
}

impl QuantLinear {
    /// Quantizes one f32 layer: symmetric per-output-channel `amax / 127`.
    pub fn from_f32(l: &Linear) -> QuantLinear {
        let (in_dim, out_dim) = (l.in_dim, l.out_dim);
        let mut w_scale = vec![0.0f32; out_dim];
        for (o, s) in w_scale.iter_mut().enumerate() {
            let row = &l.w[o * in_dim..(o + 1) * in_dim];
            let amax = row.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
            *s = if amax > 0.0 { amax / 127.0 } else { 1.0 };
        }
        let mut qw_t = vec![0i8; in_dim * out_dim];
        for o in 0..out_dim {
            let inv = 1.0 / w_scale[o];
            for k in 0..in_dim {
                let q = (l.w[o * in_dim + k] * inv).round().clamp(-127.0, 127.0);
                qw_t[k * out_dim + o] = q as i8;
            }
        }
        QuantLinear {
            in_dim,
            out_dim,
            qw_t,
            w_scale,
            b: l.b.clone(),
        }
    }

    /// First-layer forward: `f32` accumulate over a real-valued input.
    /// `acc` must hold `out_dim` zeroed accumulators; the caller folds in
    /// bias and scale via [`QuantLinear::finish_f32`].
    #[inline]
    fn accumulate_f32(&self, z: &[f32], acc: &mut [f32]) {
        debug_assert_eq!(z.len(), self.in_dim);
        for (k, &zv) in z.iter().enumerate() {
            if zv != 0.0 {
                axpy_i8(
                    acc,
                    zv,
                    &self.qw_t[k * self.out_dim..(k + 1) * self.out_dim],
                );
            }
        }
    }

    /// Applies bias + per-channel scale to raw `f32` accumulators.
    #[inline]
    fn finish_f32(&self, acc: &[f32], out: &mut [f32], relu: bool) {
        for ((y, &a), (&s, &b)) in out
            .iter_mut()
            .zip(acc)
            .zip(self.w_scale.iter().zip(&self.b))
        {
            let v = b + s * a;
            *y = if relu { v.max(0.0) } else { v };
        }
    }

    /// Hidden-layer forward over `u8`-quantized activations with an exact
    /// `i32` accumulate: `out[o] = b[o] + (w_scale[o] · a_scale) · Σ_k
    /// qa[k] · qw[k][o]`.
    #[inline]
    fn forward_u8_into(
        &self,
        qa: &[u8],
        a_scale: f32,
        iacc: &mut [i32],
        out: &mut [f32],
        relu: bool,
    ) {
        debug_assert_eq!(qa.len(), self.in_dim);
        let iacc = &mut iacc[..self.out_dim];
        iacc.fill(0);
        for (k, &q) in qa.iter().enumerate() {
            if q != 0 {
                let row = &self.qw_t[k * self.out_dim..(k + 1) * self.out_dim];
                let qv = i32::from(q);
                for (a, &w) in iacc.iter_mut().zip(row) {
                    *a += qv * i32::from(w);
                }
            }
        }
        for ((y, &a), (&s, &b)) in out
            .iter_mut()
            .zip(iacc.iter())
            .zip(self.w_scale.iter().zip(&self.b))
        {
            let v = b + (s * a_scale) * a as f32;
            *y = if relu { v.max(0.0) } else { v };
        }
    }
}

/// `acc[o] += z · qrow[o]` over one transposed weight row. Plain code on
/// purpose: the `i8 → f32` widen + FMA pattern auto-vectorizes, and the
/// first layer dominates quantized inference cost.
#[inline]
fn axpy_i8(acc: &mut [f32], z: f32, qrow: &[i8]) {
    for (a, &q) in acc.iter_mut().zip(qrow) {
        *a += z * f32::from(q);
    }
}

/// Reusable working memory for [`QuantizedMlp`] forward passes. Grows on
/// demand, never shrinks — steady-state inference allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct QuantScratch {
    /// First-layer f32 accumulators.
    acc: Vec<f32>,
    /// Hidden-layer i32 accumulators.
    iacc: Vec<i32>,
    /// Quantized activations.
    qa: Vec<u8>,
    /// Ping-pong activation buffers.
    a: Vec<f32>,
    b: Vec<f32>,
}

impl QuantScratch {
    fn reserve(&mut self, width: usize) {
        if self.acc.len() < width {
            self.acc.resize(width, 0.0);
            self.iacc.resize(width, 0);
            self.qa.resize(width, 0);
            self.a.resize(width, 0.0);
            self.b.resize(width, 0.0);
        }
    }
}

/// An [`Mlp`] with `i8` weights (see the module docs for the accumulation
/// contract). Convert with [`Mlp::quantize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedMlp {
    /// Quantized dense layers; ReLU between all but the last.
    pub layers: Vec<QuantLinear>,
}

impl Mlp {
    /// Quantizes every layer to `i8` weights with per-output-channel scales.
    pub fn quantize(&self) -> QuantizedMlp {
        QuantizedMlp {
            layers: self.layers.iter().map(QuantLinear::from_f32).collect(),
        }
    }
}

impl QuantizedMlp {
    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim
    }

    /// Widest layer dimension (scratch sizing).
    pub fn max_dim(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.out_dim.max(l.in_dim))
            .max()
            .unwrap_or(0)
    }

    /// Total quantized weight bytes (the footprint win over `f32`).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.qw_t.len()).sum()
    }

    /// Forward pass over an already-standardized input vector `z`.
    ///
    /// Bitwise-identical to [`QuantizedMlp::predict_segments`] fed segments
    /// that dequantize + standardize to the same values — the fused path
    /// reorders nothing.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the input dimension.
    pub fn predict(&self, z: &[f32], scratch: &mut QuantScratch) -> f32 {
        let l0 = &self.layers[0];
        assert_eq!(z.len(), l0.in_dim, "input dimension mismatch");
        scratch.reserve(self.max_dim());
        let acc = &mut scratch.acc[..l0.out_dim];
        acc.fill(0.0);
        l0.accumulate_f32(z, acc);
        self.finish_from_first(scratch)
    }

    /// Fused first-layer forward: consumes encoded feature segments
    /// directly, dequantizing (`offset + scale · q`, the arena contract) and
    /// standardizing (`(tx(v) − mean) / std`, `tx = ln(1+·)` iff `log1p`)
    /// each element **in registers** while accumulating into the first
    /// layer — no f32 feature vector is ever written to memory.
    ///
    /// # Panics
    ///
    /// Panics if the segment element count or `mean`/`std` lengths differ
    /// from the input dimension.
    pub fn predict_segments(
        &self,
        feats: &QuantFeatureBuf,
        mean: &[f32],
        std: &[f32],
        log1p: bool,
        scratch: &mut QuantScratch,
    ) -> f32 {
        let l0 = &self.layers[0];
        assert_eq!(feats.len(), l0.in_dim, "segment element count mismatch");
        assert_eq!(mean.len(), l0.in_dim, "normalizer mean length mismatch");
        assert_eq!(std.len(), l0.in_dim, "normalizer std length mismatch");
        scratch.reserve(self.max_dim());
        let acc = &mut scratch.acc[..l0.out_dim];
        acc.fill(0.0);
        let out_dim = l0.out_dim;
        let mut k = 0usize;
        let (mut u8_pos, mut f32_pos) = (0usize, 0usize);
        for seg in &feats.segs {
            match *seg {
                QuantSeg::U8 { len, scale, offset } => {
                    for &q in &feats.u8_data[u8_pos..u8_pos + len] {
                        let v = offset + scale * f32::from(q);
                        let z = standardize(v, mean[k], std[k], log1p);
                        if z != 0.0 {
                            axpy_i8(acc, z, &l0.qw_t[k * out_dim..(k + 1) * out_dim]);
                        }
                        k += 1;
                    }
                    u8_pos += len;
                }
                QuantSeg::F32 { len } => {
                    for &v in &feats.f32_data[f32_pos..f32_pos + len] {
                        let z = standardize(v, mean[k], std[k], log1p);
                        if z != 0.0 {
                            axpy_i8(acc, z, &l0.qw_t[k * out_dim..(k + 1) * out_dim]);
                        }
                        k += 1;
                    }
                    f32_pos += len;
                }
            }
        }
        debug_assert_eq!(k, l0.in_dim);
        self.finish_from_first(scratch)
    }

    /// Folds bias/scale into the first layer's accumulators, then runs the
    /// remaining layers with `u8`-activation / `i32`-accumulate forwards.
    fn finish_from_first(&self, scratch: &mut QuantScratch) -> f32 {
        let last = self.layers.len() - 1;
        let l0 = &self.layers[0];
        {
            let (acc, a) = (&scratch.acc[..l0.out_dim], &mut scratch.a[..l0.out_dim]);
            l0.finish_f32(acc, a, last != 0);
        }
        let mut cur = 0usize; // 0 = scratch.a, 1 = scratch.b
        for (li, layer) in self.layers.iter().enumerate().skip(1) {
            let QuantScratch { iacc, qa, a, b, .. } = scratch;
            let (src, dst) = if cur == 0 {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            let x = &src[..layer.in_dim];
            // Dynamic activation quantization: post-ReLU activations are
            // ≥ 0, so the affine is zero-point-free (`a ≈ a_scale · qa`).
            let amax = x.iter().fold(0.0f32, |m, &v| m.max(v));
            let qa = &mut qa[..layer.in_dim];
            let a_scale = if amax > 0.0 {
                let inv = 255.0 / amax;
                for (q, &v) in qa.iter_mut().zip(x) {
                    *q = (v * inv).round().min(255.0) as u8;
                }
                amax / 255.0
            } else {
                qa.fill(0);
                0.0
            };
            layer.forward_u8_into(qa, a_scale, iacc, &mut dst[..layer.out_dim], li != last);
            cur ^= 1;
        }
        if cur == 0 {
            scratch.a[0]
        } else {
            scratch.b[0]
        }
    }

    /// Batched forward over row-major standardized inputs (`n ×
    /// input_dim`), one scalar per row. The quantized batch path is a
    /// per-sample loop: the first layer's axpy already streams weights once
    /// per sample, and hidden layers are a small fraction of the work.
    ///
    /// # Panics
    ///
    /// Panics if `zs` is not a whole number of rows or `out` is not `n` long.
    pub fn predict_batch_into(&self, zs: &[f32], out: &mut [f32], scratch: &mut QuantScratch) {
        let dim = self.input_dim();
        assert_eq!(zs.len() % dim.max(1), 0, "zs is not a whole number of rows");
        assert_eq!(out.len(), zs.len() / dim.max(1), "output length mismatch");
        for (row, y) in zs.chunks_exact(dim).zip(out.iter_mut()) {
            *y = self.predict(row, scratch);
        }
    }
}

/// `(tx(v) − mean) / std` with `tx = ln(1+·)` iff `log1p` — must match
/// `Normalizer::apply` in `concorde-core` bit for bit (the fused path
/// standardizes in registers, the materialized path in place).
#[inline]
fn standardize(v: f32, mean: f32, std: f32, log1p: bool) -> f32 {
    let t = if log1p { v.max(0.0).ln_1p() } else { v };
    (t - mean) / std
}

/// One encoded segment of a [`QuantFeatureBuf`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantSeg {
    /// `len` raw `u8` elements dequantizing as `offset + scale · q` (the
    /// int8 arena-block affine).
    U8 {
        /// Element count.
        len: usize,
        /// Block dequantization scale.
        scale: f32,
        /// Block dequantization offset.
        offset: f32,
    },
    /// `len` plain `f32` elements (lossless blocks, scalars, f16 blocks
    /// pre-converted exactly).
    F32 {
        /// Element count.
        len: usize,
    },
}

/// A feature vector in **encoded** form: a sequence of segments over two
/// backing pools (`u8` payload bytes, `f32` values). The assembly side
/// (`FeatureStore::features_quantized_into`) appends blocks without
/// dequantizing int8 payloads; the consumption side
/// ([`QuantizedMlp::predict_segments`]) fuses dequantization into the first
/// GEMV. Pools keep their capacity across [`QuantFeatureBuf::clear`], so a
/// warm buffer assembles with zero heap allocations.
#[derive(Debug, Default, Clone)]
pub struct QuantFeatureBuf {
    u8_data: Vec<u8>,
    f32_data: Vec<f32>,
    segs: Vec<QuantSeg>,
    len: usize,
}

impl QuantFeatureBuf {
    /// Empties the buffer, keeping all capacity.
    pub fn clear(&mut self) {
        self.u8_data.clear();
        self.f32_data.clear();
        self.segs.clear();
        self.len = 0;
    }

    /// Total feature elements across all segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The segment list (tests and diagnostics).
    pub fn segments(&self) -> &[QuantSeg] {
        &self.segs
    }

    /// Appends one raw int8 arena block with its affine params.
    pub fn push_u8_block(&mut self, bytes: &[u8], scale: f32, offset: f32) {
        self.u8_data.extend_from_slice(bytes);
        self.segs.push(QuantSeg::U8 {
            len: bytes.len(),
            scale,
            offset,
        });
        self.len += bytes.len();
    }

    /// Appends plain `f32` elements (coalesced into the previous `F32`
    /// segment when adjacent).
    pub fn push_f32_slice(&mut self, vs: &[f32]) {
        self.f32_data.extend_from_slice(vs);
        self.note_f32(vs.len());
    }

    /// Appends one plain `f32` element.
    pub fn push_f32(&mut self, v: f32) {
        self.f32_data.push(v);
        self.note_f32(1);
    }

    /// Appends `len` `f32` elements produced by `fill` writing into the
    /// freshly extended tail (how `MicroArch::encode_into` and arena
    /// `write_entry` land without an intermediate buffer).
    pub fn push_f32_with(&mut self, len: usize, fill: impl FnOnce(&mut [f32])) {
        let start = self.f32_data.len();
        self.f32_data.resize(start + len, 0.0);
        fill(&mut self.f32_data[start..]);
        self.note_f32(len);
    }

    fn note_f32(&mut self, len: usize) {
        if len == 0 {
            return;
        }
        if let Some(QuantSeg::F32 { len: l }) = self.segs.last_mut() {
            *l += len;
        } else {
            self.segs.push(QuantSeg::F32 { len });
        }
        self.len += len;
    }

    /// Dequantizes every segment into `out` — the reference the fused path
    /// is tested against. Element arithmetic (`offset + scale · q`) matches
    /// the arena `write_entry` contract exactly.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    pub fn materialize_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.len, "output buffer length mismatch");
        let mut k = 0usize;
        let (mut u8_pos, mut f32_pos) = (0usize, 0usize);
        for seg in &self.segs {
            match *seg {
                QuantSeg::U8 { len, scale, offset } => {
                    for &q in &self.u8_data[u8_pos..u8_pos + len] {
                        out[k] = offset + scale * f32::from(q);
                        k += 1;
                    }
                    u8_pos += len;
                }
                QuantSeg::F32 { len } => {
                    out[k..k + len].copy_from_slice(&self.f32_data[f32_pos..f32_pos + len]);
                    k += len;
                    f32_pos += len;
                }
            }
        }
    }

    /// Allocating [`QuantFeatureBuf::materialize_into`].
    pub fn materialize(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.len];
        self.materialize_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng() -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(7)
    }

    #[test]
    fn quantize_roundtrips_weights_within_half_step() {
        let m = Mlp::new(&[12, 9, 1], &mut rng());
        let q = m.quantize();
        for (l, ql) in m.layers.iter().zip(&q.layers) {
            for o in 0..l.out_dim {
                for k in 0..l.in_dim {
                    let w = l.w[o * l.in_dim + k];
                    let back = ql.w_scale[o] * f32::from(ql.qw_t[k * ql.out_dim + o]);
                    assert!(
                        (w - back).abs() <= ql.w_scale[o] * 0.5 + 1e-7,
                        "w {w} vs dequant {back} (scale {})",
                        ql.w_scale[o]
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_predictions_track_f32() {
        let m = Mlp::new(&[24, 16, 8, 1], &mut rng());
        let q = m.quantize();
        let mut scratch = QuantScratch::default();
        for s in 0..32 {
            let z: Vec<f32> = (0..24)
                .map(|i| ((i + s * 13) as f32 * 0.61).sin())
                .collect();
            let yf = m.predict(&z);
            let yq = q.predict(&z, &mut scratch);
            assert!(
                (yf - yq).abs() <= 0.05 * yf.abs() + 0.05,
                "sample {s}: f32 {yf} vs int8 {yq}"
            );
        }
    }

    #[test]
    fn segments_match_materialized_bitwise() {
        let m = Mlp::new(&[10, 7, 1], &mut rng());
        let q = m.quantize();
        let mut buf = QuantFeatureBuf::default();
        buf.push_u8_block(&[0, 3, 255, 17], 0.25, -1.5);
        buf.push_f32_slice(&[0.5, -2.0, 3.25]);
        buf.push_f32(4.0);
        buf.push_f32_with(2, |t| {
            t[0] = 9.0;
            t[1] = 0.125;
        });
        assert_eq!(buf.len(), 10);
        let mean = vec![0.3f32; 10];
        let std = vec![1.7f32; 10];
        let mut scratch = QuantScratch::default();
        for log1p in [false, true] {
            let fused = q.predict_segments(&buf, &mean, &std, log1p, &mut scratch);
            let mut z = buf.materialize();
            for (v, (m, s)) in z.iter_mut().zip(mean.iter().zip(&std)) {
                let t = if log1p { v.max(0.0).ln_1p() } else { *v };
                *v = (t - m) / s;
            }
            let direct = q.predict(&z, &mut scratch);
            assert_eq!(
                fused.to_bits(),
                direct.to_bits(),
                "fused vs materialized diverged (log1p={log1p})"
            );
        }
    }

    #[test]
    fn batch_matches_single() {
        let m = Mlp::new(&[6, 5, 1], &mut rng());
        let q = m.quantize();
        let mut scratch = QuantScratch::default();
        let zs: Vec<f32> = (0..6 * 11).map(|i| (i as f32 * 0.17).cos()).collect();
        let mut out = vec![0.0f32; 11];
        q.predict_batch_into(&zs, &mut out, &mut scratch);
        for (s, &y) in out.iter().enumerate() {
            let single = q.predict(&zs[s * 6..(s + 1) * 6], &mut scratch);
            assert_eq!(y.to_bits(), single.to_bits(), "row {s}");
        }
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut buf = QuantFeatureBuf::default();
        buf.push_u8_block(&[1, 2, 3], 1.0, 0.0);
        buf.push_f32_slice(&[1.0, 2.0]);
        let (cu, cf, cs) = (
            buf.u8_data.capacity(),
            buf.f32_data.capacity(),
            buf.segs.capacity(),
        );
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(
            (cu, cf, cs),
            (
                buf.u8_data.capacity(),
                buf.f32_data.capacity(),
                buf.segs.capacity()
            )
        );
    }

    #[test]
    fn all_zero_hidden_activations_are_fine() {
        // A layer whose output ReLUs to all-zeros must not divide by zero in
        // the dynamic activation quantizer.
        let mut m = Mlp::new(&[4, 3, 1], &mut rng());
        for l in &mut m.layers {
            for w in &mut l.w {
                *w = -w.abs(); // all-negative weights
            }
            for b in &mut l.b {
                *b = -1.0;
            }
        }
        let q = m.quantize();
        let mut scratch = QuantScratch::default();
        let y = q.predict(&[1.0, 2.0, 3.0, 4.0], &mut scratch);
        assert!(y.is_finite());
        assert_eq!(y, q.layers.last().unwrap().b[0]);
    }
}
