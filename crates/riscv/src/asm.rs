//! Tiny RV32IM assembler and ELF writer.
//!
//! The container has no RISC-V cross toolchain, so the vendored test
//! binaries under `riscv-testdata/` are produced by this module: raw
//! instruction encoders (one function per mnemonic), a label-fixup
//! program builder for writing loops and calls without hand-computing
//! branch offsets, and [`build_elf`] which wraps the encoded words in a
//! minimal ELF32 executable the front end can load. It is test/tooling
//! infrastructure, not part of the ingestion path.

use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Raw format encoders
// ---------------------------------------------------------------------------

/// R-type: `funct7 | rs2 | rs1 | funct3 | rd | opcode`.
#[inline]
pub fn enc_r(opcode: u32, funct3: u32, funct7: u32, rd: u8, rs1: u8, rs2: u8) -> u32 {
    (funct7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

/// I-type: `imm[11:0] | rs1 | funct3 | rd | opcode`.
#[inline]
pub fn enc_i(opcode: u32, funct3: u32, rd: u8, rs1: u8, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "I-immediate out of range: {imm}"
    );
    (((imm as u32) & 0xfff) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((rd as u32) << 7)
        | opcode
}

/// S-type: `imm[11:5] | rs2 | rs1 | funct3 | imm[4:0] | opcode`.
#[inline]
pub fn enc_s(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "S-immediate out of range: {imm}"
    );
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

/// B-type: branch offset in bytes (must be even, ±4 KiB).
#[inline]
pub fn enc_b(opcode: u32, funct3: u32, rs1: u8, rs2: u8, imm: i32) -> u32 {
    debug_assert!(imm % 2 == 0, "branch offset must be even: {imm}");
    debug_assert!(
        (-4096..=4094).contains(&imm),
        "B-immediate out of range: {imm}"
    );
    let imm = imm as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

/// U-type: `imm[31:12] | rd | opcode` (`imm20` is the *upper* 20 bits).
#[inline]
pub fn enc_u(opcode: u32, rd: u8, imm20: u32) -> u32 {
    debug_assert!(imm20 < (1 << 20), "U-immediate out of range: {imm20:#x}");
    (imm20 << 12) | ((rd as u32) << 7) | opcode
}

/// J-type: jump offset in bytes (must be even, ±1 MiB).
#[inline]
pub fn enc_j(opcode: u32, rd: u8, imm: i32) -> u32 {
    debug_assert!(imm % 2 == 0, "jump offset must be even: {imm}");
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm),
        "J-immediate out of range: {imm}"
    );
    let imm = imm as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | opcode
}

// ---------------------------------------------------------------------------
// Mnemonics
// ---------------------------------------------------------------------------

#[allow(missing_docs)]
pub fn lui(rd: u8, imm20: u32) -> u32 {
    enc_u(0x37, rd, imm20)
}
#[allow(missing_docs)]
pub fn auipc(rd: u8, imm20: u32) -> u32 {
    enc_u(0x17, rd, imm20)
}
#[allow(missing_docs)]
pub fn jal(rd: u8, offset: i32) -> u32 {
    enc_j(0x6f, rd, offset)
}
#[allow(missing_docs)]
pub fn jalr(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x67, 0, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn beq(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 0, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn bne(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 1, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn blt(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 4, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn bge(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 5, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn bltu(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 6, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn bgeu(rs1: u8, rs2: u8, offset: i32) -> u32 {
    enc_b(0x63, 7, rs1, rs2, offset)
}
#[allow(missing_docs)]
pub fn lb(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x03, 0, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn lh(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x03, 1, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn lw(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x03, 2, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn lbu(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x03, 4, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn lhu(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x03, 5, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn sb(rs1: u8, rs2: u8, imm: i32) -> u32 {
    enc_s(0x23, 0, rs1, rs2, imm)
}
#[allow(missing_docs)]
pub fn sh(rs1: u8, rs2: u8, imm: i32) -> u32 {
    enc_s(0x23, 1, rs1, rs2, imm)
}
#[allow(missing_docs)]
pub fn sw(rs1: u8, rs2: u8, imm: i32) -> u32 {
    enc_s(0x23, 2, rs1, rs2, imm)
}
#[allow(missing_docs)]
pub fn addi(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 0, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn slti(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 2, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn sltiu(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 3, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn xori(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 4, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn ori(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 6, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn andi(rd: u8, rs1: u8, imm: i32) -> u32 {
    enc_i(0x13, 7, rd, rs1, imm)
}
#[allow(missing_docs)]
pub fn slli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    enc_r(0x13, 1, 0x00, rd, rs1, shamt)
}
#[allow(missing_docs)]
pub fn srli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    enc_r(0x13, 5, 0x00, rd, rs1, shamt)
}
#[allow(missing_docs)]
pub fn srai(rd: u8, rs1: u8, shamt: u8) -> u32 {
    enc_r(0x13, 5, 0x20, rd, rs1, shamt)
}
#[allow(missing_docs)]
pub fn add(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 0, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn sub(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 0, 0x20, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn sll(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 1, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn slt(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 2, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn sltu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 3, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn xor(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 4, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn srl(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 5, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn sra(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 5, 0x20, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn or(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 6, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn and(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 7, 0x00, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn mul(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 0, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn mulh(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 1, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn mulhu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 3, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn div(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 4, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn divu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 5, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn rem(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 6, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn remu(rd: u8, rs1: u8, rs2: u8) -> u32 {
    enc_r(0x33, 7, 0x01, rd, rs1, rs2)
}
#[allow(missing_docs)]
pub fn fence() -> u32 {
    0x0000_000f
}
#[allow(missing_docs)]
pub fn ecall() -> u32 {
    0x0000_0073
}
#[allow(missing_docs)]
pub fn ebreak() -> u32 {
    0x0010_0073
}

/// Canonical `nop` (`addi x0, x0, 0`).
pub fn nop() -> u32 {
    addi(0, 0, 0)
}

/// Loads an arbitrary 32-bit constant into `rd` (always emits the
/// `lui`+`addi` pair so instruction counts stay offset-independent).
pub fn li(rd: u8, value: i32) -> [u32; 2] {
    let v = value as u32;
    let lo = (v & 0xfff) as i32;
    let lo = if lo >= 2048 { lo - 4096 } else { lo };
    let hi = v.wrapping_sub(lo as u32) >> 12;
    [lui(rd, hi & 0xfffff), addi(rd, rd, lo)]
}

// ---------------------------------------------------------------------------
// Program builder with labels
// ---------------------------------------------------------------------------

/// A branch/jump target patched in at [`Prog::assemble`] time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

enum Item {
    Word(u32),
    /// B-type branch to a label: (opcode, funct3, rs1, rs2, label).
    Branch(u32, u32, u8, u8, Label),
    /// JAL to a label: (rd, label).
    Jump(u8, Label),
}

/// Two-pass assembler: append instructions and forward/backward label
/// references, then [`Prog::assemble`] resolves every offset.
#[derive(Default)]
pub struct Prog {
    items: Vec<Item>,
    labels: HashMap<Label, usize>,
    next_label: usize,
}

impl Prog {
    /// Empty program.
    pub fn new() -> Self {
        Prog::default()
    }

    /// Appends one already-encoded instruction word.
    pub fn push(&mut self, word: u32) -> &mut Self {
        self.items.push(Item::Word(word));
        self
    }

    /// Appends several encoded words (e.g. a [`li`] pair).
    pub fn push_all(&mut self, words: &[u32]) -> &mut Self {
        for &w in words {
            self.push(w);
        }
        self
    }

    /// Allocates a label that can be referenced before it is bound.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    pub fn bind(&mut self, label: Label) -> &mut Self {
        let prev = self.labels.insert(label, self.items.len());
        assert!(prev.is_none(), "label bound twice");
        self
    }

    /// Conditional branch to a label. `funct3` follows the B-type table
    /// (0=beq 1=bne 4=blt 5=bge 6=bltu 7=bgeu).
    pub fn branch(&mut self, funct3: u32, rs1: u8, rs2: u8, target: Label) -> &mut Self {
        self.items
            .push(Item::Branch(0x63, funct3, rs1, rs2, target));
        self
    }

    /// `jal rd, target`.
    pub fn jal(&mut self, rd: u8, target: Label) -> &mut Self {
        self.items.push(Item::Jump(rd, target));
        self
    }

    /// Resolves all labels and returns the encoded instruction words.
    ///
    /// # Panics
    ///
    /// If a referenced label was never bound (a bug in the test program).
    pub fn assemble(&self) -> Vec<u32> {
        self.items
            .iter()
            .enumerate()
            .map(|(idx, item)| match item {
                Item::Word(w) => *w,
                Item::Branch(opcode, funct3, rs1, rs2, label) => {
                    let target = *self.labels.get(label).expect("unbound branch label");
                    let offset = (target as i64 - idx as i64) * 4;
                    enc_b(*opcode, *funct3, *rs1, *rs2, offset as i32)
                }
                Item::Jump(rd, label) => {
                    let target = *self.labels.get(label).expect("unbound jump label");
                    let offset = (target as i64 - idx as i64) * 4;
                    jal(*rd, offset as i32)
                }
            })
            .collect()
    }

    /// Assembles into little-endian bytes (the ELF segment payload).
    pub fn assemble_bytes(&self) -> Vec<u8> {
        self.assemble()
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }
}

// ---------------------------------------------------------------------------
// ELF writer
// ---------------------------------------------------------------------------

/// Builds a minimal ELF32 little-endian `ET_EXEC` RISC-V image.
///
/// `segments` is `(vaddr, data, memsz, flags)` per loadable segment;
/// `memsz` may exceed `data.len()` to describe zero-filled BSS. The
/// output round-trips through [`crate::elf::parse_elf32`].
pub fn build_elf(entry: u32, segments: &[(u32, &[u8], u32, u32)]) -> Vec<u8> {
    const EHSIZE: usize = 52;
    const PHENTSIZE: usize = 32;
    let phoff = EHSIZE;
    let data_off = EHSIZE + segments.len() * PHENTSIZE;

    let mut out = Vec::new();
    // e_ident
    out.extend_from_slice(&[0x7f, b'E', b'L', b'F']);
    out.push(1); // ELFCLASS32
    out.push(1); // ELFDATA2LSB
    out.push(1); // EV_CURRENT
    out.extend_from_slice(&[0u8; 9]); // padding
    out.extend_from_slice(&2u16.to_le_bytes()); // e_type = ET_EXEC
    out.extend_from_slice(&243u16.to_le_bytes()); // e_machine = EM_RISCV
    out.extend_from_slice(&1u32.to_le_bytes()); // e_version
    out.extend_from_slice(&entry.to_le_bytes()); // e_entry
    out.extend_from_slice(&(phoff as u32).to_le_bytes()); // e_phoff
    out.extend_from_slice(&0u32.to_le_bytes()); // e_shoff
    out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
    out.extend_from_slice(&(EHSIZE as u16).to_le_bytes()); // e_ehsize
    out.extend_from_slice(&(PHENTSIZE as u16).to_le_bytes()); // e_phentsize
    out.extend_from_slice(&(segments.len() as u16).to_le_bytes()); // e_phnum
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shentsize
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shnum
    out.extend_from_slice(&0u16.to_le_bytes()); // e_shstrndx
    debug_assert_eq!(out.len(), EHSIZE);

    // Program headers.
    let mut offset = data_off;
    for (vaddr, data, memsz, flags) in segments {
        out.extend_from_slice(&1u32.to_le_bytes()); // p_type = PT_LOAD
        out.extend_from_slice(&(offset as u32).to_le_bytes()); // p_offset
        out.extend_from_slice(&vaddr.to_le_bytes()); // p_vaddr
        out.extend_from_slice(&vaddr.to_le_bytes()); // p_paddr
        out.extend_from_slice(&(data.len() as u32).to_le_bytes()); // p_filesz
        out.extend_from_slice(&memsz.to_le_bytes()); // p_memsz
        out.extend_from_slice(&flags.to_le_bytes()); // p_flags
        out.extend_from_slice(&4u32.to_le_bytes()); // p_align
        offset += data.len();
    }

    // Segment payloads, in order.
    for (_, data, _, _) in segments {
        out.extend_from_slice(data);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_round_trips_edge_values() {
        // Values whose low 12 bits look negative exercise the hi/lo split.
        for v in [
            0i32,
            1,
            -1,
            2047,
            2048,
            -2048,
            0x1234_5678,
            i32::MIN,
            i32::MAX,
        ] {
            let [hi, lo] = li(5, v);
            // Emulate: lui then addi.
            let r = ((hi & 0xffff_f000) as i32).wrapping_add((lo as i32) >> 20);
            assert_eq!(r, v, "li({v:#x}) mis-assembled");
        }
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut p = Prog::new();
        let top = p.label();
        let done = p.label();
        p.push_all(&li(5, 3));
        p.bind(top);
        p.push(addi(5, 5, -1)); // x5 -= 1
        p.branch(1, 5, 0, top); // bne x5, x0, top (backward)
        p.branch(0, 0, 0, done); // beq x0, x0, done (forward)
        p.push(nop());
        p.bind(done);
        p.push(ecall());
        let words = p.assemble();
        assert_eq!(words.len(), 7);
        // Backward branch: from index 3 to index 2 → offset -4.
        let d = crate::decode::decode(words[3]).unwrap();
        assert_eq!(d.imm, -4);
        // Forward branch: from index 4 to index 6 → offset +8.
        let d = crate::decode::decode(words[4]).unwrap();
        assert_eq!(d.imm, 8);
    }

    #[test]
    fn built_elf_is_parseable() {
        let mut p = Prog::new();
        p.push(nop()).push(ecall());
        let elf = build_elf(0x8000, &[(0x8000, &p.assemble_bytes(), 8, 5)]);
        let img = crate::elf::parse_elf32(&elf).unwrap();
        assert_eq!(img.entry, 0x8000);
        assert_eq!(img.segments[0].data.len(), 8);
    }
}
