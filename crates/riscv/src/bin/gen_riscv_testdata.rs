//! Regenerates the vendored RV32 test binaries under `riscv-testdata/`.
//!
//! Usage: `cargo run -p concorde-riscv --bin gen-riscv-testdata [out-dir]`
//! (default `riscv-testdata`). Output is deterministic; CI and the test
//! suite assert the committed files match what this produces.

use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "riscv-testdata".to_string())
        .into();
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("error: cannot create {}: {e}", out.display());
        std::process::exit(1);
    }
    for (name, bytes) in concorde_riscv::testdata::programs() {
        let path = out.join(format!("{name}.elf"));
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("wrote {} ({} bytes)", path.display(), bytes.len());
    }
}
