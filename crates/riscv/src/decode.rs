//! RV32IM instruction decoder.
//!
//! Decodes the 32-bit base integer ISA plus the M extension into a flat
//! `(op, rd, rs1, rs2, imm)` form the interpreter executes directly.
//! Compressed (RVC) encodings and every other extension decode to a typed
//! error — the interpreter turns that into a deterministic halt rather
//! than guessing at semantics.

use std::fmt;

/// Decoded RV32IM operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Op {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
    Div,
    Divu,
    Rem,
    Remu,
    Fence,
    FenceI,
    Ecall,
    Ebreak,
}

/// One decoded instruction: operation plus its register/immediate fields
/// (fields an operation does not use are zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// The operation.
    pub op: Op,
    /// Destination register index (0–31).
    pub rd: u8,
    /// First source register index.
    pub rs1: u8,
    /// Second source register index.
    pub rs2: u8,
    /// Sign-extended immediate (shift amount for `Slli`/`Srli`/`Srai`).
    pub imm: i32,
}

/// An encoding the decoder does not understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub raw: u32,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.raw, self.reason)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(raw: u32) -> u8 {
    ((raw >> 7) & 0x1f) as u8
}

#[inline]
fn rs1(raw: u32) -> u8 {
    ((raw >> 15) & 0x1f) as u8
}

#[inline]
fn rs2(raw: u32) -> u8 {
    ((raw >> 20) & 0x1f) as u8
}

#[inline]
fn funct3(raw: u32) -> u32 {
    (raw >> 12) & 7
}

#[inline]
fn funct7(raw: u32) -> u32 {
    raw >> 25
}

/// I-type immediate: bits 31:20, sign-extended.
#[inline]
fn imm_i(raw: u32) -> i32 {
    (raw as i32) >> 20
}

/// S-type immediate: bits 31:25 | 11:7, sign-extended.
#[inline]
fn imm_s(raw: u32) -> i32 {
    let v = ((raw >> 25) << 5) | ((raw >> 7) & 0x1f);
    ((v << 20) as i32) >> 20
}

/// B-type immediate: {31, 7, 30:25, 11:8, 0}, sign-extended.
#[inline]
fn imm_b(raw: u32) -> i32 {
    let v = (((raw >> 31) & 1) << 12)
        | (((raw >> 7) & 1) << 11)
        | (((raw >> 25) & 0x3f) << 5)
        | (((raw >> 8) & 0xf) << 1);
    ((v << 19) as i32) >> 19
}

/// U-type immediate: bits 31:12 shifted into place (not sign-extended —
/// already occupies the top bits).
#[inline]
fn imm_u(raw: u32) -> i32 {
    (raw & 0xffff_f000) as i32
}

/// J-type immediate: {31, 19:12, 20, 30:21, 0}, sign-extended.
#[inline]
fn imm_j(raw: u32) -> i32 {
    let v = (((raw >> 31) & 1) << 20)
        | (((raw >> 12) & 0xff) << 12)
        | (((raw >> 20) & 1) << 11)
        | (((raw >> 21) & 0x3ff) << 1);
    ((v << 11) as i32) >> 11
}

/// Decodes one 32-bit RV32IM instruction word.
///
/// # Errors
///
/// [`DecodeError`] for compressed encodings, unknown opcodes, and unknown
/// funct3/funct7 combinations.
pub fn decode(raw: u32) -> Result<Decoded, DecodeError> {
    if raw & 3 != 3 {
        return Err(DecodeError {
            raw,
            reason: "compressed (RVC) or invalid encoding; only 32-bit RV32IM is supported",
        });
    }
    let opcode = raw & 0x7f;
    let d = |op: Op, rd_v: u8, rs1_v: u8, rs2_v: u8, imm: i32| {
        Ok(Decoded {
            op,
            rd: rd_v,
            rs1: rs1_v,
            rs2: rs2_v,
            imm,
        })
    };
    match opcode {
        0x37 => d(Op::Lui, rd(raw), 0, 0, imm_u(raw)),
        0x17 => d(Op::Auipc, rd(raw), 0, 0, imm_u(raw)),
        0x6f => d(Op::Jal, rd(raw), 0, 0, imm_j(raw)),
        0x67 => match funct3(raw) {
            0 => d(Op::Jalr, rd(raw), rs1(raw), 0, imm_i(raw)),
            _ => Err(DecodeError {
                raw,
                reason: "JALR funct3 must be 0",
            }),
        },
        0x63 => {
            let op = match funct3(raw) {
                0 => Op::Beq,
                1 => Op::Bne,
                4 => Op::Blt,
                5 => Op::Bge,
                6 => Op::Bltu,
                7 => Op::Bgeu,
                _ => {
                    return Err(DecodeError {
                        raw,
                        reason: "unknown branch funct3",
                    })
                }
            };
            d(op, 0, rs1(raw), rs2(raw), imm_b(raw))
        }
        0x03 => {
            let op = match funct3(raw) {
                0 => Op::Lb,
                1 => Op::Lh,
                2 => Op::Lw,
                4 => Op::Lbu,
                5 => Op::Lhu,
                _ => {
                    return Err(DecodeError {
                        raw,
                        reason: "unknown load funct3",
                    })
                }
            };
            d(op, rd(raw), rs1(raw), 0, imm_i(raw))
        }
        0x23 => {
            let op = match funct3(raw) {
                0 => Op::Sb,
                1 => Op::Sh,
                2 => Op::Sw,
                _ => {
                    return Err(DecodeError {
                        raw,
                        reason: "unknown store funct3",
                    })
                }
            };
            d(op, 0, rs1(raw), rs2(raw), imm_s(raw))
        }
        0x13 => match funct3(raw) {
            0 => d(Op::Addi, rd(raw), rs1(raw), 0, imm_i(raw)),
            2 => d(Op::Slti, rd(raw), rs1(raw), 0, imm_i(raw)),
            3 => d(Op::Sltiu, rd(raw), rs1(raw), 0, imm_i(raw)),
            4 => d(Op::Xori, rd(raw), rs1(raw), 0, imm_i(raw)),
            6 => d(Op::Ori, rd(raw), rs1(raw), 0, imm_i(raw)),
            7 => d(Op::Andi, rd(raw), rs1(raw), 0, imm_i(raw)),
            1 => match funct7(raw) {
                0 => d(Op::Slli, rd(raw), rs1(raw), 0, (rs2(raw)) as i32),
                _ => Err(DecodeError {
                    raw,
                    reason: "unknown SLLI funct7",
                }),
            },
            5 => match funct7(raw) {
                0x00 => d(Op::Srli, rd(raw), rs1(raw), 0, (rs2(raw)) as i32),
                0x20 => d(Op::Srai, rd(raw), rs1(raw), 0, (rs2(raw)) as i32),
                _ => Err(DecodeError {
                    raw,
                    reason: "unknown shift-right funct7",
                }),
            },
            _ => unreachable!("funct3 is 3 bits"),
        },
        0x33 => {
            let op = match (funct7(raw), funct3(raw)) {
                (0x00, 0) => Op::Add,
                (0x20, 0) => Op::Sub,
                (0x00, 1) => Op::Sll,
                (0x00, 2) => Op::Slt,
                (0x00, 3) => Op::Sltu,
                (0x00, 4) => Op::Xor,
                (0x00, 5) => Op::Srl,
                (0x20, 5) => Op::Sra,
                (0x00, 6) => Op::Or,
                (0x00, 7) => Op::And,
                (0x01, 0) => Op::Mul,
                (0x01, 1) => Op::Mulh,
                (0x01, 2) => Op::Mulhsu,
                (0x01, 3) => Op::Mulhu,
                (0x01, 4) => Op::Div,
                (0x01, 5) => Op::Divu,
                (0x01, 6) => Op::Rem,
                (0x01, 7) => Op::Remu,
                _ => {
                    return Err(DecodeError {
                        raw,
                        reason: "unknown OP funct7/funct3",
                    })
                }
            };
            d(op, rd(raw), rs1(raw), rs2(raw), 0)
        }
        0x0f => match funct3(raw) {
            0 => d(Op::Fence, 0, 0, 0, 0),
            1 => d(Op::FenceI, 0, 0, 0, 0),
            _ => Err(DecodeError {
                raw,
                reason: "unknown MISC-MEM funct3",
            }),
        },
        0x73 => match raw >> 7 {
            0 => d(Op::Ecall, 0, 0, 0, 0),
            0x2000 => d(Op::Ebreak, 0, 0, 0, 0),
            _ => Err(DecodeError {
                raw,
                reason: "unsupported SYSTEM instruction (no CSRs, no privileged ops)",
            }),
        },
        _ => Err(DecodeError {
            raw,
            reason: "unknown opcode",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decodes_hand_encoded_forms() {
        // addi x5, x6, -7
        let d = decode(asm::addi(5, 6, -7)).unwrap();
        assert_eq!(
            d,
            Decoded {
                op: Op::Addi,
                rd: 5,
                rs1: 6,
                rs2: 0,
                imm: -7
            }
        );
        // beq x1, x2, -8 (backwards)
        let d = decode(asm::beq(1, 2, -8)).unwrap();
        assert_eq!(d.op, Op::Beq);
        assert_eq!(d.imm, -8);
        // jal x1, +2048
        let d = decode(asm::jal(1, 2048)).unwrap();
        assert_eq!(d.op, Op::Jal);
        assert_eq!(d.imm, 2048);
        // mul x3, x4, x5
        let d = decode(asm::mul(3, 4, 5)).unwrap();
        assert_eq!(
            (d.op, d.rd, d.rs1, d.rs2),
            (Op::Mul, 3, 4, 5),
            "M extension"
        );
        // lui x7, 0xabcde000
        let d = decode(asm::lui(7, 0xabcde)).unwrap();
        assert_eq!(d.op, Op::Lui);
        assert_eq!(d.imm as u32, 0xabcd_e000);
        // srai x2, x3, 9
        let d = decode(asm::srai(2, 3, 9)).unwrap();
        assert_eq!((d.op, d.imm), (Op::Srai, 9));
        assert_eq!(decode(asm::ecall()).unwrap().op, Op::Ecall);
    }

    #[test]
    fn negative_immediates_sign_extend() {
        let d = decode(asm::sw(2, 8, -12)).unwrap();
        assert_eq!(d.op, Op::Sw);
        assert_eq!(d.imm, -12);
        let d = decode(asm::lw(9, 2, -4)).unwrap();
        assert_eq!(d.imm, -4);
    }

    #[test]
    fn rejects_compressed_and_unknown() {
        assert!(decode(0x0000).is_err(), "all-zero word");
        assert!(decode(0x4601).is_err(), "RVC encoding");
        assert!(decode(0x7f).is_err() || decode(0x7f).is_ok());
        let e = decode(0x0000_0001).unwrap_err();
        assert!(e.to_string().contains("compressed"));
    }
}
