//! Minimal ELF32 executable parser — exactly the subset the front end
//! needs: validate the identity bytes, find the entry point, and collect
//! the `PT_LOAD` program segments. No section headers, no relocation, no
//! dynamic linking; statically linked RV32 executables (what a
//! `riscv32-unknown-elf` toolchain or our vendored generator produces) are
//! the supported input, and everything else fails with a typed error.

use std::fmt;

/// ELF magic: `0x7f 'E' 'L' 'F'`.
const ELF_MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];
/// `EI_CLASS` value for 32-bit objects.
const ELFCLASS32: u8 = 1;
/// `EI_DATA` value for little-endian objects.
const ELFDATA2LSB: u8 = 1;
/// `e_type` for executables.
const ET_EXEC: u16 = 2;
/// `e_machine` for RISC-V.
const EM_RISCV: u16 = 243;
/// `p_type` for loadable segments.
const PT_LOAD: u32 = 1;

/// Why an ELF image was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The file is shorter than the structure being read.
    Truncated {
        /// What was being read when the file ran out.
        what: &'static str,
    },
    /// The first four bytes are not the ELF magic.
    BadMagic,
    /// `EI_CLASS` is not ELF32 (64-bit binaries are not supported).
    NotClass32,
    /// `EI_DATA` is not little-endian.
    NotLittleEndian,
    /// `e_type` is not `ET_EXEC` (relocatable/shared objects unsupported).
    NotExecutable(u16),
    /// `e_machine` is not RISC-V.
    NotRiscv(u16),
    /// No `PT_LOAD` segment exists; nothing to execute.
    NoLoadSegments,
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { what } => write!(f, "truncated ELF: {what} out of range"),
            ElfError::BadMagic => write!(f, "not an ELF file (bad magic)"),
            ElfError::NotClass32 => write!(f, "not a 32-bit ELF (only RV32 is supported)"),
            ElfError::NotLittleEndian => write!(f, "not a little-endian ELF"),
            ElfError::NotExecutable(t) => {
                write!(f, "not an executable (e_type {t}, expected ET_EXEC)")
            }
            ElfError::NotRiscv(m) => write!(f, "not a RISC-V binary (e_machine {m})"),
            ElfError::NoLoadSegments => write!(f, "no PT_LOAD segments"),
        }
    }
}

impl std::error::Error for ElfError {}

/// One loadable program segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u32,
    /// File-backed bytes (length `p_filesz`).
    pub data: Vec<u8>,
    /// In-memory size (`p_memsz >= data.len()`; the excess is zero-filled
    /// BSS).
    pub memsz: u32,
    /// `p_flags` permission bits (unused by the interpreter, kept for
    /// inspection).
    pub flags: u32,
}

/// A parsed RV32 executable: entry point plus its loadable segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElfImage {
    /// Program entry point (`e_entry`).
    pub entry: u32,
    /// Loadable segments in file order.
    pub segments: Vec<Segment>,
}

fn u16_at(b: &[u8], off: usize, what: &'static str) -> Result<u16, ElfError> {
    b.get(off..off + 2)
        .map(|s| u16::from_le_bytes([s[0], s[1]]))
        .ok_or(ElfError::Truncated { what })
}

fn u32_at(b: &[u8], off: usize, what: &'static str) -> Result<u32, ElfError> {
    b.get(off..off + 4)
        .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
        .ok_or(ElfError::Truncated { what })
}

/// Parses an ELF32 little-endian RISC-V executable image.
///
/// # Errors
///
/// Returns an [`ElfError`] naming the first identity or structural check
/// that failed; a malformed file never panics.
pub fn parse_elf32(bytes: &[u8]) -> Result<ElfImage, ElfError> {
    let ident = bytes.get(0..16).ok_or(ElfError::Truncated {
        what: "ELF identity",
    })?;
    if ident[0..4] != ELF_MAGIC {
        return Err(ElfError::BadMagic);
    }
    if ident[4] != ELFCLASS32 {
        return Err(ElfError::NotClass32);
    }
    if ident[5] != ELFDATA2LSB {
        return Err(ElfError::NotLittleEndian);
    }
    let e_type = u16_at(bytes, 16, "e_type")?;
    if e_type != ET_EXEC {
        return Err(ElfError::NotExecutable(e_type));
    }
    let e_machine = u16_at(bytes, 18, "e_machine")?;
    if e_machine != EM_RISCV {
        return Err(ElfError::NotRiscv(e_machine));
    }
    let entry = u32_at(bytes, 24, "e_entry")?;
    let phoff = u32_at(bytes, 28, "e_phoff")? as usize;
    let phentsize = u16_at(bytes, 42, "e_phentsize")? as usize;
    let phnum = u16_at(bytes, 44, "e_phnum")? as usize;
    if phentsize < 32 {
        return Err(ElfError::Truncated {
            what: "program header entry",
        });
    }
    let mut segments = Vec::new();
    for i in 0..phnum {
        let ph = phoff + i * phentsize;
        let p_type = u32_at(bytes, ph, "p_type")?;
        if p_type != PT_LOAD {
            continue;
        }
        let p_offset = u32_at(bytes, ph + 4, "p_offset")? as usize;
        let p_vaddr = u32_at(bytes, ph + 8, "p_vaddr")?;
        let p_filesz = u32_at(bytes, ph + 16, "p_filesz")? as usize;
        let p_memsz = u32_at(bytes, ph + 20, "p_memsz")?;
        let p_flags = u32_at(bytes, ph + 24, "p_flags")?;
        let data = bytes
            .get(p_offset..p_offset + p_filesz)
            .ok_or(ElfError::Truncated {
                what: "segment data",
            })?
            .to_vec();
        if (p_memsz as usize) < data.len() {
            return Err(ElfError::Truncated {
                what: "p_memsz smaller than p_filesz",
            });
        }
        segments.push(Segment {
            vaddr: p_vaddr,
            data,
            memsz: p_memsz,
            flags: p_flags,
        });
    }
    if segments.is_empty() {
        return Err(ElfError::NoLoadSegments);
    }
    Ok(ElfImage { entry, segments })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::build_elf;

    #[test]
    fn rejects_garbage_with_typed_errors() {
        assert_eq!(
            parse_elf32(b"hi").unwrap_err(),
            ElfError::Truncated {
                what: "ELF identity"
            }
        );
        assert_eq!(parse_elf32(&[0u8; 64]).unwrap_err(), ElfError::BadMagic);
        let mut almost = vec![0u8; 64];
        almost[0..4].copy_from_slice(&ELF_MAGIC);
        almost[4] = 2; // ELFCLASS64
        assert_eq!(parse_elf32(&almost).unwrap_err(), ElfError::NotClass32);
    }

    #[test]
    fn round_trips_built_images() {
        let code: Vec<u8> = vec![0x13, 0x00, 0x00, 0x00]; // nop
        let elf = build_elf(0x1000, &[(0x1000, &code, 0x10, 5)]);
        let img = parse_elf32(&elf).expect("valid image");
        assert_eq!(img.entry, 0x1000);
        assert_eq!(img.segments.len(), 1);
        assert_eq!(img.segments[0].vaddr, 0x1000);
        assert_eq!(img.segments[0].data, code);
        assert_eq!(img.segments[0].memsz, 0x10, "BSS tail preserved");
    }

    #[test]
    fn truncated_segment_data_is_typed() {
        let code: Vec<u8> = vec![0x13, 0x00, 0x00, 0x00];
        let mut elf = build_elf(0x1000, &[(0x1000, &code, 4, 5)]);
        elf.truncate(elf.len() - 2);
        assert_eq!(
            parse_elf32(&elf).unwrap_err(),
            ElfError::Truncated {
                what: "segment data"
            }
        );
    }
}
