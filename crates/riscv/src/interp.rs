//! Deterministic RV32IM functional interpreter.
//!
//! Executes a parsed [`ElfImage`] instruction by instruction and records
//! each retired instruction as a [`concorde_trace::Instruction`], giving
//! real programs the exact signal set the synthetic generator produces:
//! op class, register dependencies, effective memory addresses, and branch
//! outcomes. The interpreter is a pure function of the binary plus the
//! instruction budget — no wall clock, no randomness, no host state — so
//! the same ELF always yields a bitwise-identical trace, which the
//! serving-layer caches and the end-to-end tests rely on.
//!
//! Semantics notes:
//!
//! - `x0` is hard-wired zero. It never appears as a trace operand
//!   (sources/destinations that name `x0` map to `None`), and an ALU op
//!   whose destination is `x0` retires as [`OpClass::Nop`] — matching how
//!   a rename stage discards it.
//! - A minimal syscall layer recognizes the common newlib/Linux RV32
//!   conventions: `a7 == 93` (exit, `a0` is the status) halts execution,
//!   `a7 == 64` (write) captures up to [`STDOUT_CAP`] bytes; anything
//!   else returns 0 in `a0`. Other `SYSTEM` encodings halt with a decode
//!   error rather than silently misexecuting.
//! - Division follows the RISC-V spec: divide-by-zero yields `-1`
//!   (`u32::MAX` unsigned) with remainder `rs1`; signed overflow
//!   (`i32::MIN / -1`) yields `i32::MIN` with remainder 0.

use concorde_trace::{BranchKind, Instruction, OpClass};

use crate::decode::{decode, DecodeError, Op};
use crate::elf::ElfImage;
use crate::mem::SparseMem;

/// Initial stack pointer (`x2`). Below the 2 GiB line so stack addresses
/// stay positive as `i32`, far above any segment our test programs load.
pub const STACK_TOP: u32 = 0x7fff_f000;

/// Maximum bytes retained from `write` syscalls.
pub const STDOUT_CAP: usize = 4096;

/// Default instruction budget when none is given (`2^20`).
pub const DEFAULT_MAX_INSTS: u64 = 1 << 20;

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HaltReason {
    /// The program exited via `ecall` with `a7 == 93`; payload is `a0`.
    Exited(u32),
    /// The instruction budget was exhausted before the program exited.
    BudgetExhausted,
    /// `ebreak` was executed.
    Breakpoint,
    /// The word at `pc` did not decode as RV32IM.
    DecodeError {
        /// PC of the offending word.
        pc: u32,
        /// The decoder's rejection.
        err: DecodeError,
    },
}

impl HaltReason {
    /// True when the program ran to a voluntary exit.
    pub fn is_clean_exit(&self) -> bool {
        matches!(self, HaltReason::Exited(_))
    }
}

/// Result of executing a binary: the retired-instruction trace plus final
/// machine state worth inspecting.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Every retired instruction, in program order.
    pub trace: Vec<Instruction>,
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Captured `write` syscall bytes (truncated at [`STDOUT_CAP`]).
    pub stdout: Vec<u8>,
    /// Final register file (`x0..x31`).
    pub regs: [u32; 32],
    /// Resident data pages at halt (footprint indicator).
    pub resident_pages: usize,
}

impl Execution {
    /// Exit status if the program exited cleanly.
    pub fn exit_code(&self) -> Option<u32> {
        match self.halt {
            HaltReason::Exited(code) => Some(code),
            _ => None,
        }
    }

    /// FNV-1a hash over the full instruction stream; two executions of the
    /// same binary must produce equal hashes (the determinism contract).
    pub fn trace_hash(&self) -> u64 {
        trace_fnv(&self.trace)
    }
}

/// FNV-1a over every field of every instruction.
pub fn trace_fnv(trace: &[Instruction]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= byte as u64;
        h = h.wrapping_mul(PRIME);
    };
    for ins in trace {
        for b in ins.pc.to_le_bytes() {
            eat(b);
        }
        eat(op_tag(ins.op));
        eat(ins.srcs[0].map_or(0xff, |r| r));
        eat(ins.srcs[1].map_or(0xff, |r| r));
        eat(ins.dst.map_or(0xff, |r| r));
        for b in ins.mem_addr.to_le_bytes() {
            eat(b);
        }
        eat(ins.taken as u8);
        for b in ins.target.to_le_bytes() {
            eat(b);
        }
    }
    h
}

fn op_tag(op: OpClass) -> u8 {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::IntDiv => 2,
        OpClass::FpAlu => 3,
        OpClass::FpMul => 4,
        OpClass::FpDiv => 5,
        OpClass::Load => 6,
        OpClass::Store => 7,
        OpClass::Branch(BranchKind::DirectUncond) => 8,
        OpClass::Branch(BranchKind::DirectCond) => 9,
        OpClass::Branch(BranchKind::Indirect) => 10,
        OpClass::Isb => 11,
        OpClass::Nop => 12,
    }
}

/// Maps an architectural register to a trace operand (`x0` → `None`).
#[inline]
fn reg_operand(r: u8) -> Option<u8> {
    if r == 0 {
        None
    } else {
        Some(r)
    }
}

/// Executes `image` for at most `max_insts` retired instructions.
///
/// This is a pure function: equal `(image, max_insts)` inputs produce
/// field-identical [`Execution`] values on every run and every thread.
pub fn execute(image: &ElfImage, max_insts: u64) -> Execution {
    let mut mem = SparseMem::from_image(image);
    let mut regs = [0u32; 32];
    regs[2] = STACK_TOP; // sp
    let mut pc: u32 = image.entry;
    let mut trace = Vec::new();
    let mut stdout = Vec::new();

    let halt = loop {
        if trace.len() as u64 >= max_insts {
            break HaltReason::BudgetExhausted;
        }
        let raw = mem.read_u32(pc);
        let d = match decode(raw) {
            Ok(d) => d,
            Err(err) => break HaltReason::DecodeError { pc, err },
        };
        let pc64 = pc as u64;
        let rs1v = regs[d.rs1 as usize];
        let rs2v = regs[d.rs2 as usize];
        let mut next_pc = pc.wrapping_add(4);
        let mut wb: Option<(u8, u32)> = None;

        // Classify as the trace will see it: an ALU-class op whose
        // destination is x0 retires as a Nop (renamed away), and x0
        // operands vanish from the dependence edges.
        let alu_class = |class: OpClass, rd: u8| if rd == 0 { OpClass::Nop } else { class };

        let ins = match d.op {
            Op::Lui => {
                wb = Some((d.rd, d.imm as u32));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntAlu, d.rd),
                    [None, None],
                    reg_operand(d.rd),
                )
            }
            Op::Auipc => {
                wb = Some((d.rd, pc.wrapping_add(d.imm as u32)));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntAlu, d.rd),
                    [None, None],
                    reg_operand(d.rd),
                )
            }
            Op::Jal => {
                wb = Some((d.rd, next_pc));
                next_pc = pc.wrapping_add(d.imm as u32);
                Instruction {
                    pc: pc64,
                    op: OpClass::Branch(BranchKind::DirectUncond),
                    srcs: [None, None],
                    dst: reg_operand(d.rd),
                    mem_addr: 0,
                    taken: true,
                    target: next_pc as u64,
                }
            }
            Op::Jalr => {
                wb = Some((d.rd, next_pc));
                next_pc = rs1v.wrapping_add(d.imm as u32) & !1;
                Instruction {
                    pc: pc64,
                    op: OpClass::Branch(BranchKind::Indirect),
                    srcs: [reg_operand(d.rs1), None],
                    dst: reg_operand(d.rd),
                    mem_addr: 0,
                    taken: true,
                    target: next_pc as u64,
                }
            }
            Op::Beq | Op::Bne | Op::Blt | Op::Bge | Op::Bltu | Op::Bgeu => {
                let taken = match d.op {
                    Op::Beq => rs1v == rs2v,
                    Op::Bne => rs1v != rs2v,
                    Op::Blt => (rs1v as i32) < (rs2v as i32),
                    Op::Bge => (rs1v as i32) >= (rs2v as i32),
                    Op::Bltu => rs1v < rs2v,
                    Op::Bgeu => rs1v >= rs2v,
                    _ => unreachable!(),
                };
                let target = pc.wrapping_add(d.imm as u32);
                if taken {
                    next_pc = target;
                }
                Instruction::branch(
                    pc64,
                    BranchKind::DirectCond,
                    [reg_operand(d.rs1), reg_operand(d.rs2)],
                    taken,
                    if taken { target as u64 } else { 0 },
                )
            }
            Op::Lb | Op::Lh | Op::Lw | Op::Lbu | Op::Lhu => {
                let addr = rs1v.wrapping_add(d.imm as u32);
                let val = match d.op {
                    Op::Lb => mem.read_u8(addr) as i8 as i32 as u32,
                    Op::Lbu => mem.read_u8(addr) as u32,
                    Op::Lh => mem.read_u16(addr) as i16 as i32 as u32,
                    Op::Lhu => mem.read_u16(addr) as u32,
                    Op::Lw => mem.read_u32(addr),
                    _ => unreachable!(),
                };
                wb = Some((d.rd, val));
                Instruction::load(
                    pc64,
                    addr as u64,
                    [reg_operand(d.rs1), None],
                    reg_operand(d.rd),
                )
            }
            Op::Sb | Op::Sh | Op::Sw => {
                let addr = rs1v.wrapping_add(d.imm as u32);
                match d.op {
                    Op::Sb => mem.write_u8(addr, rs2v as u8),
                    Op::Sh => mem.write_u16(addr, rs2v as u16),
                    Op::Sw => mem.write_u32(addr, rs2v),
                    _ => unreachable!(),
                }
                Instruction::store(pc64, addr as u64, [reg_operand(d.rs1), reg_operand(d.rs2)])
            }
            Op::Addi
            | Op::Slti
            | Op::Sltiu
            | Op::Xori
            | Op::Ori
            | Op::Andi
            | Op::Slli
            | Op::Srli
            | Op::Srai => {
                let val = match d.op {
                    Op::Addi => rs1v.wrapping_add(d.imm as u32),
                    Op::Slti => ((rs1v as i32) < d.imm) as u32,
                    Op::Sltiu => (rs1v < d.imm as u32) as u32,
                    Op::Xori => rs1v ^ d.imm as u32,
                    Op::Ori => rs1v | d.imm as u32,
                    Op::Andi => rs1v & d.imm as u32,
                    Op::Slli => rs1v << (d.imm & 0x1f),
                    Op::Srli => rs1v >> (d.imm & 0x1f),
                    Op::Srai => ((rs1v as i32) >> (d.imm & 0x1f)) as u32,
                    _ => unreachable!(),
                };
                wb = Some((d.rd, val));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntAlu, d.rd),
                    [reg_operand(d.rs1), None],
                    reg_operand(d.rd),
                )
            }
            Op::Add
            | Op::Sub
            | Op::Sll
            | Op::Slt
            | Op::Sltu
            | Op::Xor
            | Op::Srl
            | Op::Sra
            | Op::Or
            | Op::And => {
                let val = match d.op {
                    Op::Add => rs1v.wrapping_add(rs2v),
                    Op::Sub => rs1v.wrapping_sub(rs2v),
                    Op::Sll => rs1v << (rs2v & 0x1f),
                    Op::Slt => ((rs1v as i32) < (rs2v as i32)) as u32,
                    Op::Sltu => (rs1v < rs2v) as u32,
                    Op::Xor => rs1v ^ rs2v,
                    Op::Srl => rs1v >> (rs2v & 0x1f),
                    Op::Sra => ((rs1v as i32) >> (rs2v & 0x1f)) as u32,
                    Op::Or => rs1v | rs2v,
                    Op::And => rs1v & rs2v,
                    _ => unreachable!(),
                };
                wb = Some((d.rd, val));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntAlu, d.rd),
                    [reg_operand(d.rs1), reg_operand(d.rs2)],
                    reg_operand(d.rd),
                )
            }
            Op::Mul | Op::Mulh | Op::Mulhsu | Op::Mulhu => {
                let val = match d.op {
                    Op::Mul => rs1v.wrapping_mul(rs2v),
                    Op::Mulh => (((rs1v as i32 as i64) * (rs2v as i32 as i64)) >> 32) as u32,
                    Op::Mulhsu => (((rs1v as i32 as i64) * (rs2v as i64)) >> 32) as u32,
                    Op::Mulhu => (((rs1v as u64) * (rs2v as u64)) >> 32) as u32,
                    _ => unreachable!(),
                };
                wb = Some((d.rd, val));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntMul, d.rd),
                    [reg_operand(d.rs1), reg_operand(d.rs2)],
                    reg_operand(d.rd),
                )
            }
            Op::Div | Op::Divu | Op::Rem | Op::Remu => {
                let val = match d.op {
                    Op::Div => {
                        if rs2v == 0 {
                            u32::MAX
                        } else if rs1v as i32 == i32::MIN && rs2v as i32 == -1 {
                            i32::MIN as u32
                        } else {
                            ((rs1v as i32) / (rs2v as i32)) as u32
                        }
                    }
                    Op::Divu => rs1v.checked_div(rs2v).unwrap_or(u32::MAX),
                    Op::Rem => {
                        if rs2v == 0 {
                            rs1v
                        } else if rs1v as i32 == i32::MIN && rs2v as i32 == -1 {
                            0
                        } else {
                            ((rs1v as i32) % (rs2v as i32)) as u32
                        }
                    }
                    Op::Remu => rs1v.checked_rem(rs2v).unwrap_or(rs1v),
                    _ => unreachable!(),
                };
                wb = Some((d.rd, val));
                Instruction::compute(
                    pc64,
                    alu_class(OpClass::IntDiv, d.rd),
                    [reg_operand(d.rs1), reg_operand(d.rs2)],
                    reg_operand(d.rd),
                )
            }
            Op::Fence | Op::FenceI => Instruction::compute(pc64, OpClass::Isb, [None, None], None),
            Op::Ecall => {
                let a7 = regs[17];
                let a0 = regs[10];
                match a7 {
                    93 => {
                        // exit reads a7/a0 and writes nothing: no dst.
                        trace.push(Instruction::compute(
                            pc64,
                            OpClass::Isb,
                            [Some(17), Some(10)],
                            None,
                        ));
                        break HaltReason::Exited(a0);
                    }
                    64 => {
                        // write(fd=a0, buf=a1, len=a2): capture the bytes.
                        let buf = regs[11];
                        let len = regs[12] as usize;
                        for i in 0..len {
                            if stdout.len() >= STDOUT_CAP {
                                break;
                            }
                            stdout.push(mem.read_u8(buf.wrapping_add(i as u32)));
                        }
                        wb = Some((10, len as u32));
                    }
                    _ => {
                        wb = Some((10, 0));
                    }
                }
                // Non-exit syscalls architecturally write a0 (`write`
                // returns the length, unknown syscalls return 0), so the
                // trace record carries the a0 def — without it, later
                // readers of a0 would appear to depend on the pre-ecall
                // producer in the dependence graph.
                Instruction::compute(pc64, OpClass::Isb, [Some(17), Some(10)], Some(10))
            }
            Op::Ebreak => {
                trace.push(Instruction::compute(pc64, OpClass::Isb, [None, None], None));
                break HaltReason::Breakpoint;
            }
        };

        trace.push(ins);
        if let Some((rd, val)) = wb {
            if rd != 0 {
                regs[rd as usize] = val;
            }
        }
        pc = next_pc;
    };

    Execution {
        trace,
        halt,
        stdout,
        regs,
        resident_pages: mem.resident_pages(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::{self, Prog};
    use crate::elf::parse_elf32;

    fn run_words(words: &[u32], budget: u64) -> Execution {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let elf = asm::build_elf(0x1000, &[(0x1000, &bytes, bytes.len() as u32, 5)]);
        let img = parse_elf32(&elf).unwrap();
        execute(&img, budget)
    }

    fn exit_seq(code: i32) -> Vec<u32> {
        let mut v = Vec::new();
        v.extend_from_slice(&asm::li(17, 93));
        v.extend_from_slice(&asm::li(10, code));
        v.push(asm::ecall());
        v
    }

    #[test]
    fn arith_loop_retires_expected_count_and_exit() {
        // x5 = 10; loop: x6 += x5; x5 -= 1; bne x5, x0, loop; exit(x6)
        let mut p = Prog::new();
        p.push_all(&asm::li(5, 10));
        let top = p.label();
        p.bind(top);
        p.push(asm::add(6, 6, 5));
        p.push(asm::addi(5, 5, -1));
        p.branch(1, 5, 0, top);
        p.push_all(&asm::li(17, 93));
        p.push(asm::add(10, 0, 6));
        p.push(asm::ecall());
        let e = run_words(&p.assemble(), 1_000);
        assert_eq!(e.exit_code(), Some(55), "sum 1..=10");
        // 2 (li) + 10*3 (loop) + 2 (li) + 1 (mv) + 1 (ecall) = 36.
        assert_eq!(e.trace.len(), 36);
        // Branch outcomes: taken 9 times, not-taken once.
        let taken = e
            .trace
            .iter()
            .filter(|i| i.op == OpClass::Branch(BranchKind::DirectCond) && i.taken)
            .count();
        assert_eq!(taken, 9);
    }

    #[test]
    fn loads_stores_and_effective_addresses() {
        // sw x5, 8(x2); lw x6, 8(x2); exit(x6)
        let mut v = Vec::new();
        v.extend_from_slice(&asm::li(5, 1234));
        v.push(asm::sw(2, 5, 8));
        v.push(asm::lw(6, 2, 8));
        v.extend_from_slice(&asm::li(17, 93));
        v.push(asm::add(10, 0, 6));
        v.push(asm::ecall());
        let e = run_words(&v, 100);
        assert_eq!(e.exit_code(), Some(1234));
        let store = e.trace.iter().find(|i| i.op.is_store()).unwrap();
        let load = e.trace.iter().find(|i| i.op.is_load()).unwrap();
        assert_eq!(store.mem_addr, (STACK_TOP + 8) as u64);
        assert_eq!(store.mem_addr, load.mem_addr);
        assert_eq!(store.srcs, [Some(2), Some(5)]);
        assert_eq!(load.dst, Some(6));
    }

    #[test]
    fn division_edge_cases_follow_spec() {
        // div x5, x6, x0-div... build: x6=7, x7=0, div x5,x6,x7 (by zero),
        // rem x28,x6,x7, then exit(x5 & 0xff + ...). Simpler: check regs.
        let mut v = Vec::new();
        v.extend_from_slice(&asm::li(6, 7));
        v.extend_from_slice(&asm::li(7, 0));
        v.push(asm::div(5, 6, 7)); // -> -1
        v.push(asm::rem(28, 6, 7)); // -> 7
        v.extend_from_slice(&asm::li(6, i32::MIN));
        v.extend_from_slice(&asm::li(7, -1));
        v.push(asm::div(29, 6, 7)); // -> i32::MIN
        v.push(asm::rem(30, 6, 7)); // -> 0
        v.extend_from_slice(&exit_seq(0));
        let e = run_words(&v, 100);
        assert_eq!(e.regs[5], u32::MAX);
        assert_eq!(e.regs[28], 7);
        assert_eq!(e.regs[29], i32::MIN as u32);
        assert_eq!(e.regs[30], 0);
        let divs = e.trace.iter().filter(|i| i.op == OpClass::IntDiv).count();
        assert_eq!(divs, 4);
    }

    #[test]
    fn x0_destination_retires_as_nop() {
        let mut v = vec![asm::nop(), asm::add(0, 5, 6)];
        v.extend_from_slice(&exit_seq(0));
        let e = run_words(&v, 100);
        assert_eq!(e.trace[0].op, OpClass::Nop);
        assert_eq!(e.trace[0].srcs, [None, None], "x0 sources vanish");
        assert_eq!(e.trace[1].op, OpClass::Nop, "rd=x0 ALU op is a Nop");
        assert_eq!(e.trace[1].dst, None);
    }

    #[test]
    fn call_and_return_emit_uncond_and_indirect_branches() {
        let mut p = Prog::new();
        let f = p.label();
        p.jal(1, f); // call
        p.push_all(&asm::li(17, 93));
        p.push(asm::add(10, 0, 5));
        p.push(asm::ecall());
        p.bind(f);
        p.push_all(&asm::li(5, 42));
        p.push(asm::jalr(0, 1, 0)); // ret
        let e = run_words(&p.assemble(), 100);
        assert_eq!(e.exit_code(), Some(42));
        let call = &e.trace[0];
        assert_eq!(call.op, OpClass::Branch(BranchKind::DirectUncond));
        assert!(call.taken);
        assert_eq!(call.dst, Some(1), "link register is a real dest");
        let ret = e
            .trace
            .iter()
            .find(|i| i.op == OpClass::Branch(BranchKind::Indirect))
            .unwrap();
        assert_eq!(ret.srcs[0], Some(1));
        assert_eq!(ret.target, 0x1004, "returns past the call");
    }

    #[test]
    fn budget_exhaustion_and_decode_errors_halt() {
        // Infinite loop: jal x0, 0 (jump to self).
        let e = run_words(&[asm::jal(0, 0)], 10);
        assert_eq!(e.halt, HaltReason::BudgetExhausted);
        assert_eq!(e.trace.len(), 10);
        // Falling off the end into zeroed memory is a decode error.
        let e = run_words(&[asm::nop()], 10);
        assert!(matches!(e.halt, HaltReason::DecodeError { pc: 0x1004, .. }));
    }

    #[test]
    fn write_syscall_captures_stdout() {
        // Store "ok" at sp, write(1, sp, 2), exit(0).
        let mut v = Vec::new();
        v.extend_from_slice(&asm::li(5, 0x6b6f)); // "ok" little-endian
        v.push(asm::sw(2, 5, 0));
        v.extend_from_slice(&asm::li(17, 64));
        v.extend_from_slice(&asm::li(10, 1));
        v.push(asm::add(11, 0, 2));
        v.extend_from_slice(&asm::li(12, 2));
        v.push(asm::ecall());
        v.extend_from_slice(&exit_seq(0));
        let e = run_words(&v, 100);
        assert_eq!(e.exit_code(), Some(0));
        assert_eq!(e.stdout, b"ok");
        // Dependence edges: the write ecall defines a0 (its return value),
        // the exit ecall defines nothing.
        let ecalls: Vec<_> = e.trace.iter().filter(|i| i.op == OpClass::Isb).collect();
        assert_eq!(ecalls.len(), 2);
        assert_eq!(ecalls[0].srcs, [Some(17), Some(10)]);
        assert_eq!(ecalls[0].dst, Some(10), "write returns its length in a0");
        assert_eq!(ecalls[1].dst, None, "exit writes no register");
    }

    #[test]
    fn unknown_syscall_returns_zero_and_defines_a0() {
        // a7 = 1234 (unrecognized), a0 = 77; after the ecall a0 must be 0
        // and the trace record must carry the a0 def.
        let mut v = Vec::new();
        v.extend_from_slice(&asm::li(17, 1234));
        v.extend_from_slice(&asm::li(10, 77));
        v.push(asm::ecall());
        v.push(asm::add(6, 0, 10)); // reads the post-ecall a0
        v.extend_from_slice(&exit_seq(0));
        let e = run_words(&v, 100);
        assert_eq!(e.exit_code(), Some(0));
        let ecall = e.trace.iter().find(|i| i.op == OpClass::Isb).unwrap();
        assert_eq!(ecall.dst, Some(10));
        assert_eq!(e.regs[6], 0, "the reader saw the syscall's a0, not 77");
    }

    #[test]
    fn execution_is_bitwise_deterministic() {
        let mut p = Prog::new();
        p.push_all(&asm::li(5, 1000));
        let top = p.label();
        p.bind(top);
        p.push(asm::mul(6, 6, 5));
        p.push(asm::addi(6, 6, 13));
        p.push(asm::addi(5, 5, -1));
        p.branch(1, 5, 0, top);
        p.push_all(&exit_seq(0));
        let words = p.assemble();
        let a = run_words(&words, 10_000);
        let b = run_words(&words, 10_000);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.trace_hash(), b.trace_hash());
        assert_eq!(a.regs, b.regs);
    }
}
