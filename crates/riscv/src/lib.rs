//! # concorde-riscv
//!
//! Real-program workload ingestion: load RV32IM ELF executables, run them
//! under a minimal deterministic functional interpreter, and expose the
//! recorded instruction stream as a Concorde workload. This is the bridge
//! from actual binaries to the trace contract
//! ([`concorde_trace::Instruction`]) that the analytic models, the
//! featurizer, and the serving stack already consume — the model side never
//! learns whether a trace came from the synthetic generator or a real
//! program.
//!
//! Pipeline: [`elf::parse_elf32`] → [`mem::SparseMem`] → [`interp::execute`]
//! → [`provider::RiscvWorkload`] (a [`concorde_trace::TraceProvider`]).
//! Calling [`install`] registers the `riscv:` id prefix with the dynamic
//! workload registry, after which `riscv:<path>[@<max-insts>]` is accepted
//! anywhere a suite id like `"S5"` is today — the CLI, `precompute`, and
//! the serve wire protocol.
//!
//! Determinism contract: [`interp::execute`] is a pure function of the
//! binary bytes and the instruction budget. The same ELF always produces a
//! bitwise-identical trace (pinned by [`interp::trace_fnv`] hashes in the
//! tests), so cached feature stores and CPI predictions are stable across
//! runs, processes, and thread counts.
//!
//! Scope: RV32IM user-mode only — no compressed (RVC) encodings, no CSRs,
//! no floating point, no interrupts. Unsupported encodings halt execution
//! with a typed reason instead of misexecuting; see `README.md`
//! ("Workloads") for the full support matrix. The `asm`/`testdata` modules
//! are in-tree tooling that generate the vendored `riscv-testdata/`
//! binaries, since the container has no cross toolchain.

#![warn(missing_docs)]

pub mod asm;
pub mod decode;
pub mod elf;
pub mod interp;
pub mod mem;
pub mod provider;
pub mod testdata;

pub use elf::{parse_elf32, ElfError, ElfImage, Segment};
pub use interp::{execute, Execution, HaltReason, DEFAULT_MAX_INSTS, STACK_TOP};
pub use mem::SparseMem;
pub use provider::{install, parse_workload_id, resolve_riscv_id, RiscvWorkload};
