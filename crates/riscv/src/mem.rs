//! Flat sparse 32-bit memory image.
//!
//! The interpreter needs byte-addressable memory across a 4 GiB space where
//! a program touches a few hundred KiB: a page map keeps the footprint
//! proportional to what is actually written. Reads of unmapped memory
//! return zero (matching freshly-zeroed BSS semantics), writes allocate
//! their page on demand. All multi-byte accesses are little-endian and
//! tolerate page-crossing and misalignment (RV32 allows misaligned
//! loads/stores to be supported; handling them keeps real compiler output
//! running).

use std::collections::HashMap;

use crate::elf::ElfImage;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable memory backed by 4 KiB pages.
#[derive(Debug, Default, Clone)]
pub struct SparseMem {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMem {
    /// Empty memory; every byte reads as zero.
    pub fn new() -> Self {
        SparseMem::default()
    }

    /// Memory pre-loaded with an ELF image's segments (file bytes copied,
    /// BSS tails left as implicit zeros).
    pub fn from_image(image: &ElfImage) -> Self {
        let mut mem = SparseMem::new();
        for seg in &image.segments {
            for (i, b) in seg.data.iter().enumerate() {
                mem.write_u8(seg.vaddr.wrapping_add(i as u32), *b);
            }
        }
        mem
    }

    /// Number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte (0 when unmapped).
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Little-endian 16-bit read (page-crossing safe).
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Little-endian 16-bit write.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        let b = v.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Little-endian 32-bit read (page-crossing safe).
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Little-endian 32-bit write.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let b = v.to_le_bytes();
        for (i, byte) in b.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *byte);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_reads_zero_and_writes_allocate() {
        let mut m = SparseMem::new();
        assert_eq!(m.read_u32(0xdead_beef), 0);
        assert_eq!(m.resident_pages(), 0);
        m.write_u32(0x1000, 0x0102_0304);
        assert_eq!(m.read_u32(0x1000), 0x0102_0304);
        assert_eq!(m.read_u8(0x1000), 0x04, "little-endian layout");
        assert_eq!(m.read_u8(0x1003), 0x01);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn page_crossing_accesses_work() {
        let mut m = SparseMem::new();
        m.write_u32(0x1ffe, 0xaabb_ccdd);
        assert_eq!(m.read_u32(0x1ffe), 0xaabb_ccdd);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_u16(0x1fff), 0xbbcc);
    }
}
