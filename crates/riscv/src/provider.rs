//! [`TraceProvider`] bridge: executed ELF binaries as Concorde workloads.
//!
//! A [`RiscvWorkload`] runs a binary to completion (or budget) exactly once
//! at construction and serves trace regions out of the recorded instruction
//! stream. Workload ids have the form `riscv:<path>[@<max-insts>]` — the
//! optional suffix overrides the instruction budget, else the
//! `CONCORDE_RISCV_MAX_INSTS` environment variable, else
//! [`DEFAULT_MAX_INSTS`]. Because the id embeds both the path and the
//! budget, two different budgets are two different workloads and never
//! collide in the serving caches.

use std::sync::Arc;

use concorde_trace::{
    register_resolver, BranchProfile, CodeShape, DynTrace, MemProfile, OpMix, TraceProvider,
    WorkloadClass, WorkloadSpec,
};

use crate::elf::parse_elf32;
use crate::interp::{execute, Execution, DEFAULT_MAX_INSTS};

/// A fully-executed RV32IM binary serving its recorded trace.
pub struct RiscvWorkload {
    spec: WorkloadSpec,
    exec: Execution,
}

impl RiscvWorkload {
    /// Loads, parses, and executes `elf_bytes` under `max_insts`, recording
    /// the full instruction stream. `id` becomes the registry key and
    /// `name` the human-readable label.
    ///
    /// # Errors
    ///
    /// A malformed ELF, or a binary that halts on a decode error before
    /// retiring a single instruction (nothing to model).
    pub fn from_elf_bytes(
        id: &str,
        name: &str,
        elf_bytes: &[u8],
        max_insts: u64,
    ) -> Result<Self, String> {
        let image = parse_elf32(elf_bytes).map_err(|e| format!("{id}: {e}"))?;
        let exec = execute(&image, max_insts);
        if exec.trace.is_empty() {
            return Err(format!(
                "{id}: program retired no instructions ({:?})",
                exec.halt
            ));
        }
        // The seed is derived from the trace itself so anything keying on it
        // stays deterministic per-binary; the statistical profile fields are
        // metadata only — regions come from the recorded trace, never from
        // the synthetic generator.
        let wss = (exec.resident_pages as u64) * 4096;
        let spec = WorkloadSpec::single_phase(
            id,
            name,
            WorkloadClass::Real,
            exec.trace_hash(),
            1,
            exec.trace.len() as u64,
            OpMix::int_heavy(),
            MemProfile::resident(wss.max(4096)),
            BranchProfile::mixed(),
            CodeShape::kernel(),
        );
        Ok(RiscvWorkload { spec, exec })
    }

    /// The recorded execution (trace, halt reason, stdout, final registers).
    pub fn execution(&self) -> &Execution {
        &self.exec
    }
}

impl TraceProvider for RiscvWorkload {
    fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    fn materialize(&self, _trace_idx: u32, start: u64, len: usize) -> DynTrace {
        let n = self.exec.trace.len();
        let s = (start as usize).min(n);
        let e = s.saturating_add(len).min(n);
        DynTrace {
            workload_id: self.spec.id.clone(),
            trace_idx: 0,
            start,
            instrs: self.exec.trace[s..e].to_vec(),
        }
    }
}

/// Splits a `riscv:` workload id into `(path, max_insts)`.
///
/// Accepts `riscv:<path>` and `riscv:<path>@<max-insts>`; when no suffix is
/// present the budget comes from `CONCORDE_RISCV_MAX_INSTS` (if set and
/// parseable) or [`DEFAULT_MAX_INSTS`].
///
/// # Errors
///
/// An id without the `riscv:` prefix, an empty path, or an unparseable
/// budget suffix.
pub fn parse_workload_id(id: &str) -> Result<(&str, u64), String> {
    let rest = id
        .strip_prefix("riscv:")
        .ok_or_else(|| format!("`{id}` is not a riscv: workload id"))?;
    let (path, budget) = match rest.rsplit_once('@') {
        Some((path, suffix)) => {
            let n: u64 = suffix
                .parse()
                .map_err(|_| format!("`{id}`: budget suffix `{suffix}` is not a number"))?;
            if n == 0 {
                return Err(format!("`{id}`: instruction budget must be positive"));
            }
            (path, n)
        }
        None => (rest, env_budget()),
    };
    if path.is_empty() {
        return Err(format!("`{id}`: empty ELF path"));
    }
    Ok((path, budget))
}

fn env_budget() -> u64 {
    std::env::var("CONCORDE_RISCV_MAX_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_MAX_INSTS)
}

/// Builds the provider for one `riscv:` id by reading and executing the
/// named ELF file.
pub fn resolve_riscv_id(id: &str) -> Result<Arc<dyn TraceProvider>, String> {
    let (path, budget) = parse_workload_id(id)?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read ELF `{path}`: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    let wl = RiscvWorkload::from_elf_bytes(id, &name, &bytes, budget)?;
    Ok(Arc::new(wl))
}

/// Registers the `riscv:` prefix resolver with the dynamic workload
/// registry. Idempotent and cheap; every embedding that can receive a
/// `riscv:` workload id (CLI, server) calls this once at startup.
pub fn install() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        register_resolver("riscv:", resolve_riscv_id);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testdata;
    use concorde_trace::resolve_workload;

    #[test]
    fn id_parsing_accepts_paths_and_budgets() {
        assert_eq!(
            parse_workload_id("riscv:/tmp/a.elf").unwrap().0,
            "/tmp/a.elf"
        );
        assert_eq!(
            parse_workload_id("riscv:/tmp/a.elf@5000").unwrap(),
            ("/tmp/a.elf", 5000)
        );
        assert!(parse_workload_id("riscv:").is_err(), "empty path");
        assert!(parse_workload_id("riscv:/a@zero").is_err(), "bad budget");
        assert!(parse_workload_id("riscv:/a@0").is_err(), "zero budget");
        assert!(parse_workload_id("S5").is_err(), "not riscv:");
    }

    #[test]
    fn workload_from_bytes_serves_truncated_regions() {
        let elf = testdata::sum_loop();
        let wl = RiscvWorkload::from_elf_bytes("riscv:mem:sum", "sum", &elf, 1 << 20).unwrap();
        let n = wl.spec().trace_len;
        assert!(n > 100_000, "sum_loop retires >100k instructions");
        let head = wl.materialize(0, 0, 128);
        assert_eq!(head.instrs.len(), 128);
        let tail = wl.materialize(0, n - 10, 128);
        assert_eq!(tail.instrs.len(), 10, "truncates at trace end");
        assert_eq!(wl.materialize(0, n + 5, 16).instrs.len(), 0);
        // Same bytes, same budget → bitwise-identical regions.
        let wl2 = RiscvWorkload::from_elf_bytes("riscv:mem:sum", "sum", &elf, 1 << 20).unwrap();
        assert_eq!(head.instrs, wl2.materialize(0, 0, 128).instrs);
    }

    #[test]
    fn install_makes_file_ids_resolvable() {
        install();
        install(); // idempotent
        let dir = std::env::temp_dir().join("concorde-riscv-provider-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fib_calls.elf");
        std::fs::write(&path, testdata::fib_calls()).unwrap();
        let id = format!("riscv:{}@50000", path.display());
        let r = resolve_workload(&id).expect("resolves through registry");
        assert_eq!(r.spec().id, id);
        assert_eq!(r.spec().name, "fib_calls");
        assert_eq!(r.spec().trace_len, 50_000, "budget-capped");
        let a = r.materialize(0, 1000, 256);
        let b = r.materialize(0, 1000, 256);
        assert_eq!(a.instrs, b.instrs);
        // Missing files surface the resolver error, not a panic.
        let e = resolve_workload("riscv:/nonexistent/never.elf").unwrap_err();
        assert!(e.contains("cannot read ELF"), "{e}");
    }
}
