//! Byte-size parsing for operator flags (`--cache-bytes 512m`).
//!
//! `N[k|m|g]` (binary multiples, optional `b`/`ib` spellings). Parsing is
//! *typed*: zero budgets and multiplications that overflow `usize` are
//! rejected with a [`ByteSizeError`] naming the problem, instead of silently
//! wrapping into a tiny budget or accepting a cache that can never admit.

/// Why a byte-size string was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteSizeError {
    /// The numeric part is missing or not a decimal integer.
    NotANumber(String),
    /// The suffix is not one of `k`, `m`, `g` (or `b`/`kb`/`mb`/`gb`).
    BadSuffix(String),
    /// The value is zero — a cache that can never admit a store.
    Zero,
    /// `N × multiplier` does not fit in `usize` (e.g. `99999g` on 32-bit, or
    /// absurd values anywhere).
    Overflow(String),
}

impl std::fmt::Display for ByteSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByteSizeError::NotANumber(v) => write!(f, "`{v}` is not a byte size (expect N[k|m|g])"),
            ByteSizeError::BadSuffix(s) => {
                write!(f, "byte-size suffix `{s}` is not one of k, m, g")
            }
            ByteSizeError::Zero => write!(f, "byte size must be positive"),
            ByteSizeError::Overflow(v) => {
                write!(f, "byte size `{v}` overflows this platform's usize")
            }
        }
    }
}

impl std::error::Error for ByteSizeError {}

/// Parses a byte size with an optional binary `k`/`m`/`g` suffix
/// (e.g. `512m`, `2g`, `65536`).
///
/// # Errors
///
/// [`ByteSizeError`] on a malformed number, unknown suffix, zero, or a
/// value that overflows `usize`.
pub fn parse_byte_size(v: &str) -> Result<usize, ByteSizeError> {
    let digits = v.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    let suffix = &v[digits.len()..];
    let n: usize = digits
        .parse()
        .map_err(|_| ByteSizeError::NotANumber(v.to_string()))?;
    let mult: usize = match suffix.to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kb" | "kib" => 1 << 10,
        "m" | "mb" | "mib" => 1 << 20,
        "g" | "gb" | "gib" => 1 << 30,
        other => return Err(ByteSizeError::BadSuffix(other.to_string())),
    };
    let bytes = n
        .checked_mul(mult)
        .ok_or_else(|| ByteSizeError::Overflow(v.to_string()))?;
    if bytes == 0 {
        return Err(ByteSizeError::Zero);
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_suffixed_values_parse() {
        assert_eq!(parse_byte_size("1"), Ok(1));
        assert_eq!(parse_byte_size("4096"), Ok(4096));
        assert_eq!(parse_byte_size("4096b"), Ok(4096));
        assert_eq!(parse_byte_size("1k"), Ok(1 << 10));
        assert_eq!(parse_byte_size("2K"), Ok(2 << 10));
        assert_eq!(parse_byte_size("512m"), Ok(512 << 20));
        assert_eq!(parse_byte_size("512MB"), Ok(512 << 20));
        assert_eq!(parse_byte_size("3g"), Ok(3usize << 30));
        assert_eq!(parse_byte_size("1GiB"), Ok(1usize << 30));
    }

    #[test]
    fn zero_is_a_typed_error() {
        assert_eq!(parse_byte_size("0"), Err(ByteSizeError::Zero));
        assert_eq!(parse_byte_size("0k"), Err(ByteSizeError::Zero));
        assert_eq!(parse_byte_size("0g"), Err(ByteSizeError::Zero));
    }

    #[test]
    fn overflow_is_a_typed_error_not_a_wrap() {
        // usize::MAX / 2^30 < 2^34, so 99999999999g must overflow on 64-bit
        // (and `99999g` already overflows on 32-bit — keep both shapes).
        let huge = format!("{}g", usize::MAX / (1 << 30) + 1);
        assert!(matches!(
            parse_byte_size(&huge),
            Err(ByteSizeError::Overflow(_))
        ));
        if usize::BITS == 32 {
            assert!(matches!(
                parse_byte_size("99999g"),
                Err(ByteSizeError::Overflow(_))
            ));
        } else {
            assert_eq!(parse_byte_size("99999g"), Ok(99999usize << 30));
        }
        // A number too large for usize itself is NotANumber (parse failure),
        // still typed, never a silent wrap.
        assert!(matches!(
            parse_byte_size("999999999999999999999999"),
            Err(ByteSizeError::NotANumber(_))
        ));
    }

    #[test]
    fn garbage_is_rejected_with_the_right_variant() {
        for v in ["", "k", "12x", "12tb", "-5k", "1.5g", "0x10"] {
            let err = parse_byte_size(v).unwrap_err();
            assert!(
                matches!(
                    err,
                    ByteSizeError::NotANumber(_) | ByteSizeError::BadSuffix(_)
                ),
                "{v} → {err:?}"
            );
        }
        assert_eq!(
            parse_byte_size("12x"),
            Err(ByteSizeError::BadSuffix("x".to_string()))
        );
        assert!(parse_byte_size("12tb").is_err());
    }
}
