//! Clients: in-process [`Client`] (tests, benches, CLI) and [`TcpClient`]
//! speaking the line-delimited JSON protocol to a remote `concorde serve`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{PredictRequest, PredictResponse};
use crate::service::{submit, submit_many, submit_slot, Job, ServeError, Shared};
use crate::slots::SlotReceiver;

/// Caller-owned scratch for [`Client::predict_batch_into`]: holds the slot
/// receivers and job buffer between calls so a warm submit→receive round
/// trip allocates nothing. The fields are internal; `Default::default()` is
/// the whole API.
#[derive(Default)]
pub struct BatchScratch {
    rxs: Vec<SlotReceiver>,
    jobs: Vec<Job>,
}

/// In-process handle onto a running [`PredictionService`](crate::PredictionService).
///
/// Cloneable and `Send`; many threads can submit concurrently.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Client { shared }
    }

    /// The service internals, for the TCP front end's slot-based fast path.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Enqueues a request, returning the response receiver immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::ShuttingDown`] during teardown.
    pub fn submit(
        &self,
        req: PredictRequest,
    ) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
        submit(&self.shared, req)
    }

    /// Like [`Client::submit`], but waits out a full queue instead of
    /// failing (gentle backpressure; the wait is a short sleep-poll).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] during teardown.
    pub fn submit_blocking(
        &self,
        req: PredictRequest,
    ) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
        loop {
            match self.submit(req.clone()) {
                Ok(rx) => return Ok(rx),
                Err(ServeError::QueueFull) => std::thread::sleep(Duration::from_micros(200)),
                Err(e) => return Err(e),
            }
        }
    }

    /// Predicts one request, blocking for the response.
    ///
    /// For a `notify: true` request answered with a shed (`approx`)
    /// response, the follow-up `{"type":"upgrade"}` line arrives later on
    /// the same channel — use [`Client::submit`] and hold the receiver to
    /// observe it; this convenience call drops it.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`]; also [`ServeError::Disconnected`] if the
    /// service is torn down mid-flight.
    pub fn predict(&self, req: PredictRequest) -> Result<PredictResponse, ServeError> {
        let rx = self.submit(req)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Metrics snapshot of the service this client feeds.
    pub fn service_metrics(&self) -> crate::MetricsSnapshot {
        crate::service::metrics_snapshot(&self.shared)
    }

    /// The service's full Prometheus text exposition — the same document
    /// `GET /metrics` serves.
    pub fn prometheus_metrics(&self) -> String {
        crate::service::prometheus_text(&self.shared)
    }

    /// Full stats (metrics + cache budget and per-shard occupancy) of the
    /// service this client feeds.
    pub fn service_stats(&self) -> crate::ServiceStats {
        crate::service::service_stats(&self.shared)
    }

    /// Feature schema (version + named blocks) of the served model.
    pub fn schema(&self) -> concorde_core::schema::FeatureSchema {
        crate::service::schema_of(&self.shared)
    }

    /// Weight encoding the inference tier computes with
    /// (`--model-encoding`).
    pub fn model_encoding(&self) -> concorde_core::model::ModelEncoding {
        self.shared.cfg.model_encoding
    }

    /// Begins a graceful drain of the service this client feeds — the same
    /// switch the wire's `{"cmd": "drain"}` and the CLI's SIGTERM watcher
    /// flip. `serve_tcp` stops accepting, live connections answer their
    /// in-flight requests and close, and `/readyz` turns 503.
    pub fn begin_drain(&self) {
        self.shared
            .draining
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Predicts a whole batch, blocking until every response arrives.
    ///
    /// Responses come back in request order. Submission applies gentle
    /// backpressure: when the queue is full the call waits for capacity
    /// instead of failing, so arbitrarily large batches are safe.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] / [`ServeError::Disconnected`] when the
    /// service goes away underneath the call.
    pub fn predict_many(
        &self,
        mut reqs: Vec<PredictRequest>,
    ) -> Result<Vec<PredictResponse>, ServeError> {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::with_capacity(reqs.len());
        self.predict_batch_into(&mut reqs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Client::predict_many`] without the per-call allocations: drains
    /// `reqs`, appends responses to `out` (cleared first) in request order,
    /// and keeps every intermediate buffer in the caller-owned `scratch`.
    /// Once `scratch`, `reqs`, and `out` are warm a round trip performs
    /// zero heap allocations end to end — the contract
    /// `tests/serving_alloc.rs` pins with a counting allocator.
    ///
    /// Submission applies the same gentle backpressure as
    /// [`Client::predict_many`]: the whole batch enqueues under one shard
    /// lock when it fits, else it degrades to per-request submission that
    /// waits out a full queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] when the service goes away underneath
    /// the call; `reqs` may then be partially drained and `out` holds no
    /// responses (in-flight requests are answered and discarded).
    pub fn predict_batch_into(
        &self,
        reqs: &mut Vec<PredictRequest>,
        scratch: &mut BatchScratch,
        out: &mut Vec<PredictResponse>,
    ) -> Result<(), ServeError> {
        out.clear();
        // Fast path: the whole batch enqueues under one shard lock against
        // recycled response slots. A queue too full for the bulk
        // reservation degrades to per-request submission with the same
        // sleep-poll backpressure as before, which makes progress even when
        // the batch exceeds the entire queue capacity.
        match submit_many(&self.shared, reqs, &mut scratch.rxs, &mut scratch.jobs) {
            Ok(()) => {}
            Err(ServeError::QueueFull) => {
                for req in reqs.drain(..) {
                    loop {
                        match submit_slot(&self.shared, req.clone()) {
                            Ok(rx) => {
                                scratch.rxs.push(rx);
                                break;
                            }
                            Err(ServeError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => {
                                scratch.rxs.clear();
                                return Err(e);
                            }
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
        // Dropping each receiver right after its response recycles the slot
        // for the next request in the same batch.
        out.extend(scratch.rxs.drain(..).map(|rx| rx.recv()));
        Ok(())
    }
}

/// Blocking TCP client for the line-delimited JSON protocol.
///
/// The server may *push* `{"type":"upgrade"}` lines (exact answers landing
/// after a `notify: true` shed reply) at any point; request/response calls
/// stash them internally, and [`TcpClient::wait_upgrade`] hands them out.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Upgrade lines read while awaiting some other reply, FIFO.
    pending_upgrades: std::collections::VecDeque<PredictResponse>,
}

/// One round of splitmix64 — the jitter source for [`backoff_delay`].
/// Statistical quality is irrelevant here; what matters is that the same
/// input always yields the same output (reproducible schedules) and that
/// nearby inputs decorrelate (concurrent clients fan out).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The delay before retry number `attempt` (0-based) of a reconnect:
/// exponential doubling from `base`, capped at `cap`, with a deterministic
/// ±25% jitter derived from `seed` and the attempt index. Clients with
/// different seeds spread their retries (no thundering herd on a server
/// restart), while a given seed's schedule is exactly reproducible — the
/// property the unit test pins.
pub fn backoff_delay(base: Duration, cap: Duration, seed: u64, attempt: u32) -> Duration {
    let base_ns = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let cap_ns = cap.as_nanos().min(i64::MAX as u128) as u64;
    let nominal = ((u128::from(base_ns)) << attempt.min(63)).min(u128::from(cap_ns)) as u64;
    let spread = nominal / 4;
    if spread == 0 {
        return Duration::from_nanos(nominal);
    }
    let r = splitmix64(seed.wrapping_add(u64::from(attempt)));
    let offset = (r % (2 * spread + 1)) as i64 - spread as i64;
    Duration::from_nanos((nominal as i64 + offset).max(0) as u64)
}

/// True for a pushed `{"type":"upgrade"}` line (checked on the raw JSON so
/// non-response replies — metrics maps, stats — are never misclassified).
fn is_upgrade_line(line: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .as_ref()
        .and_then(|v| v.get("type"))
        .and_then(serde_json::Value::as_str)
        == Some("upgrade")
}

impl TcpClient {
    /// Connects to a `concorde serve` endpoint (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn connect(addr: &str) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: stream,
            pending_upgrades: std::collections::VecDeque::new(),
        })
    }

    /// Like [`TcpClient::connect`], but retries a failed connect up to
    /// `attempts` times with the bounded, jittered exponential backoff of
    /// [`backoff_delay`] (seeded from `addr`, so the schedule is
    /// deterministic per endpoint). This is how the CLI `predict` and the
    /// soak harnesses ride out a server restart instead of dying on the
    /// first `ECONNREFUSED`.
    ///
    /// # Errors
    ///
    /// The last connect error once every attempt is exhausted.
    pub fn connect_with_retry(
        addr: &str,
        attempts: u32,
        base: Duration,
        cap: Duration,
    ) -> std::io::Result<TcpClient> {
        let attempts = attempts.max(1);
        // FNV-1a over the address: any stable per-endpoint value works.
        let seed = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        let mut last = None;
        for attempt in 0..attempts {
            match TcpClient::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(backoff_delay(base, cap, seed, attempt));
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
    }

    fn read_reply_line(&mut self) -> std::io::Result<String> {
        loop {
            let mut resp = String::new();
            self.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            // An upgrade push racing a request's reply: stash it for
            // `wait_upgrade` and keep reading for the actual reply.
            if is_upgrade_line(&resp) {
                if let Ok(up) = serde_json::from_str(&resp) {
                    self.pending_upgrades.push_back(up);
                }
                continue;
            }
            return Ok(resp);
        }
    }

    fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    /// Blocks for the next pushed `{"type":"upgrade"}` line — the exact CPI
    /// promised to a `notify: true` request that was answered with a shed
    /// (`approx`) reply. Returns a stashed upgrade immediately if one
    /// already arrived interleaved with other replies.
    ///
    /// # Errors
    ///
    /// Socket errors; `UnexpectedEof` if the server closes first. Callers
    /// should set a read timeout on the socket if they cannot wait
    /// indefinitely.
    pub fn wait_upgrade(&mut self) -> std::io::Result<PredictResponse> {
        if let Some(up) = self.pending_upgrades.pop_front() {
            return Ok(up);
        }
        loop {
            let mut resp = String::new();
            self.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            if is_upgrade_line(&resp) {
                return serde_json::from_str(&resp).map_err(std::io::Error::other);
            }
            // Any non-upgrade line here is a reply nobody is waiting for
            // (protocol misuse); drop it rather than deadlock.
        }
    }

    /// Predicts one request over the wire.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn predict(&mut self, req: &PredictRequest) -> std::io::Result<PredictResponse> {
        let line = serde_json::to_string(req).expect("serialize request");
        let resp = self.roundtrip_line(&line)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Predicts a batch in one protocol exchange (array in, array out).
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn predict_many(
        &mut self,
        reqs: &[PredictRequest],
    ) -> std::io::Result<Vec<PredictResponse>> {
        let line = serde_json::to_string(&reqs.to_vec()).expect("serialize requests");
        let resp = self.roundtrip_line(&line)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn metrics(&mut self) -> std::io::Result<crate::MetricsSnapshot> {
        let resp = self.roundtrip_line(r#"{"cmd": "metrics"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's Prometheus text exposition over the JSON
    /// protocol (`{"cmd": "metrics", "format": "prometheus"}`) — the same
    /// document `GET /metrics` serves, for clients already speaking TCP.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.roundtrip_line(r#"{"cmd": "metrics", "format": "prometheus"}"#)?;
        let v: serde_json::Value = serde_json::from_str(&resp).map_err(std::io::Error::other)?;
        v.get("text")
            .and_then(serde_json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| std::io::Error::other("reply carried no text field"))
    }

    /// Fetches the server's full stats: metrics plus cache budget and
    /// per-shard occupancy (the `{"cmd": "stats"}` reply) — the numbers an
    /// operator sizes `--cache-bytes` and `--cache-shards` with.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn stats(&mut self) -> std::io::Result<crate::ServiceStats> {
        let resp = self.roundtrip_line(r#"{"cmd": "stats"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the served workload catalog as raw JSON.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn workloads(&mut self) -> std::io::Result<serde_json::Value> {
        let resp = self.roundtrip_line(r#"{"cmd": "workloads"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's feature schema (version + named blocks), letting
    /// programmatic clients validate the layout they featurize against.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn schema(&mut self) -> std::io::Result<concorde_core::schema::FeatureSchema> {
        let resp = self.roundtrip_line(r#"{"cmd": "schema"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_jittered_and_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let schedule: Vec<Duration> = (0..8).map(|i| backoff_delay(base, cap, 42, i)).collect();
        // Exactly reproducible: same seed, same schedule.
        let again: Vec<Duration> = (0..8).map(|i| backoff_delay(base, cap, 42, i)).collect();
        assert_eq!(schedule, again);
        // Every delay sits within ±25% of min(base · 2^i, cap).
        for (i, d) in schedule.iter().enumerate() {
            let nominal = std::cmp::min(base * (1u32 << i.min(5)), cap);
            assert!(*d >= nominal.mul_f64(0.749), "attempt {i}: {d:?} < -25%");
            assert!(*d <= nominal.mul_f64(1.251), "attempt {i}: {d:?} > +25%");
        }
        // A different seed jitters differently somewhere in the schedule.
        let other: Vec<Duration> = (0..8).map(|i| backoff_delay(base, cap, 43, i)).collect();
        assert_ne!(schedule, other);
        // Degenerate inputs stay sane: zero base never panics or sleeps.
        assert_eq!(backoff_delay(Duration::ZERO, cap, 1, 7), Duration::ZERO);
    }

    #[test]
    fn connect_with_retry_exhausts_attempts_then_reports_the_last_error() {
        // Bind then drop a listener: the port is (momentarily) refusing.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let tiny = Duration::from_micros(100);
        let err = match TcpClient::connect_with_retry(&addr, 3, tiny, tiny) {
            Err(e) => e,
            Ok(_) => panic!("connect to a dropped listener should fail"),
        };
        assert_ne!(err.kind(), std::io::ErrorKind::TimedOut, "{err}");
        // A live listener connects on the first attempt.
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let live = l.local_addr().unwrap().to_string();
        assert!(TcpClient::connect_with_retry(&live, 3, tiny, tiny).is_ok());
    }
}
