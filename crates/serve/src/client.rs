//! Clients: in-process [`Client`] (tests, benches, CLI) and [`TcpClient`]
//! speaking the line-delimited JSON protocol to a remote `concorde serve`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{PredictRequest, PredictResponse};
use crate::service::{submit, submit_many, submit_slot, Job, ServeError, Shared};
use crate::slots::SlotReceiver;

/// Caller-owned scratch for [`Client::predict_batch_into`]: holds the slot
/// receivers and job buffer between calls so a warm submit→receive round
/// trip allocates nothing. The fields are internal; `Default::default()` is
/// the whole API.
#[derive(Default)]
pub struct BatchScratch {
    rxs: Vec<SlotReceiver>,
    jobs: Vec<Job>,
}

/// In-process handle onto a running [`PredictionService`](crate::PredictionService).
///
/// Cloneable and `Send`; many threads can submit concurrently.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    pub(crate) fn new(shared: Arc<Shared>) -> Self {
        Client { shared }
    }

    /// The service internals, for the TCP front end's slot-based fast path.
    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Enqueues a request, returning the response receiver immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::ShuttingDown`] during teardown.
    pub fn submit(
        &self,
        req: PredictRequest,
    ) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
        submit(&self.shared, req)
    }

    /// Like [`Client::submit`], but waits out a full queue instead of
    /// failing (gentle backpressure; the wait is a short sleep-poll).
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] during teardown.
    pub fn submit_blocking(
        &self,
        req: PredictRequest,
    ) -> Result<mpsc::Receiver<PredictResponse>, ServeError> {
        loop {
            match self.submit(req.clone()) {
                Ok(rx) => return Ok(rx),
                Err(ServeError::QueueFull) => std::thread::sleep(Duration::from_micros(200)),
                Err(e) => return Err(e),
            }
        }
    }

    /// Predicts one request, blocking for the response.
    ///
    /// For a `notify: true` request answered with a shed (`approx`)
    /// response, the follow-up `{"type":"upgrade"}` line arrives later on
    /// the same channel — use [`Client::submit`] and hold the receiver to
    /// observe it; this convenience call drops it.
    ///
    /// # Errors
    ///
    /// See [`Client::submit`]; also [`ServeError::Disconnected`] if the
    /// service is torn down mid-flight.
    pub fn predict(&self, req: PredictRequest) -> Result<PredictResponse, ServeError> {
        let rx = self.submit(req)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// Metrics snapshot of the service this client feeds.
    pub fn service_metrics(&self) -> crate::MetricsSnapshot {
        crate::service::metrics_snapshot(&self.shared)
    }

    /// The service's full Prometheus text exposition — the same document
    /// `GET /metrics` serves.
    pub fn prometheus_metrics(&self) -> String {
        crate::service::prometheus_text(&self.shared)
    }

    /// Full stats (metrics + cache budget and per-shard occupancy) of the
    /// service this client feeds.
    pub fn service_stats(&self) -> crate::ServiceStats {
        crate::service::service_stats(&self.shared)
    }

    /// Feature schema (version + named blocks) of the served model.
    pub fn schema(&self) -> concorde_core::schema::FeatureSchema {
        crate::service::schema_of(&self.shared)
    }

    /// Weight encoding the inference tier computes with
    /// (`--model-encoding`).
    pub fn model_encoding(&self) -> concorde_core::model::ModelEncoding {
        self.shared.cfg.model_encoding
    }

    /// Predicts a whole batch, blocking until every response arrives.
    ///
    /// Responses come back in request order. Submission applies gentle
    /// backpressure: when the queue is full the call waits for capacity
    /// instead of failing, so arbitrarily large batches are safe.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] / [`ServeError::Disconnected`] when the
    /// service goes away underneath the call.
    pub fn predict_many(
        &self,
        mut reqs: Vec<PredictRequest>,
    ) -> Result<Vec<PredictResponse>, ServeError> {
        let mut scratch = BatchScratch::default();
        let mut out = Vec::with_capacity(reqs.len());
        self.predict_batch_into(&mut reqs, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Client::predict_many`] without the per-call allocations: drains
    /// `reqs`, appends responses to `out` (cleared first) in request order,
    /// and keeps every intermediate buffer in the caller-owned `scratch`.
    /// Once `scratch`, `reqs`, and `out` are warm a round trip performs
    /// zero heap allocations end to end — the contract
    /// `tests/serving_alloc.rs` pins with a counting allocator.
    ///
    /// Submission applies the same gentle backpressure as
    /// [`Client::predict_many`]: the whole batch enqueues under one shard
    /// lock when it fits, else it degrades to per-request submission that
    /// waits out a full queue.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] when the service goes away underneath
    /// the call; `reqs` may then be partially drained and `out` holds no
    /// responses (in-flight requests are answered and discarded).
    pub fn predict_batch_into(
        &self,
        reqs: &mut Vec<PredictRequest>,
        scratch: &mut BatchScratch,
        out: &mut Vec<PredictResponse>,
    ) -> Result<(), ServeError> {
        out.clear();
        // Fast path: the whole batch enqueues under one shard lock against
        // recycled response slots. A queue too full for the bulk
        // reservation degrades to per-request submission with the same
        // sleep-poll backpressure as before, which makes progress even when
        // the batch exceeds the entire queue capacity.
        match submit_many(&self.shared, reqs, &mut scratch.rxs, &mut scratch.jobs) {
            Ok(()) => {}
            Err(ServeError::QueueFull) => {
                for req in reqs.drain(..) {
                    loop {
                        match submit_slot(&self.shared, req.clone()) {
                            Ok(rx) => {
                                scratch.rxs.push(rx);
                                break;
                            }
                            Err(ServeError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => {
                                scratch.rxs.clear();
                                return Err(e);
                            }
                        }
                    }
                }
            }
            Err(e) => return Err(e),
        }
        // Dropping each receiver right after its response recycles the slot
        // for the next request in the same batch.
        out.extend(scratch.rxs.drain(..).map(|rx| rx.recv()));
        Ok(())
    }
}

/// Blocking TCP client for the line-delimited JSON protocol.
///
/// The server may *push* `{"type":"upgrade"}` lines (exact answers landing
/// after a `notify: true` shed reply) at any point; request/response calls
/// stash them internally, and [`TcpClient::wait_upgrade`] hands them out.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Upgrade lines read while awaiting some other reply, FIFO.
    pending_upgrades: std::collections::VecDeque<PredictResponse>,
}

/// True for a pushed `{"type":"upgrade"}` line (checked on the raw JSON so
/// non-response replies — metrics maps, stats — are never misclassified).
fn is_upgrade_line(line: &str) -> bool {
    serde_json::from_str::<serde_json::Value>(line)
        .ok()
        .as_ref()
        .and_then(|v| v.get("type"))
        .and_then(serde_json::Value::as_str)
        == Some("upgrade")
}

impl TcpClient {
    /// Connects to a `concorde serve` endpoint (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn connect(addr: &str) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpClient {
            reader,
            writer: stream,
            pending_upgrades: std::collections::VecDeque::new(),
        })
    }

    fn read_reply_line(&mut self) -> std::io::Result<String> {
        loop {
            let mut resp = String::new();
            self.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            // An upgrade push racing a request's reply: stash it for
            // `wait_upgrade` and keep reading for the actual reply.
            if is_upgrade_line(&resp) {
                if let Ok(up) = serde_json::from_str(&resp) {
                    self.pending_upgrades.push_back(up);
                }
                continue;
            }
            return Ok(resp);
        }
    }

    fn roundtrip_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_reply_line()
    }

    /// Blocks for the next pushed `{"type":"upgrade"}` line — the exact CPI
    /// promised to a `notify: true` request that was answered with a shed
    /// (`approx`) reply. Returns a stashed upgrade immediately if one
    /// already arrived interleaved with other replies.
    ///
    /// # Errors
    ///
    /// Socket errors; `UnexpectedEof` if the server closes first. Callers
    /// should set a read timeout on the socket if they cannot wait
    /// indefinitely.
    pub fn wait_upgrade(&mut self) -> std::io::Result<PredictResponse> {
        if let Some(up) = self.pending_upgrades.pop_front() {
            return Ok(up);
        }
        loop {
            let mut resp = String::new();
            self.reader.read_line(&mut resp)?;
            if resp.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ));
            }
            if is_upgrade_line(&resp) {
                return serde_json::from_str(&resp).map_err(std::io::Error::other);
            }
            // Any non-upgrade line here is a reply nobody is waiting for
            // (protocol misuse); drop it rather than deadlock.
        }
    }

    /// Predicts one request over the wire.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn predict(&mut self, req: &PredictRequest) -> std::io::Result<PredictResponse> {
        let line = serde_json::to_string(req).expect("serialize request");
        let resp = self.roundtrip_line(&line)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Predicts a batch in one protocol exchange (array in, array out).
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn predict_many(
        &mut self,
        reqs: &[PredictRequest],
    ) -> std::io::Result<Vec<PredictResponse>> {
        let line = serde_json::to_string(&reqs.to_vec()).expect("serialize requests");
        let resp = self.roundtrip_line(&line)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's metrics snapshot.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn metrics(&mut self) -> std::io::Result<crate::MetricsSnapshot> {
        let resp = self.roundtrip_line(r#"{"cmd": "metrics"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's Prometheus text exposition over the JSON
    /// protocol (`{"cmd": "metrics", "format": "prometheus"}`) — the same
    /// document `GET /metrics` serves, for clients already speaking TCP.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn metrics_text(&mut self) -> std::io::Result<String> {
        let resp = self.roundtrip_line(r#"{"cmd": "metrics", "format": "prometheus"}"#)?;
        let v: serde_json::Value = serde_json::from_str(&resp).map_err(std::io::Error::other)?;
        v.get("text")
            .and_then(serde_json::Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| std::io::Error::other("reply carried no text field"))
    }

    /// Fetches the server's full stats: metrics plus cache budget and
    /// per-shard occupancy (the `{"cmd": "stats"}` reply) — the numbers an
    /// operator sizes `--cache-bytes` and `--cache-shards` with.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn stats(&mut self) -> std::io::Result<crate::ServiceStats> {
        let resp = self.roundtrip_line(r#"{"cmd": "stats"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the served workload catalog as raw JSON.
    ///
    /// # Errors
    ///
    /// Socket errors.
    pub fn workloads(&mut self) -> std::io::Result<serde_json::Value> {
        let resp = self.roundtrip_line(r#"{"cmd": "workloads"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }

    /// Fetches the server's feature schema (version + named blocks), letting
    /// programmatic clients validate the layout they featurize against.
    ///
    /// # Errors
    ///
    /// Socket errors, or a protocol-level error decoded into `io::Error`.
    pub fn schema(&mut self) -> std::io::Result<concorde_core::schema::FeatureSchema> {
        let resp = self.roundtrip_line(r#"{"cmd": "schema"}"#)?;
        serde_json::from_str(&resp).map_err(std::io::Error::other)
    }
}
