//! Deterministic fault injection for the serving engine — the chaos
//! harness's control surface.
//!
//! A [`FaultPlan`] names *ordinals* at which each fault point fires: the
//! N-th batched evaluation panics, the N-th store build panics or stalls,
//! the N-th TCP reply is dropped mid-connection. Every fault point keeps
//! its own atomic pass counter, so a plan fires the same *number* of faults
//! at the same *points in the request stream* on every run — which thread
//! happens to hit a given ordinal is scheduling-dependent, but the
//! invariants the chaos soak asserts (every request answered exactly once,
//! no stranded state, monotone metrics) are interleaving-independent.
//!
//! Plans are injected two ways:
//!
//! - **Tests** build one with [`FaultPlan::parse`] (or the setters) and hand
//!   it to [`crate::ServeConfig::fault_plan`].
//! - **Operators** set `CONCORDE_FAULT_PLAN` in the environment; the service
//!   parses it at startup. The syntax is `;`-separated `point@ordinals`
//!   entries: `panic_eval@3`, `panic_build@1,4`, `slow_build@2:50ms`
//!   (the suffix sets the stall), `drop_reply@5`.
//!
//! The default (empty) plan is free on the hot path: each hook is one
//! `Vec::is_empty` check, no atomics touched.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One fault point: the 1-based ordinals it fires at, plus the pass counter.
#[derive(Debug, Default)]
struct FirePoint {
    at: Vec<u64>,
    passes: AtomicU64,
}

impl FirePoint {
    fn with(at: Vec<u64>) -> FirePoint {
        FirePoint {
            at,
            passes: AtomicU64::new(0),
        }
    }

    /// Counts one pass through the point; true iff this pass is a chosen
    /// ordinal. An empty ordinal list never counts — the disabled hook costs
    /// one branch.
    fn fires(&self) -> bool {
        if self.at.is_empty() {
            return false;
        }
        let n = self.passes.fetch_add(1, Ordering::Relaxed) + 1;
        self.at.contains(&n)
    }

    /// How many faults this point has fired so far.
    fn fired(&self) -> u64 {
        if self.at.is_empty() {
            return 0;
        }
        let seen = self.passes.load(Ordering::Relaxed);
        self.at.iter().filter(|&&n| n <= seen).count() as u64
    }
}

/// A deterministic fault-injection plan (see the module docs). The default
/// plan injects nothing.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_eval: FirePoint,
    panic_build: FirePoint,
    slow_build: FirePoint,
    slow_build_delay: Duration,
    drop_reply: FirePoint,
}

impl FaultPlan {
    /// True when no fault point is armed.
    pub fn is_empty(&self) -> bool {
        self.panic_eval.at.is_empty()
            && self.panic_build.at.is_empty()
            && self.slow_build.at.is_empty()
            && self.drop_reply.at.is_empty()
    }

    /// Arms a panic at the given 1-based batched-evaluation ordinals.
    pub fn panic_eval_at(mut self, at: Vec<u64>) -> Self {
        self.panic_eval = FirePoint::with(at);
        self
    }

    /// Arms a panic at the given 1-based store-build ordinals.
    pub fn panic_build_at(mut self, at: Vec<u64>) -> Self {
        self.panic_build = FirePoint::with(at);
        self
    }

    /// Arms a stall of `delay` at the given 1-based store-build ordinals.
    pub fn slow_build_at(mut self, at: Vec<u64>, delay: Duration) -> Self {
        self.slow_build = FirePoint::with(at);
        self.slow_build_delay = delay;
        self
    }

    /// Arms a mid-connection drop at the given 1-based TCP-reply ordinals.
    pub fn drop_reply_at(mut self, at: Vec<u64>) -> Self {
        self.drop_reply = FirePoint::with(at);
        self
    }

    /// Hook inside the batched forward pass (under the worker's unwind
    /// guard): panics on a chosen ordinal.
    pub(crate) fn on_eval(&self) {
        if self.panic_eval.fires() {
            panic!("injected fault: eval panic");
        }
    }

    /// Hook inside a store build (under the build's unwind guard): stalls
    /// and/or panics on chosen ordinals. One build ordinal drives both
    /// points, counted independently.
    pub(crate) fn on_build(&self) {
        if self.slow_build.fires() {
            std::thread::sleep(self.slow_build_delay);
        }
        if self.panic_build.fires() {
            panic!("injected fault: build panic");
        }
    }

    /// Hook before a TCP reply write: true means the server must drop the
    /// connection instead of writing (a mid-reply socket failure).
    pub(crate) fn on_reply(&self) -> bool {
        self.drop_reply.fires()
    }

    /// Faults fired so far, per point: `(evals, builds, stalls, drops)`.
    pub fn fired(&self) -> (u64, u64, u64, u64) {
        (
            self.panic_eval.fired(),
            self.panic_build.fired(),
            self.slow_build.fired(),
            self.drop_reply.fired(),
        )
    }

    /// Parses the `CONCORDE_FAULT_PLAN` syntax (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (point, rest) = entry
                .split_once('@')
                .ok_or_else(|| format!("`{entry}`: expected point@ordinals"))?;
            let (ordinals, suffix) = match rest.split_once(':') {
                Some((o, s)) => (o, Some(s)),
                None => (rest, None),
            };
            let at: Vec<u64> = ordinals
                .split(',')
                .map(|n| {
                    n.trim()
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("`{n}`: ordinals are positive integers"))
                })
                .collect::<Result<_, _>>()?;
            match point.trim() {
                "panic_eval" => plan.panic_eval = FirePoint::with(at),
                "panic_build" => plan.panic_build = FirePoint::with(at),
                "slow_build" => {
                    plan.slow_build = FirePoint::with(at);
                    let ms = suffix
                        .unwrap_or("50ms")
                        .trim()
                        .strip_suffix("ms")
                        .and_then(|n| n.parse::<u64>().ok())
                        .ok_or_else(|| format!("`{entry}`: expected slow_build@N:MILLISms"))?;
                    plan.slow_build_delay = Duration::from_millis(ms);
                }
                "drop_reply" => plan.drop_reply = FirePoint::with(at),
                other => {
                    return Err(format!(
                        "`{other}`: unknown fault point \
                         (panic_eval | panic_build | slow_build | drop_reply)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires_and_counts_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for _ in 0..100 {
            plan.on_eval();
            plan.on_build();
            assert!(!plan.on_reply());
        }
        assert_eq!(plan.fired(), (0, 0, 0, 0));
    }

    #[test]
    fn fire_points_hit_exactly_their_ordinals() {
        let p = FirePoint::with(vec![2, 5]);
        let fired: Vec<bool> = (0..7).map(|_| p.fires()).collect();
        assert_eq!(fired, [false, true, false, false, true, false, false]);
        assert_eq!(p.fired(), 2);
    }

    #[test]
    fn parse_roundtrips_the_env_syntax() {
        let plan =
            FaultPlan::parse("panic_eval@3; panic_build@1,4; slow_build@2:75ms; drop_reply@6")
                .unwrap();
        assert!(!plan.is_empty());
        assert_eq!(plan.panic_eval.at, [3]);
        assert_eq!(plan.panic_build.at, [1, 4]);
        assert_eq!(plan.slow_build.at, [2]);
        assert_eq!(plan.slow_build_delay, Duration::from_millis(75));
        assert_eq!(plan.drop_reply.at, [6]);
        assert!(FaultPlan::parse("").unwrap().is_empty());
        // Errors: unknown point, missing `@`, bad ordinal, bad stall suffix.
        assert!(FaultPlan::parse("panic_everything@1").is_err());
        assert!(FaultPlan::parse("panic_eval").is_err());
        assert!(FaultPlan::parse("panic_eval@0").is_err());
        assert!(FaultPlan::parse("panic_eval@x").is_err());
        assert!(FaultPlan::parse("slow_build@1:fast").is_err());
    }

    #[test]
    fn drop_reply_fires_once_per_chosen_ordinal() {
        let plan = FaultPlan::parse("drop_reply@1,3").unwrap();
        let drops: Vec<bool> = (0..4).map(|_| plan.on_reply()).collect();
        assert_eq!(drops, [true, false, true, false]);
        assert_eq!(plan.fired().3, 2);
    }
}
