//! Minimal HTTP/1.1 `GET /metrics` endpoint (`--metrics-addr`), plus the
//! orchestrator probes `GET /healthz` (liveness: 200 while the process
//! serves) and `GET /readyz` (readiness: 200 normally, 503 once the
//! service begins draining, so load balancers stop routing before the
//! listener closes).
//!
//! Prometheus scrapes speak plain HTTP, not this crate's line-delimited
//! JSON protocol, so the metrics endpoint gets its own single-threaded
//! listener: accept, parse the request line, answer one response, close.
//! That is the entire protocol surface — no keep-alive, no chunking, no
//! routing beyond the three paths — which keeps the handler a screen of code and
//! leaves nothing for a scraper to exploit. Scrape traffic is a request
//! every few seconds, so the sequential accept loop is never the
//! bottleneck; the exposition itself reads the same lock-free atomics the
//! JSON stats do and cannot stall the serving hot path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::service::{prometheus_text, PredictionService, Shared};

/// The exposition-format content type Prometheus expects.
const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// A running `/metrics` HTTP listener; dropping it stops the thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The address the listener actually bound (resolves `:0` port
    /// requests, so tests can bind ephemerally and ask where they landed).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl PredictionService {
    /// Starts the Prometheus `/metrics` HTTP listener on `addr` (e.g.
    /// `127.0.0.1:9184`; port `0` binds ephemerally). The listener runs on
    /// its own thread for the life of the returned [`MetricsServer`] and
    /// serves the same text the TCP protocol returns for
    /// `{"cmd": "metrics", "format": "prometheus"}`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, bad addr).
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        // Non-blocking accept + poll: the loop notices the shutdown flag
        // within one poll interval without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("concorde-metrics-http".to_string())
            .spawn(move || accept_loop(&listener, &shared, &flag))
            .expect("spawn metrics listener");
        Ok(MetricsServer {
            addr: bound,
            shutdown,
            handle: Some(handle),
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // One slow or malformed scraper must not wedge the loop:
                // bound the read, answer, close. Errors are per-connection.
                let _ = handle_scrape(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Fallback I/O timeout for scrape/probe connections when the operator did
/// not set `--read-timeout-ms`. These connections must always time-bound:
/// the accept loop is single-threaded, so one stalled scraper with no
/// timeout would block every later probe indefinitely.
const SCRAPE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Hard ceiling on the scrape-path timeout. `--read-timeout-ms` is sized
/// for predict connections, which each get their own thread; scrape/probe
/// connections share one accept loop, so a large operator value would let
/// one stalled scraper block every later `/metrics` and probe request for
/// that full duration. An operator value below the ceiling is honored
/// (one knob governs idle reaping), above it is clamped.
const SCRAPE_IO_TIMEOUT_MAX: Duration = Duration::from_secs(5);

/// Scrape-socket I/O timeout: the operator's `--read-timeout-ms` when set
/// (so one knob governs idle reaping), the built-in fallback otherwise,
/// clamped to [`SCRAPE_IO_TIMEOUT_MAX`] either way.
fn scrape_timeout(read_timeout: Option<Duration>) -> Duration {
    read_timeout
        .unwrap_or(SCRAPE_IO_TIMEOUT)
        .min(SCRAPE_IO_TIMEOUT_MAX)
}

/// Reads one request head (through the blank line) and writes one response.
fn handle_scrape(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let timeout = scrape_timeout(shared.cfg.read_timeout);
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nonblocking(false)?;
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    // 8 KiB head cap: a real scrape request is a few hundred bytes.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) => return Err(e),
        }
    }
    let request_line = head
        .split(|b| *b == b'\n')
        .next()
        .map(|l| String::from_utf8_lossy(l).trim().to_string())
        .unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    // Scrape paths may carry query params (`/metrics?foo=1`); match the path
    // component only.
    let path = path.split('?').next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else if path == "/healthz" {
        // Liveness: the listener thread is running, so the process is.
        ("200 OK", "ok\n".to_string())
    } else if path == "/readyz" {
        // Readiness flips to 503 the moment a drain begins, so a load
        // balancer stops routing before the serving listener closes.
        if shared.draining.load(Ordering::SeqCst) {
            ("503 Service Unavailable", "draining\n".to_string())
        } else {
            ("200 OK", "ready\n".to_string())
        }
    } else if path != "/metrics" {
        (
            "404 Not Found",
            "try /metrics, /healthz, or /readyz\n".to_string(),
        )
    } else {
        ("200 OK", prometheus_text(shared))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_timeout_honors_the_knob_but_caps_it() {
        assert_eq!(scrape_timeout(None), SCRAPE_IO_TIMEOUT);
        let short = Duration::from_millis(100);
        assert_eq!(scrape_timeout(Some(short)), short, "small values honored");
        assert_eq!(
            scrape_timeout(Some(Duration::from_secs(300))),
            SCRAPE_IO_TIMEOUT_MAX,
            "a predict-sized timeout must not let one stalled scraper \
             wedge the single-threaded accept loop for minutes"
        );
    }
}
