//! # concorde-serve
//!
//! Batched, cached inference serving for Concorde predictions — the layer
//! that turns the paper's "~5 orders of magnitude faster than cycle-level
//! simulation" result into a service: fleet-scale design-space exploration
//! issues millions of *(region, microarchitecture)* queries, and this crate
//! answers them with micro-batched MLP evaluation over an LRU cache of
//! precomputed analytic feature stores.
//!
//! Pipeline: bounded queue → micro-batching collector (flush on batch size
//! or deadline) → worker pool → sharded, byte-budgeted feature-store cache →
//! one batched forward pass per region group. Cache misses are parked on a
//! single-flight registry and built by a dedicated precompute pool, so a
//! cold region never stalls the hit path (see [`service`]).
//!
//! Entry points:
//!
//! - [`PredictionService::start`] — spin up the engine around a trained
//!   [`ConcordePredictor`](concorde_core::model::ConcordePredictor)
//! - [`PredictionService::client`] — in-process [`Client`] for tests,
//!   benches, and embedding
//! - [`PredictionService::serve_tcp`] — the line-delimited JSON protocol
//!   (see [`server`]), spoken by [`TcpClient`] and `concorde predict`
//!
//! ```no_run
//! use concorde_serve::{ArchSpec, PredictRequest, PredictionService, ServeConfig};
//! # let (model, profile) = unimplemented!();
//! let service = PredictionService::start(model, profile, ServeConfig::default());
//! let client = service.client();
//! let resp = client
//!     .predict(PredictRequest::new(1, "S5", ArchSpec::base("n1")))
//!     .unwrap();
//! println!("CPI {}", resp.cpi.unwrap());
//! ```

#![warn(missing_docs)]

pub mod bytesize;
mod client;
pub mod fault;
pub mod http;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod service;
pub mod slots;

pub use bytesize::{parse_byte_size, ByteSizeError};
pub use client::{BatchScratch, Client, TcpClient};
pub use fault::FaultPlan;
pub use http::MetricsServer;
pub use protocol::{ArchSpec, PredictRequest, PredictResponse, RequestClass};
pub use server::workload_catalog;
pub use service::{
    shed_decision, CacheReport, ClassSlo, MetricsSnapshot, MissPolicy, PredictionService,
    ServeConfig, ServeError, ServiceStats, SweepScope, MAX_REGION_LEN, MAX_WIRE_RISCV_BUDGET,
};
