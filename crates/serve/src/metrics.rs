//! Dependency-free Prometheus primitives: lock-free histograms with fixed
//! log-spaced buckets and a text-exposition writer.
//!
//! Like every external-facing layer of this workspace the module is
//! hand-rolled — no `prometheus` crate — but the output is strict [text
//! exposition format 0.0.4]: each metric family is `# HELP`/`# TYPE`d
//! exactly once, histograms render cumulative `_bucket{le="..."}` series
//! ending in `le="+Inf"` plus `_sum`/`_count`, and label values are escaped.
//! `tests/serving_metrics.rs` scrapes a live server and re-validates those
//! invariants with a strict parser, so a formatting regression fails CI.
//!
//! [text exposition format 0.0.4]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/
//!
//! The recording side is designed for the serving hot path: one atomic
//! increment per bucket observation (bucket search is a handful of `f64`
//! compares over a fixed array), a CAS loop only for the `f64` sum, and no
//! locks anywhere — scrapes read the same atomics without stopping writers.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram recording non-negative `f64` observations.
///
/// Buckets are defined by their inclusive upper bounds (`le`); one implicit
/// overflow bucket (`+Inf`) catches everything beyond the last bound. The
/// sum is a CAS-maintained `f64` and the maximum is kept exactly (the
/// non-negative IEEE-754 bit pattern is order-preserving, so `fetch_max` on
/// the bits is `fetch_max` on the values) — which lets the legacy
/// `max_latency_us` stat derive from the histogram instead of drifting
/// beside it.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One counter per bound plus the overflow (`+Inf`) bucket; NOT
    /// cumulative — the render step accumulates.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// IEEE-754 bits of the running sum (CAS-updated).
    sum_bits: AtomicU64,
    /// IEEE-754 bits of the largest observation.
    max_bits: AtomicU64,
}

impl Histogram {
    /// Histogram over explicit upper bounds (must be finite, positive, and
    /// strictly increasing; the `+Inf` bucket is implicit).
    pub fn new(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must strictly increase");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b > 0.0),
            "histogram bounds must be finite and positive"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    /// `n` log-spaced buckets: `start, start·factor, start·factor², …`.
    ///
    /// The fixed-log-bucket shape keeps relative (not absolute) resolution
    /// constant across decades — right for latencies that span microseconds
    /// to seconds.
    pub fn log_buckets(start: f64, factor: f64, n: usize) -> Histogram {
        assert!(start > 0.0 && factor > 1.0 && n > 0);
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Histogram::new(bounds)
    }

    /// Records one observation.
    ///
    /// Invariant: observations must be non-negative and finite. Durations
    /// and sizes satisfy this by construction; it matters here because the
    /// running maximum is a bit-pattern `fetch_max` — IEEE-754 ordering
    /// matches integer ordering only for non-negative finite values, so a
    /// negative or NaN observation would silently wedge the max (every
    /// negative value's sign bit makes it compare *greater* as an integer).
    /// Debug builds assert; release builds saturate the bad value to zero,
    /// which keeps count/sum/max coherent instead of corrupting the max.
    pub fn observe(&self, v: f64) {
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "Histogram::observe requires non-negative finite values, got {v}"
        );
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Point-in-time copy for rendering and for deriving legacy stats.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }
}

/// One consistent-enough read of a [`Histogram`]'s atomics.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (`le` values, excluding `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; last entry is the overflow.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another snapshot of an identically-bucketed histogram (used to
    /// aggregate per-class histograms into the legacy global stats).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.bounds, other.bounds);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a label set (`{a="x",b="y"}`), empty string for no labels.
fn render_labels(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Builds one Prometheus text-exposition document.
///
/// Families must be emitted in one shot (`counter`/`gauge`/`histogram` take
/// every labelled series of the family at once), which makes the "each
/// metric is `# TYPE`d exactly once" invariant structural rather than a
/// caller discipline.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// Empty document.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    /// A counter family: every `(labels, value)` series at once.
    pub fn counter(&mut self, name: &str, help: &str, series: &[(Vec<(&str, String)>, u64)]) {
        self.header(name, help, "counter");
        for (labels, v) in series {
            let _ = writeln!(self.out, "{name}{} {v}", render_labels(labels));
        }
    }

    /// A gauge family.
    pub fn gauge(&mut self, name: &str, help: &str, series: &[(Vec<(&str, String)>, f64)]) {
        self.header(name, help, "gauge");
        for (labels, v) in series {
            let _ = writeln!(self.out, "{name}{} {}", render_labels(labels), fmt_f64(*v));
        }
    }

    /// A histogram family: cumulative `_bucket` series (ending `+Inf`),
    /// `_sum`, and `_count` per label set.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        series: &[(Vec<(&str, String)>, HistogramSnapshot)],
    ) {
        self.header(name, help, "histogram");
        for (labels, snap) in series {
            let mut cumulative = 0u64;
            for (bound, n) in snap.bounds.iter().zip(&snap.buckets) {
                cumulative += n;
                let mut with_le: Vec<(&str, String)> = labels.clone();
                with_le.push(("le", fmt_f64(*bound)));
                let _ = writeln!(
                    self.out,
                    "{name}_bucket{} {cumulative}",
                    render_labels(&with_le)
                );
            }
            cumulative += snap.buckets.last().copied().unwrap_or(0);
            let mut with_le: Vec<(&str, String)> = labels.clone();
            with_le.push(("le", "+Inf".to_string()));
            let _ = writeln!(
                self.out,
                "{name}_bucket{} {cumulative}",
                render_labels(&with_le)
            );
            let ls = render_labels(labels);
            let _ = writeln!(self.out, "{name}_sum{ls} {}", fmt_f64(snap.sum));
            let _ = writeln!(self.out, "{name}_count{ls} {}", snap.count);
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Formats an `f64` so it survives a strict-parser round trip: Rust's
/// shortest-roundtrip `Display`, which Prometheus parses for both plain
/// decimals and exponent notation (the writer's inputs are finite by
/// construction).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Connection-lifecycle log line for the TCP front end, routed through this
/// module so operational logging and metrics exposition share one front
/// door. Silent unless `CONCORDE_CONN_LOG=1` — the accept loop stays quiet
/// in production, and the live-connection *count* is already exported as
/// the `concorde_active_connections` gauge.
pub fn log_connection(event: &str, peer: std::net::SocketAddr) {
    if std::env::var_os("CONCORDE_CONN_LOG").is_some_and(|v| v == "1") {
        eprintln!("concorde-serve: connection {event} peer={peer}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_cover_decades() {
        let h = Histogram::log_buckets(1e-5, 2.0, 20);
        assert_eq!(h.bounds.len(), 20);
        assert!(h.bounds[0] == 1e-5);
        assert!(h.bounds[19] > 5.0, "last bound {}", h.bounds[19]);
    }

    #[test]
    fn observe_counts_sum_and_max() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 1, 1]);
        assert_eq!(s.count, 4);
        assert!((s.sum - 105.0).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        // Boundary: a value exactly on a bound lands in that bucket (le is
        // inclusive).
        h.observe(2.0);
        assert_eq!(h.snapshot().buckets[1], 2);
    }

    /// Release builds saturate invariant-violating observations to zero
    /// (see `observe`: a raw negative/NaN bit pattern would wedge the
    /// `fetch_max`-based maximum). Debug builds assert instead — covered by
    /// `invalid_observations_assert_in_debug` below.
    #[test]
    #[cfg(not(debug_assertions))]
    fn negative_and_nonfinite_observations_clamp() {
        let h = Histogram::new(vec![1.0]);
        h.observe(-5.0);
        h.observe(f64::NAN);
        h.observe(f64::NEG_INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 3);
        assert_eq!(s.sum, 0.0);
        assert_eq!(s.max, 0.0, "max must not absorb a bad bit pattern");
        // A later valid observation still orders correctly.
        h.observe(0.5);
        assert_eq!(h.snapshot().max, 0.5);
    }

    /// Debug builds surface the non-negative-finite invariant loudly so the
    /// offending call site is found in development, not masked forever by
    /// the release-mode clamp.
    #[test]
    #[cfg(debug_assertions)]
    fn invalid_observations_assert_in_debug() {
        for bad in [-5.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let r = std::panic::catch_unwind(|| {
                let h = Histogram::new(vec![1.0]);
                h.observe(bad);
            });
            assert!(r.is_err(), "observe({bad}) must debug_assert");
        }
        // Zero is valid: the boundary of the invariant, not a violation.
        let h = Histogram::new(vec![1.0]);
        h.observe(0.0);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn render_histogram_is_cumulative_with_inf() {
        let h = Histogram::new(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let mut w = PromWriter::new();
        w.histogram(
            "x_seconds",
            "test",
            &[(vec![("class", "interactive".to_string())], h.snapshot())],
        );
        let text = w.finish();
        assert!(text.contains("# TYPE x_seconds histogram"));
        assert!(text.contains("x_seconds_bucket{class=\"interactive\",le=\"1\"} 1"));
        assert!(text.contains("x_seconds_bucket{class=\"interactive\",le=\"2\"} 2"));
        assert!(text.contains("x_seconds_bucket{class=\"interactive\",le=\"+Inf\"} 3"));
        assert!(text.contains("x_seconds_count{class=\"interactive\"} 3"));
        assert!(text.contains("x_seconds_sum{class=\"interactive\"} 11"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.counter(
            "c_total",
            "test",
            &[(vec![("k", "a\"b\\c\nd".to_string())], 1)],
        );
        let text = w.finish();
        assert!(text.contains(r#"c_total{k="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn merge_aggregates_identical_shapes() {
        let a = Histogram::new(vec![1.0, 2.0]);
        let b = Histogram::new(vec![1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(50.0);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![1, 1, 1]);
        assert_eq!(s.max, 50.0);
    }
}
