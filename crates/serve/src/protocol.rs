//! Wire types for the line-delimited JSON prediction protocol.
//!
//! One request per line; one response line per request (arrays map to array
//! responses). The same types back the in-process [`Client`](crate::Client),
//! so a test exercising the client exercises the protocol.
//!
//! ```json
//! {"id": 1, "workload": "S5", "arch": {"base": "n1", "rob": 256}}
//! {"id": 1, "cpi": 1.87, "cached": true, "micros": 112}
//! ```

use concorde_core::keystr::KeyStr;
use concorde_cyclesim::MicroArch;
use serde::{Content, Deserialize, Serialize};

/// QoS class of a request, carried on the wire as `"class"`.
///
/// The class labels every latency histogram the server exports and selects
/// the per-class miss-wait SLO (`--slo interactive=25,batch=500`):
/// interactive traffic is the latency-sensitive point-query path, batch is
/// sweep/backfill traffic that tolerates parking. Default: `interactive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RequestClass {
    /// Latency-sensitive point queries (the default).
    #[default]
    Interactive,
    /// Throughput-oriented sweep/backfill traffic.
    Batch,
}

/// Number of request classes (sizes the per-class metric arrays).
pub const N_CLASSES: usize = 2;

impl RequestClass {
    /// All classes, indexable by [`RequestClass::index`].
    pub const ALL: [RequestClass; N_CLASSES] = [RequestClass::Interactive, RequestClass::Batch];

    /// Dense index for per-class metric arrays.
    pub fn index(self) -> usize {
        match self {
            RequestClass::Interactive => 0,
            RequestClass::Batch => 1,
        }
    }

    /// Wire / label name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }

    /// Parses a wire / CLI name.
    pub fn parse(s: &str) -> Option<RequestClass> {
        match s {
            "interactive" => Some(RequestClass::Interactive),
            "batch" => Some(RequestClass::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Manual (de)serialization: the derive shim would emit the Rust variant
// names (`"Interactive"`); the wire contract is the lowercase label names.
impl Serialize for RequestClass {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for RequestClass {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        match c {
            Content::Str(s) => RequestClass::parse(s).ok_or_else(|| {
                serde::Error::custom(format!(
                    "unknown request class `{s}` (expected `interactive` or `batch`)"
                ))
            }),
            _ => Err(serde::Error::custom("request class must be a string")),
        }
    }
}

/// Architecture selector: a named base design plus per-parameter overrides.
///
/// Every field is optional; the empty spec resolves to the ARM N1
/// configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Base design: `"n1"` (default) or `"big"`.
    #[serde(default)]
    pub base: Option<KeyStr>,
    /// Reorder-buffer size.
    #[serde(default)]
    pub rob: Option<u32>,
    /// Load-queue size.
    #[serde(default)]
    pub lq: Option<u32>,
    /// Store-queue size.
    #[serde(default)]
    pub sq: Option<u32>,
    /// ALU issue width.
    #[serde(default)]
    pub alu: Option<u32>,
    /// FP issue width.
    #[serde(default)]
    pub fp: Option<u32>,
    /// Load-store issue width.
    #[serde(default)]
    pub ls: Option<u32>,
    /// Fetch width.
    #[serde(default)]
    pub fetch: Option<u32>,
    /// Decode width.
    #[serde(default)]
    pub decode: Option<u32>,
    /// Rename width.
    #[serde(default)]
    pub rename: Option<u32>,
    /// Commit width.
    #[serde(default)]
    pub commit: Option<u32>,
    /// L1 data cache size (KiB).
    #[serde(default)]
    pub l1d: Option<u32>,
    /// L1 instruction cache size (KiB).
    #[serde(default)]
    pub l1i: Option<u32>,
    /// Unified L2 size (KiB).
    #[serde(default)]
    pub l2: Option<u32>,
    /// Prefetch degree.
    #[serde(default)]
    pub prefetch: Option<u32>,
}

impl ArchSpec {
    /// Resolves the spec to a concrete microarchitecture.
    ///
    /// # Errors
    ///
    /// Returns a message naming an unknown base design or an out-of-range
    /// parameter. Sizes and widths must be in `1..=1_048_576` (the analytic
    /// models assert non-zero resources; a zero from the wire must be a
    /// request error, never a worker panic); `prefetch` may be `0..=64`.
    pub fn resolve(&self) -> Result<MicroArch, String> {
        const MAX: u32 = 1 << 20;
        for (name, v) in [
            ("rob", self.rob),
            ("lq", self.lq),
            ("sq", self.sq),
            ("alu", self.alu),
            ("fp", self.fp),
            ("ls", self.ls),
            ("fetch", self.fetch),
            ("decode", self.decode),
            ("rename", self.rename),
            ("commit", self.commit),
            ("l1d", self.l1d),
            ("l1i", self.l1i),
            ("l2", self.l2),
        ] {
            if let Some(v) = v {
                if v == 0 || v > MAX {
                    return Err(format!(
                        "parameter `{name}` = {v} is out of range (1..={MAX})"
                    ));
                }
            }
        }
        if let Some(v) = self.prefetch {
            if v > 64 {
                return Err(format!(
                    "parameter `prefetch` = {v} is out of range (0..=64)"
                ));
            }
        }
        let mut arch = match self.base.as_deref() {
            None | Some("n1") => MicroArch::arm_n1(),
            Some("big") => MicroArch::big_core(),
            Some(other) => {
                return Err(format!(
                    "unknown base arch `{other}` (expected `n1` or `big`)"
                ))
            }
        };
        if let Some(v) = self.rob {
            arch.rob_size = v;
        }
        if let Some(v) = self.lq {
            arch.lq_size = v;
        }
        if let Some(v) = self.sq {
            arch.sq_size = v;
        }
        if let Some(v) = self.alu {
            arch.alu_width = v;
        }
        if let Some(v) = self.fp {
            arch.fp_width = v;
        }
        if let Some(v) = self.ls {
            arch.ls_width = v;
        }
        if let Some(v) = self.fetch {
            arch.fetch_width = v;
        }
        if let Some(v) = self.decode {
            arch.decode_width = v;
        }
        if let Some(v) = self.rename {
            arch.rename_width = v;
        }
        if let Some(v) = self.commit {
            arch.commit_width = v;
        }
        if let Some(v) = self.l1d {
            arch.mem.l1d_kb = v;
        }
        if let Some(v) = self.l1i {
            arch.mem.l1i_kb = v;
        }
        if let Some(v) = self.l2 {
            arch.mem.l2_kb = v;
        }
        if let Some(v) = self.prefetch {
            arch.mem.prefetch_degree = v;
        }
        Ok(arch)
    }

    /// Spec for a named base design with no overrides.
    pub fn base(name: &str) -> ArchSpec {
        ArchSpec {
            base: Some(KeyStr::new(name)),
            ..ArchSpec::default()
        }
    }
}

/// One CPI prediction query: a program region plus a microarchitecture.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PredictRequest {
    /// Client-chosen correlation id, echoed in the response.
    #[serde(default)]
    pub id: u64,
    /// Workload id from the suite (e.g. `"S5"`); see `concorde workloads`.
    pub workload: KeyStr,
    /// Trace index within the workload.
    #[serde(default)]
    pub trace: u32,
    /// Region start offset in instructions.
    #[serde(default)]
    pub start: u64,
    /// Region length override in instructions (0 = the service profile's).
    #[serde(default)]
    pub len: u32,
    /// Microarchitecture to predict for.
    #[serde(default)]
    pub arch: ArchSpec,
    /// Miss-wait deadline in milliseconds. On a cache miss, if the projected
    /// wait for this request's feature-store build exceeds the deadline, the
    /// service answers the analytic min-bound immediately (`approx: true`,
    /// `reason: "shed"`) instead of parking — see
    /// [`ServeConfig::miss_slo`](crate::ServeConfig::miss_slo). Overrides the
    /// server's `--miss-slo-ms` for this request; absent means the server
    /// default applies. Ignored on cache hits, which are always exact.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// QoS class: labels this request's latency histograms and selects the
    /// per-class miss-wait SLO and EDF deadline (`interactive` default,
    /// `batch` for sweep traffic).
    #[serde(default)]
    pub class: RequestClass,
    /// Shed-answer upgrade signaling: when `true` and this request is shed
    /// (`approx: true`), the server sends a follow-up
    /// `{"type": "upgrade", "cpi": ...}` line with the exact prediction once
    /// the feature store lands — so the client need not poll. A notify
    /// request always keeps its exact build registered (it counts as a
    /// waiter for the speculative-build backstop).
    #[serde(default)]
    pub notify: bool,
    /// Feature-schema version pin: when present, the request is answered
    /// with a typed `{"type": "error", "reason": "schema_mismatch"}` unless
    /// it equals the server's `SCHEMA_VERSION` — a layout drift surfaces as
    /// an explicit error instead of a silently wrong store layout.
    #[serde(default)]
    pub schema_version: Option<u32>,
}

impl PredictRequest {
    /// Request for `workload` on `arch` with defaults elsewhere.
    pub fn new(id: u64, workload: &str, arch: ArchSpec) -> Self {
        PredictRequest {
            id,
            workload: KeyStr::new(workload),
            trace: 0,
            start: 0,
            len: 0,
            arch,
            deadline_ms: None,
            class: RequestClass::Interactive,
            notify: false,
            schema_version: None,
        }
    }
}

/// Prediction result (or error) for one request.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Predicted CPI; absent on error.
    pub cpi: Option<f64>,
    /// Error message; absent on success.
    pub error: Option<String>,
    /// Whether the region's feature store was already cached.
    pub cached: bool,
    /// True when `cpi` is a degraded estimate (the analytic min-bound), not
    /// the exact model prediction — see `reason`. Never set on a cache hit:
    /// hits are always answered exactly.
    pub approx: bool,
    /// Why the answer is approximate or what kind of error this is:
    /// `"shed"` (the precompute-pool backlog exceeded the request's
    /// miss-wait deadline) on degraded answers, `"schema_mismatch"` on the
    /// typed schema-pin error. `null` otherwise — test `approx`/`error`,
    /// not key presence, to classify a response.
    pub reason: Option<String>,
    /// Message kind, serialized as `"type"`: `None` for ordinary replies,
    /// `"upgrade"` for the out-of-band exact-answer follow-up to a shed
    /// response with `notify: true`, `"error"` for typed errors
    /// (e.g. `reason: "schema_mismatch"`).
    pub kind: Option<String>,
    /// End-to-end service latency in microseconds (enqueue → response).
    pub micros: u64,
}

// Manual (de)serialization: the derive shim has no `rename`, and the wire
// field for `kind` must be `"type"` (`{"type": "upgrade"}` /
// `{"type": "error"}` — the same convention as the TCP `busy` line). Field
// set and defaults otherwise mirror what the derive produced, so legacy
// response lines parse unchanged.
impl Serialize for PredictResponse {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("id".to_string(), self.id.to_content()),
            ("cpi".to_string(), self.cpi.to_content()),
            ("error".to_string(), self.error.to_content()),
            ("cached".to_string(), self.cached.to_content()),
            ("approx".to_string(), self.approx.to_content()),
            ("reason".to_string(), self.reason.to_content()),
            ("type".to_string(), self.kind.to_content()),
            ("micros".to_string(), self.micros.to_content()),
        ])
    }
}

impl Deserialize for PredictResponse {
    fn from_content(c: &Content) -> Result<Self, serde::Error> {
        let m = c
            .as_map()
            .ok_or_else(|| serde::Error::custom("PredictResponse must be a map"))?;
        fn field<T: Deserialize + Default>(
            m: &[(String, Content)],
            key: &str,
        ) -> Result<T, serde::Error> {
            match serde::map_get(m, key) {
                None | Some(Content::Null) => Ok(T::default()),
                Some(v) => T::from_content(v),
            }
        }
        Ok(PredictResponse {
            id: field(m, "id")?,
            cpi: field(m, "cpi")?,
            error: field(m, "error")?,
            cached: field(m, "cached")?,
            approx: field(m, "approx")?,
            reason: field(m, "reason")?,
            kind: field(m, "type")?,
            micros: field(m, "micros")?,
        })
    }
}

impl PredictResponse {
    /// Successful (exact) response.
    pub fn ok(id: u64, cpi: f64, cached: bool, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: Some(cpi),
            error: None,
            cached,
            approx: false,
            reason: None,
            kind: None,
            micros,
        }
    }

    /// Degraded (load-shed) response: the analytic min-bound CPI, flagged so
    /// clients can distinguish it from an exact answer.
    pub fn shed(id: u64, cpi: f64, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: Some(cpi),
            error: None,
            cached: false,
            approx: true,
            reason: Some("shed".to_string()),
            kind: None,
            micros,
        }
    }

    /// Out-of-band follow-up to a shed answer for a `notify: true` request:
    /// the exact model CPI, pushed once the feature store lands. `micros` is
    /// the total enqueue → upgrade latency.
    pub fn upgrade(id: u64, cpi: f64, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: Some(cpi),
            error: None,
            cached: false,
            approx: false,
            reason: None,
            kind: Some("upgrade".to_string()),
            micros,
        }
    }

    /// Error response.
    pub fn err(id: u64, msg: impl Into<String>, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: None,
            error: Some(msg.into()),
            cached: false,
            approx: false,
            reason: None,
            kind: None,
            micros,
        }
    }

    /// Typed schema-pin rejection: the request's `schema_version` does not
    /// match the server's `SCHEMA_VERSION`. Carries `type: "error"` and
    /// `reason: "schema_mismatch"` so clients can branch without string
    /// matching the human-readable message.
    pub fn schema_mismatch(id: u64, requested: u32, served: u32, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: None,
            error: Some(format!(
                "schema mismatch: request pinned v{requested}, server speaks v{served}"
            )),
            cached: false,
            approx: false,
            reason: Some("schema_mismatch".to_string()),
            kind: Some("error".to_string()),
            micros,
        }
    }

    /// Typed internal-failure response: a worker or build panicked while
    /// serving the request. Carries `type: "error"` and `reason: "internal"`
    /// so clients can branch (e.g. retry) without string-matching the
    /// human-readable message.
    pub fn internal(id: u64, msg: impl std::fmt::Display, micros: u64) -> Self {
        PredictResponse {
            id,
            cpi: None,
            error: Some(format!("internal error: {msg}")),
            cached: false,
            approx: false,
            reason: Some("internal".to_string()),
            kind: Some("error".to_string()),
            micros,
        }
    }

    /// True for typed `{"type":"upgrade"}` follow-up lines.
    pub fn is_upgrade(&self) -> bool {
        self.kind.as_deref() == Some("upgrade")
    }

    /// Appends this response's JSON encoding to `out` — byte-identical to
    /// `serde_json::to_string(self)` but with zero heap allocations (the
    /// warm-path encoder the per-connection reply buffer reuses).
    pub fn encode_json_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push_str("{\"id\":");
        let _ = write!(out, "{}", self.id);
        out.push_str(",\"cpi\":");
        encode_f64_opt(out, self.cpi);
        out.push_str(",\"error\":");
        encode_str_opt(out, self.error.as_deref());
        out.push_str(",\"cached\":");
        out.push_str(if self.cached { "true" } else { "false" });
        out.push_str(",\"approx\":");
        out.push_str(if self.approx { "true" } else { "false" });
        out.push_str(",\"reason\":");
        encode_str_opt(out, self.reason.as_deref());
        out.push_str(",\"type\":");
        encode_str_opt(out, self.kind.as_deref());
        out.push_str(",\"micros\":");
        let _ = write!(out, "{}", self.micros);
        out.push('}');
    }
}

// ---------------------------------------------------------------------------
// Wire fast path: single-pass request decode + allocation-free reply encode
// ---------------------------------------------------------------------------
//
// The slow path parses every request line twice (`serde_json::from_str` →
// `Value` tree → `from_value::<PredictRequest>`), heap-allocating the whole
// intermediate tree per line. The decoder below walks the line once,
// materializing `PredictRequest`s directly (inline `KeyStr` workloads — no
// heap for typical requests). It is *conservative*: anything it is not
// certain it decodes exactly like the `Value` path — control objects
// (`{"cmd":…}`), malformed JSON, type mismatches, pathological inputs —
// returns a [`FastMiss`] and the caller re-parses on the slow path, which
// stays the single source of truth for error messages and `cmd` handling.
// Observable behavior is therefore identical by construction; the proptest
// suite additionally pins value-equivalence for everything the fast path
// does accept.

/// Shape of a successfully fast-decoded request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedShape {
    /// The line was a single request object (one request appended).
    Single,
    /// The line was an array of requests (zero or more appended, in order).
    Batch,
}

/// Why the fast decoder declined a line (caller falls back to the `Value`
/// path, which owns error messages and control commands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastMiss {
    /// A top-level object carrying a `"cmd"` key — the control path.
    Cmd,
    /// Malformed JSON, a type mismatch, or a shape the fast path does not
    /// commit to decoding identically.
    Fallback,
}

/// Decodes one request line in a single pass.
///
/// On success appends the decoded request(s) to `out` (cleared first) and
/// returns the line shape. On [`FastMiss`] the caller must re-parse via the
/// `Value` path; `out` is left cleared.
///
/// # Errors
///
/// [`FastMiss::Cmd`] for control objects, [`FastMiss::Fallback`] for
/// anything the fast path declines (see the module comment).
pub fn decode_request_line(
    line: &str,
    out: &mut Vec<PredictRequest>,
) -> Result<DecodedShape, FastMiss> {
    out.clear();
    let mut p = FastParser {
        b: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let shape = match p.peek() {
        Some(b'{') => {
            let req = p.request_obj(true)?;
            out.push(req);
            DecodedShape::Single
        }
        Some(b'[') => {
            p.pos += 1;
            p.skip_ws();
            if p.peek() == Some(b']') {
                p.pos += 1;
            } else {
                loop {
                    p.skip_ws();
                    if p.peek() != Some(b'{') {
                        out.clear();
                        return Err(FastMiss::Fallback);
                    }
                    let req = p.request_obj(false)?;
                    out.push(req);
                    p.skip_ws();
                    match p.peek() {
                        Some(b',') => p.pos += 1,
                        Some(b']') => {
                            p.pos += 1;
                            break;
                        }
                        _ => {
                            out.clear();
                            return Err(FastMiss::Fallback);
                        }
                    }
                }
            }
            DecodedShape::Batch
        }
        _ => return Err(FastMiss::Fallback),
    };
    p.skip_ws();
    if p.pos != p.b.len() {
        out.clear();
        return Err(FastMiss::Fallback);
    }
    Ok(shape)
}

/// Number classification mirroring the `serde_json` shim's parser: integer
/// text becomes `U64`/`I64` (overflow falls back to `F64`), anything with a
/// `.` or exponent is `F64`.
#[derive(Clone, Copy)]
enum Num {
    U(u64),
    I(i64),
    F(f64),
}

impl Num {
    /// The shim's `u64::from_content` acceptance: `U64`, non-negative `I64`,
    /// and non-negative integral `F64` (saturating cast).
    fn as_u64(self) -> Result<u64, FastMiss> {
        match self {
            Num::U(v) => Ok(v),
            Num::I(v) if v >= 0 => Ok(v as u64),
            Num::F(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
            _ => Err(FastMiss::Fallback),
        }
    }

    fn as_u32(self) -> Result<u32, FastMiss> {
        u32::try_from(self.as_u64()?).map_err(|_| FastMiss::Fallback)
    }
}

/// Fixed-capacity unescape buffer for keys and short string values. Longer
/// strings set `overflow` (the parse stays valid; the caller falls back or
/// treats the key as unknown).
struct SmallStr {
    buf: [u8; SMALL_STR_CAP],
    len: usize,
    overflow: bool,
}

const SMALL_STR_CAP: usize = 64;

impl SmallStr {
    fn new() -> Self {
        SmallStr {
            buf: [0; SMALL_STR_CAP],
            len: 0,
            overflow: false,
        }
    }

    fn push_bytes(&mut self, s: &[u8]) {
        if self.len + s.len() <= SMALL_STR_CAP {
            self.buf[self.len..self.len + s.len()].copy_from_slice(s);
            self.len += s.len();
        } else {
            self.overflow = true;
        }
    }

    fn push_char(&mut self, c: char) {
        let mut tmp = [0u8; 4];
        self.push_bytes(c.encode_utf8(&mut tmp).as_bytes());
    }

    /// The unescaped contents, or `None` if they did not fit.
    fn as_str(&self) -> Option<&str> {
        if self.overflow {
            return None;
        }
        // Only built from validated pushes of `&str` slices / `char`s.
        Some(unsafe { std::str::from_utf8_unchecked(&self.buf[..self.len]) })
    }
}

struct FastParser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> FastParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), FastMiss> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(FastMiss::Fallback)
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), FastMiss> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(FastMiss::Fallback)
        }
    }

    /// Parses a JSON string (validating escapes exactly like the shim
    /// parser) into `dst`.
    fn string_into(&mut self, dst: &mut SmallStr) -> Result<(), FastMiss> {
        self.eat(b'"')?;
        loop {
            match self.peek() {
                None => return Err(FastMiss::Fallback),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(FastMiss::Fallback)?;
                    self.pos += 1;
                    match esc {
                        b'"' => dst.push_bytes(b"\""),
                        b'\\' => dst.push_bytes(b"\\"),
                        b'/' => dst.push_bytes(b"/"),
                        b'b' => dst.push_bytes(b"\x08"),
                        b'f' => dst.push_bytes(b"\x0c"),
                        b'n' => dst.push_bytes(b"\n"),
                        b'r' => dst.push_bytes(b"\r"),
                        b't' => dst.push_bytes(b"\t"),
                        b'u' => {
                            let hi = self.hex4()?;
                            // Mirror the shim's surrogate-pair combination
                            // (including its wrapping low-half arithmetic).
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + lo.wrapping_sub(0xDC00)
                                } else {
                                    return Err(FastMiss::Fallback);
                                }
                            } else {
                                hi
                            };
                            dst.push_char(char::from_u32(cp).ok_or(FastMiss::Fallback)?);
                        }
                        _ => return Err(FastMiss::Fallback),
                    }
                }
                Some(_) => {
                    // The input is `&str`, so a raw span up to the next
                    // quote/backslash is valid UTF-8; copy it wholesale.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    dst.push_bytes(&self.b[start..self.pos]);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, FastMiss> {
        if self.pos + 4 > self.b.len() {
            return Err(FastMiss::Fallback);
        }
        let s =
            std::str::from_utf8(&self.b[self.pos..self.pos + 4]).map_err(|_| FastMiss::Fallback)?;
        let v = u32::from_str_radix(s, 16).map_err(|_| FastMiss::Fallback)?;
        self.pos += 4;
        Ok(v)
    }

    /// Consumes a number with exactly the shim parser's classification.
    fn number(&mut self) -> Result<Num, FastMiss> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|_| FastMiss::Fallback)?;
        if is_float {
            text.parse::<f64>()
                .map(Num::F)
                .map_err(|_| FastMiss::Fallback)
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(v) => Ok(Num::I(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Num::F)
                    .map_err(|_| FastMiss::Fallback),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Ok(Num::U(v)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Num::F)
                    .map_err(|_| FastMiss::Fallback),
            }
        }
    }

    /// Validates and discards any JSON value (unknown-key payloads).
    fn skip_value(&mut self) -> Result<(), FastMiss> {
        match self.peek() {
            Some(b'n') => self.literal("null"),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'"') => {
                let mut sink = SmallStr::new();
                self.string_into(&mut sink)
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(FastMiss::Fallback),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.skip_ws();
                    let mut sink = SmallStr::new();
                    self.string_into(&mut sink)?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    self.skip_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(FastMiss::Fallback),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number().map(|_| ()),
            _ => Err(FastMiss::Fallback),
        }
    }

    fn number_value(&mut self) -> Result<Num, FastMiss> {
        match self.peek() {
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            // Wrong type (string/bool/null/object where a number belongs):
            // the slow path owns the error message.
            _ => Err(FastMiss::Fallback),
        }
    }

    /// `null` → `None`, number → `Some(u64)` (shim `Option<u64>` semantics).
    fn opt_u64_value(&mut self) -> Result<Option<u64>, FastMiss> {
        if self.peek() == Some(b'n') {
            self.literal("null")?;
            return Ok(None);
        }
        Ok(Some(self.number_value()?.as_u64()?))
    }

    fn opt_u32_value(&mut self) -> Result<Option<u32>, FastMiss> {
        if self.peek() == Some(b'n') {
            self.literal("null")?;
            return Ok(None);
        }
        Ok(Some(self.number_value()?.as_u32()?))
    }

    fn bool_value(&mut self) -> Result<bool, FastMiss> {
        match self.peek() {
            Some(b't') => self.literal("true").map(|()| true),
            Some(b'f') => self.literal("false").map(|()| false),
            _ => Err(FastMiss::Fallback),
        }
    }

    /// A short string value (workload ids, base names, class labels).
    fn small_string_value(&mut self) -> Result<SmallStr, FastMiss> {
        if self.peek() != Some(b'"') {
            return Err(FastMiss::Fallback);
        }
        let mut s = SmallStr::new();
        self.string_into(&mut s)?;
        if s.overflow {
            // Valid JSON, just longer than the fast path commits to; the
            // slow path decodes it identically.
            return Err(FastMiss::Fallback);
        }
        Ok(s)
    }

    fn arch_obj(&mut self) -> Result<ArchSpec, FastMiss> {
        self.eat(b'{')?;
        let mut spec = ArchSpec::default();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(spec);
        }
        let mut key = SmallStr::new();
        loop {
            self.skip_ws();
            key.len = 0;
            key.overflow = false;
            self.string_into(&mut key)?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            // Duplicate keys overwrite (the `Value` path's last-wins rule).
            match key.as_str() {
                Some("base") => {
                    if self.peek() == Some(b'n') {
                        self.literal("null")?;
                        spec.base = None;
                    } else {
                        spec.base = Some(KeyStr::new(
                            self.small_string_value()?
                                .as_str()
                                .ok_or(FastMiss::Fallback)?,
                        ));
                    }
                }
                Some("rob") => spec.rob = self.opt_u32_value()?,
                Some("lq") => spec.lq = self.opt_u32_value()?,
                Some("sq") => spec.sq = self.opt_u32_value()?,
                Some("alu") => spec.alu = self.opt_u32_value()?,
                Some("fp") => spec.fp = self.opt_u32_value()?,
                Some("ls") => spec.ls = self.opt_u32_value()?,
                Some("fetch") => spec.fetch = self.opt_u32_value()?,
                Some("decode") => spec.decode = self.opt_u32_value()?,
                Some("rename") => spec.rename = self.opt_u32_value()?,
                Some("commit") => spec.commit = self.opt_u32_value()?,
                Some("l1d") => spec.l1d = self.opt_u32_value()?,
                Some("l1i") => spec.l1i = self.opt_u32_value()?,
                Some("l2") => spec.l2 = self.opt_u32_value()?,
                Some("prefetch") => spec.prefetch = self.opt_u32_value()?,
                _ => self.skip_value()?,
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(spec);
                }
                _ => return Err(FastMiss::Fallback),
            }
        }
    }

    fn request_obj(&mut self, top_level: bool) -> Result<PredictRequest, FastMiss> {
        self.eat(b'{')?;
        let mut req = PredictRequest::default();
        let mut have_workload = false;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            // `{}` is a missing-`workload` error; slow path words it.
            return Err(FastMiss::Fallback);
        }
        let mut key = SmallStr::new();
        loop {
            self.skip_ws();
            key.len = 0;
            key.overflow = false;
            self.string_into(&mut key)?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            match key.as_str() {
                // A top-level object with a `cmd` key is a control command,
                // whatever else it carries.
                Some("cmd") if top_level => return Err(FastMiss::Cmd),
                Some("id") => req.id = self.number_value()?.as_u64()?,
                Some("workload") => {
                    req.workload = KeyStr::new(
                        self.small_string_value()?
                            .as_str()
                            .ok_or(FastMiss::Fallback)?,
                    );
                    have_workload = true;
                }
                Some("trace") => req.trace = self.number_value()?.as_u32()?,
                Some("start") => req.start = self.number_value()?.as_u64()?,
                Some("len") => req.len = self.number_value()?.as_u32()?,
                Some("arch") => {
                    if self.peek() != Some(b'{') {
                        return Err(FastMiss::Fallback);
                    }
                    req.arch = self.arch_obj()?;
                }
                Some("deadline_ms") => req.deadline_ms = self.opt_u64_value()?,
                Some("class") => {
                    let s = self.small_string_value()?;
                    req.class = RequestClass::parse(s.as_str().ok_or(FastMiss::Fallback)?)
                        .ok_or(FastMiss::Fallback)?;
                }
                Some("notify") => req.notify = self.bool_value()?,
                Some("schema_version") => req.schema_version = self.opt_u32_value()?,
                _ => self.skip_value()?,
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(FastMiss::Fallback),
            }
        }
        if !have_workload {
            return Err(FastMiss::Fallback);
        }
        Ok(req)
    }
}

/// Writes `Some(v)` with the shim's exact float formatting (`{v}` plus a
/// `.0` suffix when the text has no `.`/`e`/`E`), `None`/non-finite as
/// `null` — without allocating.
fn encode_f64_opt(out: &mut String, v: Option<f64>) {
    use std::fmt::Write as _;
    match v {
        Some(v) if v.is_finite() => {
            // Write straight into the output buffer, then inspect only the
            // appended bytes. `Display` for f64 is usually ≤ 24 bytes but
            // subnormals expand to ~770 digits — no fixed stack buffer is
            // safe, and a reused `String` stays allocation-free once warm.
            let start = out.len();
            let _ = write!(out, "{v}");
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        _ => out.push_str("null"),
    }
}

/// Writes `Some(s)` escaped exactly like the shim's `write_escaped`,
/// `None` as `null`.
fn encode_str_opt(out: &mut String, s: Option<&str>) {
    let Some(s) = s else {
        out.push_str("null");
        return;
    };
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                const HEX: &[u8; 16] = b"0123456789abcdef";
                let v = c as u32;
                out.push_str("\\u00");
                out.push(HEX[(v >> 4) as usize] as char);
                out.push(HEX[(v & 0xf) as usize] as char);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_spec_resolves_overrides() {
        let spec: ArchSpec =
            serde_json::from_str(r#"{"base": "big", "rob": 64, "l1d": 32}"#).unwrap();
        let arch = spec.resolve().unwrap();
        assert_eq!(arch.rob_size, 64);
        assert_eq!(arch.mem.l1d_kb, 32);
        // Untouched fields keep the big-core values.
        assert_eq!(arch.lq_size, MicroArch::big_core().lq_size);
    }

    #[test]
    fn empty_spec_is_n1() {
        let spec: ArchSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(spec.resolve().unwrap(), MicroArch::arm_n1());
    }

    #[test]
    fn unknown_base_is_an_error() {
        assert!(ArchSpec::base("epyc").resolve().is_err());
    }

    #[test]
    fn request_roundtrip() {
        let req = PredictRequest::new(9, "S5", ArchSpec::base("n1"));
        let line = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.workload, "S5");
        // Missing optional fields deserialize to defaults.
        let sparse: PredictRequest = serde_json::from_str(r#"{"workload": "C1"}"#).unwrap();
        assert_eq!(sparse.trace, 0);
        assert_eq!(sparse.arch, ArchSpec::default());
        assert_eq!(sparse.deadline_ms, None);
        // An explicit deadline round-trips.
        let tight: PredictRequest =
            serde_json::from_str(r#"{"workload": "C1", "deadline_ms": 5}"#).unwrap();
        assert_eq!(tight.deadline_ms, Some(5));
        // QoS fields default off…
        assert_eq!(sparse.class, RequestClass::Interactive);
        assert!(!sparse.notify);
        assert_eq!(sparse.schema_version, None);
        // …and round-trip when set.
        let qos: PredictRequest = serde_json::from_str(
            r#"{"workload": "C1", "class": "batch", "notify": true, "schema_version": 3}"#,
        )
        .unwrap();
        assert_eq!(qos.class, RequestClass::Batch);
        assert!(qos.notify);
        assert_eq!(qos.schema_version, Some(3));
        let line = serde_json::to_string(&qos).unwrap();
        let back: PredictRequest = serde_json::from_str(&line).unwrap();
        assert_eq!(back.class, RequestClass::Batch);
        assert!(back.notify);
    }

    #[test]
    fn request_class_rejects_unknown_names() {
        assert!(
            serde_json::from_str::<PredictRequest>(r#"{"workload": "C1", "class": "vip"}"#)
                .is_err()
        );
        assert_eq!(
            RequestClass::parse("interactive"),
            Some(RequestClass::Interactive)
        );
        assert_eq!(RequestClass::parse("batch"), Some(RequestClass::Batch));
        assert_eq!(RequestClass::parse("Batch"), None);
        for (i, c) in RequestClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(RequestClass::parse(c.name()), Some(*c));
        }
    }

    #[test]
    fn upgrade_and_typed_error_roundtrip() {
        let up = PredictResponse::upgrade(7, 1.25, 900);
        assert!(up.is_upgrade() && !up.approx);
        let line = serde_json::to_string(&up).unwrap();
        // The wire key is `type`, not `kind`.
        assert!(line.contains(r#""type":"upgrade""#), "{line}");
        assert!(!line.contains("kind"), "{line}");
        let back: PredictResponse = serde_json::from_str(&line).unwrap();
        assert!(back.is_upgrade());
        assert_eq!(back.cpi, Some(1.25));

        let err = PredictResponse::schema_mismatch(3, 2, 3, 10);
        assert_eq!(err.kind.as_deref(), Some("error"));
        assert_eq!(err.reason.as_deref(), Some("schema_mismatch"));
        let back: PredictResponse =
            serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert_eq!(back.kind.as_deref(), Some("error"));
        assert_eq!(back.reason.as_deref(), Some("schema_mismatch"));
        assert!(back.error.unwrap().contains("v2"));
        // Ordinary replies carry `type: null` and parse as kind = None.
        let ok: PredictResponse = serde_json::from_str(
            &serde_json::to_string(&PredictResponse::ok(1, 1.0, false, 2)).unwrap(),
        )
        .unwrap();
        assert!(ok.kind.is_none() && !ok.is_upgrade());

        // A worker-panic answer is the typed `reason: "internal"` error.
        let internal = PredictResponse::internal(9, "eval panicked", 42);
        assert_eq!(internal.kind.as_deref(), Some("error"));
        assert_eq!(internal.reason.as_deref(), Some("internal"));
        assert!(internal.cpi.is_none() && !internal.approx);
        let back: PredictResponse =
            serde_json::from_str(&serde_json::to_string(&internal).unwrap()).unwrap();
        assert_eq!(back.reason.as_deref(), Some("internal"));
        assert!(back
            .error
            .unwrap()
            .contains("internal error: eval panicked"));
    }

    #[test]
    fn shed_response_is_flagged_approximate() {
        let shed = PredictResponse::shed(4, 1.5, 12);
        assert!(shed.approx && !shed.cached);
        assert_eq!(shed.reason.as_deref(), Some("shed"));
        let back: PredictResponse =
            serde_json::from_str(&serde_json::to_string(&shed).unwrap()).unwrap();
        assert!(back.approx);
        assert_eq!(back.reason.as_deref(), Some("shed"));
        // Exact responses never carry the flag, and legacy response lines
        // (no `approx` field) parse as exact.
        assert!(!PredictResponse::ok(1, 1.0, true, 1).approx);
        let legacy: PredictResponse =
            serde_json::from_str(r#"{"id": 1, "cpi": 2.0, "cached": true}"#).unwrap();
        assert!(!legacy.approx && legacy.reason.is_none());
    }
}
