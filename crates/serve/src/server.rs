//! TCP front end: line-delimited JSON over a listener, one thread per
//! connection (bounded by [`ServeConfig::max_connections`](crate::ServeConfig::max_connections)),
//! all connections feeding the shared batching queue (so concurrent clients
//! batch together).
//!
//! Protocol, one JSON document per line:
//!
//! - `{...}` with a `workload` field → [`PredictRequest`] → one response line
//!   (an optional `deadline_ms` caps the miss wait: past it the server sheds
//!   the request to the flagged analytic min-bound, `"approx": true`; a
//!   `"notify": true` request that was shed additionally receives a later
//!   pushed `{"type": "upgrade"}` line carrying the exact CPI once its
//!   feature store lands)
//! - `[{...}, ...]` → batch of requests → one array response line
//! - `{"cmd": "ping"}` → `{"ok": true}`
//! - `{"cmd": "metrics"}` → metrics snapshot (JSON); with
//!   `"format": "prometheus"`, `{"text": "..."}` carrying the same
//!   Prometheus exposition `GET /metrics` serves
//! - `{"cmd": "stats"}` → metrics + cache budget and per-shard occupancy
//! - `{"cmd": "workloads"}` → the served workload catalog
//! - `{"cmd": "schema"}` → the served feature schema (version + blocks)
//! - `{"cmd": "drain"}` → begins a graceful drain: the listener stops
//!   accepting, live connections answer their in-flight requests and
//!   close, and [`PredictionService::serve_tcp`] returns
//!
//! Connections are hardened against abuse: request lines are read through
//! a bounded reader that never buffers more than
//! [`ServeConfig::max_line_bytes`](crate::ServeConfig::max_line_bytes) for
//! one line (oversized → one typed `{"reason": "oversized"}` error line +
//! close), and a connection idle longer than
//! [`ServeConfig::read_timeout`](crate::ServeConfig::read_timeout) (when
//! configured) is reaped.
//!
//! Request lines take a zero-allocation fast path once a connection is
//! warm: a single-pass borrowed decoder
//! ([`decode_request_line`](crate::protocol::decode_request_line)) fills a
//! reusable request buffer, the whole batch enqueues under one shard lock
//! against recycled response slots, and the reply is encoded into a
//! per-connection buffer and written with one `write` + `flush`. Control
//! commands, malformed input, and anything the fast decoder declines fall
//! back to the `serde_json::Value` path, which stays the single source of
//! truth for error messages.
//!
//! A connection arriving past the cap is answered with one typed error line
//! — `{"error": ..., "type": "busy", ...}` — and closed, so clients can
//! distinguish "retry later" from a protocol failure. Because upgrade lines
//! are pushed whenever their store lands, replies on a connection that uses
//! `notify` are not strictly request-ordered — clients dispatch on the
//! `type` field (see [`TcpClient::wait_upgrade`](crate::TcpClient::wait_upgrade)).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde_json::{json, Value};

use crate::protocol::{decode_request_line, DecodedShape, PredictRequest, PredictResponse};
use crate::service::{submit_many, submit_slot, Job, PredictionService};
use crate::slots::SlotReceiver;
use crate::{Client, ServeError};

/// The served workload catalog (shared with `concorde workloads --json`):
/// the 29-program suite plus any dynamic workloads (e.g. resolved
/// `riscv:<path>` binaries) registered in this process.
pub fn workload_catalog() -> Value {
    let entry = |w: &concorde_trace::WorkloadSpec| {
        json!({
            "id": w.id,
            "name": w.name,
            "class": format!("{:?}", w.class),
            "traces": w.n_traces,
            "trace_len": w.trace_len,
        })
    };
    let mut entries: Vec<Value> = concorde_trace::suite().iter().map(entry).collect();
    for id in concorde_trace::dynamic_ids() {
        if let Ok(r) = concorde_trace::resolve_workload(&id) {
            entries.push(entry(r.spec()));
        }
    }
    json!(entries)
}

/// Decrements the live-connection count when a connection thread ends,
/// however it ends.
struct ConnSlot {
    active: Arc<AtomicUsize>,
    service: Arc<crate::service::Shared>,
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.service
            .metrics
            .conn_active
            .store(now, Ordering::Relaxed);
    }
}

impl PredictionService {
    /// Serves the protocol on `listener` until the service drains
    /// ([`PredictionService::begin_drain`], the CLI's `SIGTERM` handler, or
    /// a client's `{"cmd": "drain"}`), admitting at most
    /// [`ServeConfig::max_connections`](crate::ServeConfig::max_connections)
    /// concurrent connections; excess connections receive one typed `busy`
    /// error line and are closed.
    ///
    /// On drain the listener stops accepting, live connections answer
    /// their in-flight requests and close, and the call returns once the
    /// last connection ends (with a 60 s backstop for a wedged client).
    ///
    /// # Errors
    ///
    /// Returns accept-loop errors; per-connection errors only end that
    /// connection.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        let limit = self.config().max_connections.max(1);
        let active = Arc::new(AtomicUsize::new(0));
        // Non-blocking accept + poll: the loop notices a drain begun on
        // another thread (signal watcher, drain cmd handler) within one
        // poll interval, without needing a wake-up connection.
        listener.set_nonblocking(true)?;
        while !self.is_draining() {
            let mut stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // Accepted sockets must block again: the per-connection reader
            // paces itself with read timeouts, not `O_NONBLOCK`.
            stream.set_nonblocking(false)?;
            if active
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < limit).then_some(n + 1)
                })
                .is_err()
            {
                self.shared
                    .metrics
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let reply = json!({
                    "error": format!("server busy: connection limit {limit} reached"),
                    "type": "busy",
                    "max_connections": limit,
                });
                let _ = writeln!(stream, "{reply}");
                continue;
            }
            self.shared
                .metrics
                .conn_active
                .store(active.load(Ordering::SeqCst), Ordering::Relaxed);
            let slot = ConnSlot {
                active: Arc::clone(&active),
                service: Arc::clone(&self.shared),
            };
            let client = self.client();
            let spawned = std::thread::Builder::new()
                .name("concorde-serve-conn".to_string())
                .spawn(move || {
                    let _slot = slot;
                    let _ = handle_connection(client, stream);
                });
            if let Err(e) = spawned {
                // Thread exhaustion is wire-reachable pressure (a connection
                // flood racing the cap): answer like `busy` and keep
                // accepting instead of killing the listener. The moved
                // stream is gone, so the client simply sees the close; the
                // `ConnSlot` it carried has already released the count.
                eprintln!("[serve] cannot spawn connection handler: {e}");
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        // Drain: live connections observe the flag within one read-timeout
        // poll, answer their in-flight line, and close. The backstop bounds
        // a wedged handler, not the common case.
        let deadline = Instant::now() + Duration::from_secs(60);
        while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(())
    }
}

/// Poll interval for per-connection socket reads: short enough that a
/// drain (or the idle clock) is noticed promptly, long enough to stay off
/// the CPU while a connection sits quiet.
const READ_POLL: Duration = Duration::from_millis(250);

/// Outcome of one bounded, timed protocol-line read.
enum LineRead {
    /// A complete line (newline stripped) is in the buffer.
    Line,
    /// Clean EOF — the client closed.
    Eof,
    /// The line exceeded the byte cap; the connection must close.
    TooLong,
    /// No bytes arrived for longer than the configured idle timeout.
    IdleTimeout,
    /// The server is draining and the connection is idle between lines.
    Draining,
}

/// Reads one `\n`-terminated line into `buf` (newline stripped), enforcing
/// the byte cap and idle timeout. Unlike `BufReader::read_line`, this never
/// buffers more than roughly `max_len` bytes for one line — a malicious
/// client cannot balloon memory with an endless unterminated line — and it
/// works on raw bytes, so a read timeout splitting a multi-byte UTF-8
/// character mid-line cannot corrupt the eventual parse.
fn read_bounded_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    max_len: usize,
    idle_after: Option<Duration>,
    draining: impl Fn() -> bool,
) -> std::io::Result<LineRead> {
    buf.clear();
    let mut last_progress = Instant::now();
    loop {
        let (consumed, complete) = {
            let available = match reader.fill_buf() {
                Ok(b) => b,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if buf.is_empty() && draining() {
                        return Ok(LineRead::Draining);
                    }
                    if let Some(limit) = idle_after {
                        if last_progress.elapsed() >= limit {
                            return Ok(LineRead::IdleTimeout);
                        }
                    }
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF. A trailing unterminated line still parses, matching
                // the old `read_line` semantics.
                return Ok(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    buf.extend_from_slice(&available[..i]);
                    (i + 1, true)
                }
                None => {
                    buf.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(consumed);
        last_progress = Instant::now();
        if buf.len() > max_len {
            return Ok(LineRead::TooLong);
        }
        if complete {
            return Ok(LineRead::Line);
        }
    }
}

/// The write half of a connection, shared between the request/reply loop
/// and any upgrade-push waiter threads (pushed lines must not interleave
/// mid-reply, so every line goes out under this lock).
type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_line(writer: &SharedWriter, line: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Holds a shed-and-notified request's response channel until the exact
/// answer lands, then pushes the `{"type":"upgrade"}` line. One short-lived
/// thread per notified shed answer: it spends its life blocked on the
/// channel, and the channel closes (ending the thread) as soon as the
/// service answers or drops the job.
fn spawn_upgrade_waiter(rx: mpsc::Receiver<PredictResponse>, writer: SharedWriter) {
    let _ = std::thread::Builder::new()
        .name("concorde-upgrade-push".to_string())
        .spawn(move || {
            if let Ok(resp) = rx.recv() {
                if resp.is_upgrade() {
                    let line = serde_json::to_string(&resp).expect("serialize upgrade");
                    let _ = write_line(&writer, &line);
                }
            }
        });
}

/// Waits for a submitted request's first response; if it was shed and the
/// request asked to be notified, leaves a waiter behind to push the
/// eventual upgrade line.
fn recv_first(
    rx: mpsc::Receiver<PredictResponse>,
    notify: bool,
    writer: &SharedWriter,
) -> Result<PredictResponse, crate::ServeError> {
    let resp = rx.recv().map_err(|_| crate::ServeError::Disconnected)?;
    if notify && resp.approx {
        spawn_upgrade_waiter(rx, Arc::clone(writer));
    }
    Ok(resp)
}

/// Slot-path twin of [`spawn_upgrade_waiter`]: holds the shed request's
/// [`SlotReceiver`] until the exact answer lands, then pushes the
/// `{"type":"upgrade"}` line. Dropping the receiver afterwards retires the
/// slot's generation and recycles it.
fn spawn_slot_upgrade_waiter(rx: SlotReceiver, writer: SharedWriter) {
    let _ = std::thread::Builder::new()
        .name("concorde-upgrade-push".to_string())
        .spawn(move || {
            let resp = rx.recv();
            if resp.is_upgrade() {
                let mut line = String::new();
                resp.encode_json_into(&mut line);
                let _ = write_line(&writer, &line);
            }
        });
}

/// One reply owed by the fast path, in request order: a live response slot,
/// or an error response minted at submit time (a failed submission keeps
/// its place in the reply array instead of discarding the batch).
enum Pending {
    Rx(SlotReceiver),
    Err(PredictResponse),
}

/// Per-connection reusable buffers. Once warm, a request line is read,
/// decoded, submitted, received, and answered entirely out of these — zero
/// heap allocations end to end.
#[derive(Default)]
struct ConnScratch {
    reqs: Vec<PredictRequest>,
    notify: Vec<bool>,
    rxs: Vec<SlotReceiver>,
    jobs: Vec<Job>,
    pending: Vec<Pending>,
    out: String,
}

fn handle_connection(client: Client, stream: TcpStream) -> std::io::Result<()> {
    let peer = stream.peer_addr()?;
    crate::metrics::log_connection("open", peer);
    let shared = Arc::clone(client.shared());
    let idle_after = shared.cfg.read_timeout;
    let max_line = shared.cfg.max_line_bytes.max(1);
    // Socket reads always time out at the poll interval (never longer than
    // the idle timeout): the handler re-checks the drain flag and the idle
    // clock between blocking reads.
    let poll = idle_after.map_or(READ_POLL, |t| t.min(READ_POLL));
    stream.set_read_timeout(Some(poll))?;
    let writer: SharedWriter = Arc::new(Mutex::new(stream.try_clone()?));
    let mut reader = BufReader::new(stream);
    let mut raw = Vec::new();
    let mut scratch = ConnScratch::default();
    loop {
        match read_bounded_line(&mut reader, &mut raw, max_line, idle_after, || {
            shared.draining.load(Ordering::SeqCst)
        })? {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Draining | LineRead::IdleTimeout => break,
            LineRead::TooLong => {
                let reply = json!({
                    "error": format!("request line exceeds {max_line} bytes"),
                    "type": "error",
                    "reason": "oversized",
                    "max_line_bytes": max_line,
                });
                let _ = write_line(&writer, &reply.to_string());
                break;
            }
        }
        let line = match std::str::from_utf8(&raw) {
            Ok(l) => l,
            Err(e) => {
                let reply = json!({ "error": format!("malformed JSON: invalid UTF-8: {e}") });
                let _ = write_line(&writer, &reply.to_string());
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        // Warm path: single-pass borrowed decode straight into the scratch
        // request buffer. Anything the fast decoder declines — control
        // objects, malformed JSON, exotic shapes — falls back to the
        // `Value` path, which owns error messages and `cmd` handling.
        match decode_request_line(line, &mut scratch.reqs) {
            Ok(shape) => handle_fast(&client, shape, &writer, &mut scratch)?,
            Err(_) => {
                let reply = handle_line(&client, line, &writer);
                if shared.faults.on_reply() {
                    // Injected mid-reply socket drop: the engine answered,
                    // but the client sees the connection die first.
                    break;
                }
                write_line(&writer, &reply.to_string())?;
            }
        }
        // A draining server finishes the in-flight line, answers it, and
        // closes; the client's next request must reconnect elsewhere.
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    crate::metrics::log_connection("close", peer);
    Ok(())
}

/// The warm wire path: a fast-decoded request line is submitted as one
/// batch against recycled response slots, and the reply is encoded into the
/// connection's reusable buffer — one `write` + `flush` for the whole
/// batch. Submission failures are answered per request, in place, so one
/// failed enqueue never drops replies to requests already submitted.
fn handle_fast(
    client: &Client,
    shape: DecodedShape,
    writer: &SharedWriter,
    s: &mut ConnScratch,
) -> std::io::Result<()> {
    let shared = client.shared();
    s.notify.clear();
    s.notify.extend(s.reqs.iter().map(|r| r.notify));
    s.pending.clear();
    match submit_many(shared, &mut s.reqs, &mut s.rxs, &mut s.jobs) {
        Ok(()) => s.pending.extend(s.rxs.drain(..).map(Pending::Rx)),
        Err(e) if shape == DecodedShape::Single => {
            // Single requests keep the legacy contract: an immediate
            // `{"error": ...}` object (no retry) when the queue is full or
            // the service is shutting down.
            s.reqs.clear();
            let reply = json!({ "error": e.to_string() });
            return write_line(writer, &reply.to_string());
        }
        Err(ServeError::QueueFull) => {
            // The bulk all-or-nothing reservation did not fit; degrade to
            // per-request submission with the same sleep-poll backpressure
            // as `Client::submit_blocking`, which makes progress even when
            // the batch exceeds the entire queue capacity.
            for req in s.reqs.drain(..) {
                let pend = loop {
                    match submit_slot(shared, req.clone()) {
                        Ok(rx) => break Pending::Rx(rx),
                        Err(ServeError::QueueFull) => {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(e) => {
                            break Pending::Err(PredictResponse::err(req.id, e.to_string(), 0))
                        }
                    }
                };
                s.pending.push(pend);
            }
        }
        Err(e) => {
            // Shutting down before anything enqueued: every request in the
            // batch gets its own error response, in order.
            for req in s.reqs.drain(..) {
                s.pending
                    .push(Pending::Err(PredictResponse::err(req.id, e.to_string(), 0)));
            }
        }
    }
    s.out.clear();
    let batch = shape == DecodedShape::Batch;
    if batch {
        s.out.push('[');
    }
    for (i, pend) in s.pending.drain(..).enumerate() {
        if i > 0 {
            s.out.push(',');
        }
        match pend {
            Pending::Err(resp) => resp.encode_json_into(&mut s.out),
            Pending::Rx(rx) => {
                let resp = rx.recv();
                resp.encode_json_into(&mut s.out);
                if s.notify[i] && resp.approx {
                    spawn_slot_upgrade_waiter(rx, Arc::clone(writer));
                }
            }
        }
    }
    if batch {
        s.out.push(']');
    }
    s.out.push('\n');
    if shared.faults.on_reply() {
        // Injected mid-reply socket drop: the engine already answered every
        // slot; the client sees the connection die instead of the reply.
        return Err(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "injected fault: reply dropped",
        ));
    }
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(s.out.as_bytes())?;
    w.flush()
}

fn handle_line(client: &Client, line: &str, writer: &SharedWriter) -> Value {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return json!({ "error": format!("malformed JSON: {e}") }),
    };
    match parsed {
        Value::Array(_) => {
            let reqs: Vec<PredictRequest> = match serde_json::from_value(parsed) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request batch: {e}") }),
            };
            // Mirrors `Client::predict_many` (submit all with backpressure,
            // then collect in order), but keeps each receiver so notified
            // shed answers can leave an upgrade waiter behind. A submission
            // or delivery failure is answered per request, in place — it
            // used to collapse the whole reply into one error object,
            // silently dropping the responses of requests already
            // submitted (and leaving the client unable to match replies to
            // requests).
            let mut pending = Vec::with_capacity(reqs.len());
            for req in reqs {
                let notify = req.notify;
                let id = req.id;
                pending.push((id, notify, client.submit_blocking(req)));
            }
            let mut resps = Vec::with_capacity(pending.len());
            for (id, notify, sub) in pending {
                match sub.and_then(|rx| recv_first(rx, notify, writer)) {
                    Ok(resp) => resps.push(resp),
                    Err(e) => resps.push(PredictResponse::err(id, e.to_string(), 0)),
                }
            }
            serde_json::to_value(&resps).expect("serialize responses")
        }
        Value::Object(ref obj) if obj.contains_key("cmd") => {
            match obj.get("cmd").and_then(Value::as_str) {
                Some("ping") => json!({ "ok": true }),
                Some("metrics") => {
                    if obj.get("format").and_then(Value::as_str) == Some("prometheus") {
                        json!({ "text": client.prometheus_metrics() })
                    } else {
                        serde_json::to_value(&client.service_metrics()).expect("serialize metrics")
                    }
                }
                Some("stats") => {
                    serde_json::to_value(&client.service_stats()).expect("serialize stats")
                }
                Some("drain") => {
                    // Same flag `begin_drain` / the CLI's SIGTERM watcher
                    // set: the accept loop stops admitting, handlers close
                    // after their in-flight line, `serve_tcp` returns.
                    client.shared().draining.store(true, Ordering::SeqCst);
                    json!({ "ok": true, "draining": true })
                }
                Some("workloads") => workload_catalog(),
                Some("schema") => {
                    let mut schema =
                        serde_json::to_value(&client.schema()).expect("serialize schema");
                    // The feature schema describes the store layout; the
                    // model-weight encoding is a serving property, injected
                    // here so wire clients see both in one reply.
                    if let Value::Object(ref mut obj) = schema {
                        obj.insert(
                            "model_encoding".to_string(),
                            Value::String(client.model_encoding().name().to_string()),
                        );
                    }
                    schema
                }
                other => json!({ "error": format!("unknown cmd {other:?}") }),
            }
        }
        obj @ Value::Object(_) => {
            let req: PredictRequest = match serde_json::from_value(obj) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request: {e}") }),
            };
            let notify = req.notify;
            let result = client
                .submit(req)
                .and_then(|rx| recv_first(rx, notify, writer));
            match result {
                Ok(resp) => serde_json::to_value(&resp).expect("serialize response"),
                Err(e) => json!({ "error": e.to_string() }),
            }
        }
        _ => json!({ "error": "expected a JSON object or array" }),
    }
}
