//! TCP front end: line-delimited JSON over a listener, one thread per
//! connection (bounded by [`ServeConfig::max_connections`](crate::ServeConfig::max_connections)),
//! all connections feeding the shared batching queue (so concurrent clients
//! batch together).
//!
//! Protocol, one JSON document per line:
//!
//! - `{...}` with a `workload` field → [`PredictRequest`] → one response line
//!   (an optional `deadline_ms` caps the miss wait: past it the server sheds
//!   the request to the flagged analytic min-bound, `"approx": true`; a
//!   `"notify": true` request that was shed additionally receives a later
//!   pushed `{"type": "upgrade"}` line carrying the exact CPI once its
//!   feature store lands)
//! - `[{...}, ...]` → batch of requests → one array response line
//! - `{"cmd": "ping"}` → `{"ok": true}`
//! - `{"cmd": "metrics"}` → metrics snapshot (JSON); with
//!   `"format": "prometheus"`, `{"text": "..."}` carrying the same
//!   Prometheus exposition `GET /metrics` serves
//! - `{"cmd": "stats"}` → metrics + cache budget and per-shard occupancy
//! - `{"cmd": "workloads"}` → the served workload catalog
//! - `{"cmd": "schema"}` → the served feature schema (version + blocks)
//!
//! A connection arriving past the cap is answered with one typed error line
//! — `{"error": ..., "type": "busy", ...}` — and closed, so clients can
//! distinguish "retry later" from a protocol failure. Because upgrade lines
//! are pushed whenever their store lands, replies on a connection that uses
//! `notify` are not strictly request-ordered — clients dispatch on the
//! `type` field (see [`TcpClient::wait_upgrade`](crate::TcpClient::wait_upgrade)).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use serde_json::{json, Value};

use crate::protocol::{PredictRequest, PredictResponse};
use crate::service::PredictionService;
use crate::Client;

/// The served workload catalog (shared with `concorde workloads --json`).
pub fn workload_catalog() -> Value {
    let entries: Vec<Value> = concorde_trace::suite()
        .iter()
        .map(|w| {
            json!({
                "id": w.id,
                "name": w.name,
                "class": format!("{:?}", w.class),
                "traces": w.n_traces,
                "trace_len": w.trace_len,
            })
        })
        .collect();
    json!(entries)
}

/// Decrements the live-connection count when a connection thread ends,
/// however it ends.
struct ConnSlot {
    active: Arc<AtomicUsize>,
    service: Arc<crate::service::Shared>,
}

impl Drop for ConnSlot {
    fn drop(&mut self) {
        let now = self.active.fetch_sub(1, Ordering::SeqCst) - 1;
        self.service
            .metrics
            .conn_active
            .store(now, Ordering::Relaxed);
    }
}

impl PredictionService {
    /// Serves the protocol on `listener` until the process exits, admitting
    /// at most [`ServeConfig::max_connections`](crate::ServeConfig::max_connections)
    /// concurrent connections; excess connections receive one typed `busy`
    /// error line and are closed.
    ///
    /// # Errors
    ///
    /// Returns accept-loop errors; per-connection errors only end that
    /// connection.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        let limit = self.config().max_connections.max(1);
        let active = Arc::new(AtomicUsize::new(0));
        for stream in listener.incoming() {
            let mut stream = stream?;
            if active
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < limit).then_some(n + 1)
                })
                .is_err()
            {
                self.shared
                    .metrics
                    .busy_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let reply = json!({
                    "error": format!("server busy: connection limit {limit} reached"),
                    "type": "busy",
                    "max_connections": limit,
                });
                let _ = writeln!(stream, "{reply}");
                continue;
            }
            self.shared
                .metrics
                .conn_active
                .store(active.load(Ordering::SeqCst), Ordering::Relaxed);
            let slot = ConnSlot {
                active: Arc::clone(&active),
                service: Arc::clone(&self.shared),
            };
            let client = self.client();
            std::thread::Builder::new()
                .name("concorde-serve-conn".to_string())
                .spawn(move || {
                    let _slot = slot;
                    let _ = handle_connection(client, stream);
                })
                .expect("spawn connection handler");
        }
        Ok(())
    }
}

/// The write half of a connection, shared between the request/reply loop
/// and any upgrade-push waiter threads (pushed lines must not interleave
/// mid-reply, so every line goes out under this lock).
type SharedWriter = Arc<Mutex<TcpStream>>;

fn write_line(writer: &SharedWriter, line: &str) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Holds a shed-and-notified request's response channel until the exact
/// answer lands, then pushes the `{"type":"upgrade"}` line. One short-lived
/// thread per notified shed answer: it spends its life blocked on the
/// channel, and the channel closes (ending the thread) as soon as the
/// service answers or drops the job.
fn spawn_upgrade_waiter(rx: mpsc::Receiver<PredictResponse>, writer: SharedWriter) {
    let _ = std::thread::Builder::new()
        .name("concorde-upgrade-push".to_string())
        .spawn(move || {
            if let Ok(resp) = rx.recv() {
                if resp.is_upgrade() {
                    let line = serde_json::to_string(&resp).expect("serialize upgrade");
                    let _ = write_line(&writer, &line);
                }
            }
        });
}

/// Waits for a submitted request's first response; if it was shed and the
/// request asked to be notified, leaves a waiter behind to push the
/// eventual upgrade line.
fn recv_first(
    rx: mpsc::Receiver<PredictResponse>,
    notify: bool,
    writer: &SharedWriter,
) -> Result<PredictResponse, crate::ServeError> {
    let resp = rx.recv().map_err(|_| crate::ServeError::Disconnected)?;
    if notify && resp.approx {
        spawn_upgrade_waiter(rx, Arc::clone(writer));
    }
    Ok(resp)
}

fn handle_connection(client: Client, stream: TcpStream) -> std::io::Result<()> {
    let peer = stream.peer_addr()?;
    let writer: SharedWriter = Arc::new(Mutex::new(stream.try_clone()?));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&client, &line, &writer);
        write_line(&writer, &reply.to_string())?;
    }
    let _ = peer;
    Ok(())
}

fn handle_line(client: &Client, line: &str, writer: &SharedWriter) -> Value {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return json!({ "error": format!("malformed JSON: {e}") }),
    };
    match parsed {
        Value::Array(_) => {
            let reqs: Vec<PredictRequest> = match serde_json::from_value(parsed) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request batch: {e}") }),
            };
            // Mirrors `Client::predict_many` (submit all with backpressure,
            // then collect in order), but keeps each receiver so notified
            // shed answers can leave an upgrade waiter behind.
            let mut pending = Vec::with_capacity(reqs.len());
            for req in reqs {
                let notify = req.notify;
                match client.submit_blocking(req) {
                    Ok(rx) => pending.push((rx, notify)),
                    Err(e) => return json!({ "error": e.to_string() }),
                }
            }
            let mut resps = Vec::with_capacity(pending.len());
            for (rx, notify) in pending {
                match recv_first(rx, notify, writer) {
                    Ok(resp) => resps.push(resp),
                    Err(e) => return json!({ "error": e.to_string() }),
                }
            }
            serde_json::to_value(&resps).expect("serialize responses")
        }
        Value::Object(ref obj) if obj.contains_key("cmd") => {
            match obj.get("cmd").and_then(Value::as_str) {
                Some("ping") => json!({ "ok": true }),
                Some("metrics") => {
                    if obj.get("format").and_then(Value::as_str) == Some("prometheus") {
                        json!({ "text": client.prometheus_metrics() })
                    } else {
                        serde_json::to_value(&client.service_metrics()).expect("serialize metrics")
                    }
                }
                Some("stats") => {
                    serde_json::to_value(&client.service_stats()).expect("serialize stats")
                }
                Some("workloads") => workload_catalog(),
                Some("schema") => {
                    let mut schema =
                        serde_json::to_value(&client.schema()).expect("serialize schema");
                    // The feature schema describes the store layout; the
                    // model-weight encoding is a serving property, injected
                    // here so wire clients see both in one reply.
                    if let Value::Object(ref mut obj) = schema {
                        obj.insert(
                            "model_encoding".to_string(),
                            Value::String(client.model_encoding().name().to_string()),
                        );
                    }
                    schema
                }
                other => json!({ "error": format!("unknown cmd {other:?}") }),
            }
        }
        obj @ Value::Object(_) => {
            let req: PredictRequest = match serde_json::from_value(obj) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request: {e}") }),
            };
            let notify = req.notify;
            let result = client
                .submit(req)
                .and_then(|rx| recv_first(rx, notify, writer));
            match result {
                Ok(resp) => serde_json::to_value(&resp).expect("serialize response"),
                Err(e) => json!({ "error": e.to_string() }),
            }
        }
        _ => json!({ "error": "expected a JSON object or array" }),
    }
}
