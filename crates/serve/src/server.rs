//! TCP front end: line-delimited JSON over a listener, one thread per
//! connection, all connections feeding the shared batching queue (so
//! concurrent clients batch together).
//!
//! Protocol, one JSON document per line:
//!
//! - `{...}` with a `workload` field → [`PredictRequest`] → one response line
//! - `[{...}, ...]` → batch of requests → one array response line
//! - `{"cmd": "ping"}` → `{"ok": true}`
//! - `{"cmd": "metrics"}` → metrics snapshot
//! - `{"cmd": "workloads"}` → the served workload catalog
//! - `{"cmd": "schema"}` → the served feature schema (version + blocks)

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use serde_json::{json, Value};

use crate::protocol::PredictRequest;
use crate::service::PredictionService;
use crate::Client;

/// The served workload catalog (shared with `concorde workloads --json`).
pub fn workload_catalog() -> Value {
    let entries: Vec<Value> = concorde_trace::suite()
        .iter()
        .map(|w| {
            json!({
                "id": w.id,
                "name": w.name,
                "class": format!("{:?}", w.class),
                "traces": w.n_traces,
                "trace_len": w.trace_len,
            })
        })
        .collect();
    json!(entries)
}

impl PredictionService {
    /// Serves the protocol on `listener` until the process exits.
    ///
    /// # Errors
    ///
    /// Returns accept-loop errors; per-connection errors only end that
    /// connection.
    pub fn serve_tcp(&self, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let client = self.client();
            std::thread::Builder::new()
                .name("concorde-serve-conn".to_string())
                .spawn(move || {
                    let _ = handle_connection(client, stream);
                })
                .expect("spawn connection handler");
        }
        Ok(())
    }
}

fn handle_connection(client: Client, stream: TcpStream) -> std::io::Result<()> {
    let peer = stream.peer_addr()?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = handle_line(&client, &line);
        writer.write_all(reply.to_string().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    let _ = peer;
    Ok(())
}

fn handle_line(client: &Client, line: &str) -> Value {
    let parsed: Value = match serde_json::from_str(line) {
        Ok(v) => v,
        Err(e) => return json!({ "error": format!("malformed JSON: {e}") }),
    };
    match parsed {
        Value::Array(_) => {
            let reqs: Vec<PredictRequest> = match serde_json::from_value(parsed) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request batch: {e}") }),
            };
            match client.predict_many(reqs) {
                Ok(resps) => serde_json::to_value(&resps).expect("serialize responses"),
                Err(e) => json!({ "error": e.to_string() }),
            }
        }
        Value::Object(ref obj) if obj.contains_key("cmd") => {
            match obj.get("cmd").and_then(Value::as_str) {
                Some("ping") => json!({ "ok": true }),
                Some("metrics") => {
                    serde_json::to_value(&client.service_metrics()).expect("serialize metrics")
                }
                Some("workloads") => workload_catalog(),
                Some("schema") => serde_json::to_value(&client.schema()).expect("serialize schema"),
                other => json!({ "error": format!("unknown cmd {other:?}") }),
            }
        }
        obj @ Value::Object(_) => {
            let req: PredictRequest = match serde_json::from_value(obj) {
                Ok(r) => r,
                Err(e) => return json!({ "error": format!("bad request: {e}") }),
            };
            match client.predict(req) {
                Ok(resp) => serde_json::to_value(&resp).expect("serialize response"),
                Err(e) => json!({ "error": e.to_string() }),
            }
        }
        _ => json!({ "error": "expected a JSON object or array" }),
    }
}
